#!/usr/bin/env python3
"""Cross-validate generated placements against the paper's trace semantics.

Run with::

    python examples/verify_equivalence.py [BenchmarkName ...]

For each benchmark the script compiles the implicit-signal monitor with the
Expresso pipeline and then *model-checks* Definition 3.4 on a small thread
setup: every syntactically well-formed trace up to a bounded number of events
is replayed under both the implicit-signal semantics (Figure 4) and the
explicit-signal semantics of the generated monitor (Figures 5/6), checking
that (1) the explicit monitor admits no new behaviours and (2) no normalized
implicit behaviour — i.e. no wake-up — is lost.
"""

import sys

from repro.benchmarks_lib import get_benchmark
from repro.harness.saturation import expresso_result
from repro.semantics import check_bounded_equivalence
from repro.semantics.equivalence import ThreadPlan

DEFAULT_BENCHMARKS = ["Readers-Writers", "BoundedBuffer", "ConcurrencyThrottle"]

#: Small differential-testing setups per benchmark (thread id, method sequence).
SETUPS = {
    "Readers-Writers": [
        ThreadPlan(1, ("enterReader", "exitReader")),
        ThreadPlan(2, ("enterWriter", "exitWriter")),
    ],
    "BoundedBuffer": [
        ThreadPlan(1, ("put", "put")),
        ThreadPlan(2, ("take", "take")),
    ],
    "ConcurrencyThrottle": [
        ThreadPlan(1, ("beforeAccess", "afterAccess")),
        ThreadPlan(2, ("beforeAccess", "afterAccess")),
    ],
    "PendingPostQueue": [
        ThreadPlan(1, ("enqueue", "enqueue")),
        ThreadPlan(2, ("poll", "poll")),
    ],
    "SimpleBlockingDeployment": [
        ThreadPlan(1, ("block", "unblock")),
        ThreadPlan(2, ("deploy",)),
    ],
}


def verify(name: str, max_events: int = 6) -> bool:
    spec = get_benchmark(name)
    plans = SETUPS.get(spec.name)
    if plans is None:
        print(f"{spec.name}: no differential setup defined, skipping")
        return True
    explicit = expresso_result(spec).explicit
    report = check_bounded_equivalence(spec.monitor(), explicit, plans, max_events=max_events)
    status = "EQUIVALENT" if report.equivalent else "VIOLATION"
    print(f"{spec.name:28s} traces explored: {report.explored_traces:6d}   {status}")
    if not report.equivalent:
        for trace in report.implicit_only[:3]:
            print("   lost wake-up on trace:", " ".join(map(str, trace)))
        for trace in report.explicit_only[:3]:
            print("   new behaviour on trace:", " ".join(map(str, trace)))
        for trace in report.state_mismatches[:3]:
            print("   state mismatch on trace:", " ".join(map(str, trace)))
    return report.equivalent


def main() -> None:
    names = sys.argv[1:] or DEFAULT_BENCHMARKS
    all_ok = all(verify(name) for name in names)
    raise SystemExit(0 if all_ok else 1)


if __name__ == "__main__":
    main()
