#!/usr/bin/env python3
"""Saturation comparison on the BoundedBuffer benchmark (one Figure-8 plot).

Run with::

    python examples/bounded_buffer_saturation.py [threads ...]

For each thread count the script measures the four signalling disciplines on
an identical producer/consumer workload and prints both the time per monitor
operation and the runtime counters that explain the differences (spurious
wake-ups for the naive implicit monitor, run-time predicate evaluations for
the AutoSynch-style runtime).
"""

import sys

from repro.benchmarks_lib import get_benchmark
from repro.harness import DISCIPLINES, run_saturation
from repro.harness.saturation import expresso_result
from repro.logic.pretty import pretty


def main() -> None:
    spec = get_benchmark("BoundedBuffer")
    thread_counts = [int(arg) for arg in sys.argv[1:]] or [2, 4, 8]

    compiled = expresso_result(spec)
    print("benchmark         :", spec.name)
    print("monitor invariant :", pretty(compiled.invariant))
    print("placed signals    :", compiled.placement.total_notifications(),
          f"({compiled.placement.broadcast_count()} broadcasts)")
    print()

    header = (f"{'threads':>8} {'discipline':>12} {'us/op':>10} "
              f"{'spurious':>9} {'pred-evals':>11} {'broadcasts':>11}")
    print(header)
    print("-" * len(header))
    for threads in thread_counts:
        for discipline in DISCIPLINES:
            measurement = run_saturation(spec, discipline, threads, ops_per_thread=50)
            metrics = measurement.metrics
            print(f"{threads:>8} {discipline:>12} {measurement.ms_per_op * 1000:>10.2f} "
                  f"{metrics['spurious_wakeups']:>9} {metrics['predicate_evaluations']:>11} "
                  f"{metrics['broadcasts']:>11}")
        print()


if __name__ == "__main__":
    main()
