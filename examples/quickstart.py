#!/usr/bin/env python3
"""Quickstart: compile the paper's readers-writers monitor (§2) end to end.

Run with::

    python examples/quickstart.py

The script parses the implicit-signal monitor of the paper's Figure 1,
infers the monitor invariant, places signals, and prints the generated
explicit-signal Java code — which matches the hand-written Figure 2.
"""

from repro import compile_monitor
from repro.codegen import generate_java, generate_python_explicit
from repro.logic.pretty import pretty

READERS_WRITERS = """
monitor RWLock {
    int readers = 0;
    boolean writerIn = false;

    atomic void enterReader() {
        waituntil (!writerIn) { readers++; }
    }
    atomic void exitReader() {
        if (readers > 0) { readers--; }
    }
    atomic void enterWriter() {
        waituntil (readers == 0 && !writerIn) { writerIn = true; }
    }
    atomic void exitWriter() {
        writerIn = false;
    }
}
"""


def main() -> None:
    result = compile_monitor(READERS_WRITERS)

    print("=" * 72)
    print("Expresso reproduction — readers-writers quickstart")
    print("=" * 72)
    print()
    print("Inferred monitor invariant:", pretty(result.invariant))
    print()
    print("Placement decisions (CCR -> waited-on predicate -> action):")
    for decision in result.placement.decisions:
        if not decision.needs_notification:
            action = "no signal needed"
        else:
            kind = "broadcast" if decision.broadcast else "signal"
            marker = "?" if decision.conditional else "unconditional"
            action = f"{kind} ({marker})"
        print(f"  {decision.ccr_label:18s} {pretty(decision.predicate):34s} {action}")
    print()
    print("-" * 72)
    print("Generated explicit-signal Java (compare with the paper's Figure 2):")
    print("-" * 72)
    print(generate_java(result.explicit))
    print("-" * 72)
    print("The same monitor as executable Python (used by the benchmarks):")
    print("-" * 72)
    print(generate_python_explicit(result.explicit))
    print(result.summary())


if __name__ == "__main__":
    main()
