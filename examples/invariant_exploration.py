#!/usr/bin/env python3
"""Inspect abduction and invariant inference on GitHub-mined monitors.

Run with::

    python examples/invariant_exploration.py [BenchmarkName ...]

For each selected benchmark (default: ConcurrencyThrottle, AsyncDispatch,
BoundedBuffer — the ones whose invariants the paper discusses) the script
shows the abduced candidate pool, the predicates that survive Algorithm 2's
initiation/consecution fixed point, and the resulting monitor invariant in
both infix and SMT-LIB form (Appendix D of the paper shows the same
invariants in SMT-LIB).
"""

import sys

from repro.analysis import infer_monitor_invariant
from repro.benchmarks_lib import get_benchmark
from repro.logic import TRUE
from repro.logic.pretty import pretty, to_smtlib
from repro.placement.algorithm import generate_placement_triples
from repro.smt import Solver

DEFAULT_BENCHMARKS = ["ConcurrencyThrottle", "AsyncDispatch", "BoundedBuffer"]


def explore(name: str) -> None:
    spec = get_benchmark(name)
    monitor = spec.monitor()
    solver = Solver()
    triples = generate_placement_triples(monitor, TRUE)
    result = infer_monitor_invariant(monitor, triples, solver)

    print("=" * 72)
    print(f"{spec.name}   (from {spec.origin})")
    print("=" * 72)
    print(f"property triples considered : {len(triples)}")
    print(f"abduced candidate pool      : {len(result.candidate_pool)} predicates")
    for candidate in result.candidate_pool:
        marker = "kept" if candidate in result.kept_predicates else "dropped"
        print(f"    [{marker:7s}] {pretty(candidate)}")
    print(f"fixed-point iterations      : {result.iterations}")
    print(f"monitor invariant           : {pretty(result.invariant)}")
    print("SMT-LIB form                :")
    print("   ", to_smtlib(result.invariant))
    print()


def main() -> None:
    names = sys.argv[1:] or DEFAULT_BENCHMARKS
    for name in names:
        explore(name)


if __name__ == "__main__":
    main()
