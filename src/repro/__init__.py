"""repro — reproduction of *Symbolic Reasoning for Automatic Signal Placement* (Expresso, PLDI 2018).

The package is organized as a compiler pipeline plus the substrates it needs:

``repro.logic``
    First-order formulas over linear integer arithmetic and booleans.
``repro.smt``
    A from-scratch decision procedure (DPLL over theory atoms, exact-rational
    simplex with branch-and-bound) and quantifier elimination.
``repro.lang``
    The implicit-signal monitor DSL (lexer, parser, semantic checks).
``repro.analysis``
    Weakest preconditions, Hoare-triple checking, alias analysis,
    commutativity, abduction and monitor-invariant inference.
``repro.placement``
    The signal-placement algorithm and the explicit-signal target language.
``repro.codegen``
    Java-like and executable-Python code generation.
``repro.runtime``
    Executable monitor runtimes (explicit, naive implicit, AutoSynch-style).
``repro.semantics``
    Reference trace semantics used for differential testing.
``repro.benchmarks_lib``
    The paper's 14 benchmark monitors and their workloads.
``repro.harness``
    Saturation tests, a deterministic cost-model scheduler, and report
    generation for every table and figure in the paper's evaluation.
"""

__all__ = ["ExpressoPipeline", "ExpressoResult", "compile_monitor", "__version__"]

__version__ = "1.0.0"


def __getattr__(name: str):
    """Lazily expose the pipeline entry points at the package root.

    Importing them lazily keeps ``import repro`` cheap for callers that only
    need the logic/SMT substrates.
    """
    if name in ("ExpressoPipeline", "ExpressoResult", "compile_monitor"):
        from repro.placement import pipeline

        return getattr(pipeline, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
