"""Table 1: Expresso compilation (analysis + synthesis) time per benchmark.

Two execution modes:

* **sequential** (default) — one pipeline per benchmark in this process, each
  with a compile-local solver cache;
* **parallel** — the suite is fanned out over a ``concurrent.futures``
  process pool, one worker process per in-flight benchmark.  Compilation is
  CPU-bound pure Python, so processes (not threads) are the only way to use
  more than one core; each worker builds its own solver and cache, which is
  sound because cached results are pure facts about formulas.

Both modes report the solver-cache hit/miss counters next to the timings so
cache effectiveness lands in the Table 1 output.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.benchmarks_lib.registry import ALL_BENCHMARKS
from repro.benchmarks_lib.spec import BenchmarkSpec
from repro.placement.pipeline import ExpressoPipeline


@dataclass(frozen=True)
class CompileTimeRow:
    """One row of Table 1."""

    benchmark: str
    seconds: float
    validity_queries: int
    invariant: str
    notifications: int
    broadcasts: int
    cache_hits: int = 0
    cache_misses: int = 0
    commute_cache_hits: int = 0
    commute_cache_misses: int = 0
    commute_static_skips: int = 0
    #: Per-phase wall breakdown (parse/invariants/placement/instrument/lint).
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


def _compile_row(spec: BenchmarkSpec, use_commutativity: bool) -> CompileTimeRow:
    """Compile one benchmark and package the Table 1 row."""
    from repro.logic.pretty import pretty

    pipeline = ExpressoPipeline(use_commutativity=use_commutativity)
    start = time.perf_counter()
    result = pipeline.compile(spec.monitor())
    elapsed = time.perf_counter() - start
    return CompileTimeRow(
        benchmark=spec.name,
        seconds=elapsed,
        validity_queries=result.solver_statistics.get("validity_queries", 0),
        invariant=pretty(result.invariant),
        notifications=result.placement.total_notifications(),
        broadcasts=result.placement.broadcast_count(),
        cache_hits=result.solver_statistics.get("cache_hits", 0),
        cache_misses=result.solver_statistics.get("cache_misses", 0),
        commute_cache_hits=result.solver_statistics.get("commute_cache_hits", 0),
        commute_cache_misses=result.solver_statistics.get("commute_cache_misses", 0),
        commute_static_skips=result.solver_statistics.get("commute_static_skips", 0),
        phase_seconds={phase: round(seconds, 4)
                       for phase, seconds in result.phase_seconds.items()},
    )


def _compile_row_task(task: Tuple[Union[str, BenchmarkSpec], bool]) -> CompileTimeRow:
    """Process-pool entry point: accepts a registry name or a pickled spec."""
    target, use_commutativity = task
    spec = ALL_BENCHMARKS[target] if isinstance(target, str) else target
    return _compile_row(spec, use_commutativity)


def measure_compile_times(benchmarks: Optional[Sequence[BenchmarkSpec]] = None,
                          use_commutativity: bool = True,
                          parallel: bool = False,
                          max_workers: Optional[int] = None) -> List[CompileTimeRow]:
    """Run the full pipeline on every benchmark and record wall-clock time.

    With ``parallel=True`` the benchmarks compile concurrently on a process
    pool (``max_workers`` processes, default: one per CPU); row order still
    follows the benchmark order.  Per-row ``seconds`` is each benchmark's own
    compile time regardless of mode — total wall clock is what parallelism
    improves.
    """
    specs = list(benchmarks) if benchmarks is not None else list(ALL_BENCHMARKS.values())
    if not parallel or len(specs) <= 1:
        return [_compile_row(spec, use_commutativity) for spec in specs]

    # Registry benchmarks travel by name (cheap and always picklable);
    # ad-hoc specs are pickled whole.
    tasks: List[Tuple[Union[str, BenchmarkSpec], bool]] = []
    for spec in specs:
        registered = ALL_BENCHMARKS.get(spec.name)
        target = spec.name if registered is spec else spec
        tasks.append((target, use_commutativity))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(_compile_row_task, tasks))
