"""Table 1: Expresso compilation (analysis + synthesis) time per benchmark."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.benchmarks_lib.registry import ALL_BENCHMARKS
from repro.benchmarks_lib.spec import BenchmarkSpec
from repro.placement.pipeline import ExpressoPipeline


@dataclass(frozen=True)
class CompileTimeRow:
    """One row of Table 1."""

    benchmark: str
    seconds: float
    validity_queries: int
    invariant: str
    notifications: int
    broadcasts: int


def measure_compile_times(benchmarks: Optional[Sequence[BenchmarkSpec]] = None,
                          use_commutativity: bool = True) -> List[CompileTimeRow]:
    """Run the full pipeline on every benchmark and record wall-clock time."""
    from repro.logic.pretty import pretty

    specs = list(benchmarks) if benchmarks is not None else list(ALL_BENCHMARKS.values())
    rows: List[CompileTimeRow] = []
    for spec in specs:
        pipeline = ExpressoPipeline(use_commutativity=use_commutativity)
        start = time.perf_counter()
        result = pipeline.compile(spec.monitor())
        elapsed = time.perf_counter() - start
        rows.append(CompileTimeRow(
            benchmark=spec.name,
            seconds=elapsed,
            validity_queries=result.solver_statistics.get("validity_queries", 0),
            invariant=pretty(result.invariant),
            notifications=result.placement.total_notifications(),
            broadcasts=result.placement.broadcast_count(),
        ))
    return rows
