"""Evaluation harness reproducing the paper's §7 methodology.

* :mod:`repro.harness.saturation` — saturation tests (threads only touch the
  monitor) over the four disciplines: Expresso-generated, hand-written
  explicit, AutoSynch-style, and naive implicit broadcast;
* :mod:`repro.harness.compile_time` — Table 1 (Expresso analysis time);
* :mod:`repro.harness.report` — figure/table series assembly and text reports
  (the same rows/series the paper plots).
"""

from repro.harness.saturation import (
    DISCIPLINES,
    SaturationMeasurement,
    build_monitor_class,
    run_saturation,
    sweep_thread_ladder,
)
from repro.harness.compile_time import CompileTimeRow, measure_compile_times
from repro.harness.report import (
    FigureSeries,
    figure_report,
    render_explore_table,
    render_figure_table,
    render_table1,
    speedup_summary,
)

__all__ = [
    "DISCIPLINES", "SaturationMeasurement", "build_monitor_class",
    "run_saturation", "sweep_thread_ladder",
    "CompileTimeRow", "measure_compile_times",
    "FigureSeries", "figure_report", "render_explore_table",
    "render_figure_table", "render_table1", "speedup_summary",
]
