"""Figure/table assembly and text rendering.

The report functions turn raw measurements into exactly the series the paper
plots: for every benchmark a table of ms/op per thread count for the
Expresso / AutoSynch / Explicit series (plus the naive implicit baseline this
reproduction adds), the Table 1 compilation times, and the headline
"Expresso is X× faster than AutoSynch on average" summary.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.benchmarks_lib.spec import BenchmarkSpec
from repro.harness.compile_time import CompileTimeRow
from repro.harness.saturation import (
    DISCIPLINES,
    SaturationMeasurement,
    sweep_thread_ladder,
)


@dataclass
class FigureSeries:
    """One benchmark's plot: ms/op per (discipline, thread count)."""

    benchmark: str
    figure: str
    thread_counts: Tuple[int, ...]
    ms_per_op: Dict[str, Dict[int, float]]
    metrics: Dict[str, Dict[int, Dict[str, int]]] = field(default_factory=dict)

    def series(self, discipline: str) -> List[float]:
        return [self.ms_per_op[discipline][threads] for threads in self.thread_counts]

    def speedup_over(self, baseline: str, target: str = "expresso") -> float:
        """Geometric-mean speedup of *target* over *baseline* across the ladder."""
        ratios = []
        for threads in self.thread_counts:
            target_value = self.ms_per_op[target][threads]
            baseline_value = self.ms_per_op[baseline][threads]
            if target_value > 0:
                ratios.append(baseline_value / target_value)
        if not ratios:
            return 1.0
        return statistics.geometric_mean(ratios)

    def to_dict(self) -> dict:
        """A JSON-ready view (``expresso bench --json``)."""
        return {
            "benchmark": self.benchmark,
            "figure": self.figure,
            "thread_counts": list(self.thread_counts),
            "ms_per_op": {discipline: {str(threads): value
                                       for threads, value in series.items()}
                          for discipline, series in self.ms_per_op.items()},
            "metrics": {discipline: {str(threads): dict(counters)
                                     for threads, counters in series.items()}
                        for discipline, series in self.metrics.items()},
        }


def figure_report(spec: BenchmarkSpec, disciplines: Sequence[str] = DISCIPLINES,
                  thread_ladder: Optional[Sequence[int]] = None,
                  ops_per_thread: Optional[int] = None,
                  seed: Optional[int] = None) -> FigureSeries:
    """Measure one benchmark across its thread ladder and assemble its series."""
    measurements = sweep_thread_ladder(spec, disciplines, thread_ladder, ops_per_thread,
                                       seed=seed)
    ladder = tuple(thread_ladder) if thread_ladder is not None else spec.thread_ladder
    ms_per_op: Dict[str, Dict[int, float]] = {d: {} for d in disciplines}
    metrics: Dict[str, Dict[int, Dict[str, int]]] = {d: {} for d in disciplines}
    for measurement in measurements:
        ms_per_op[measurement.discipline][measurement.threads] = measurement.ms_per_op
        metrics[measurement.discipline][measurement.threads] = measurement.metrics
    return FigureSeries(spec.name, spec.figure, tuple(ladder), ms_per_op, metrics)


def render_figure_table(series: FigureSeries, unit_scale: float = 1000.0) -> str:
    """Render one benchmark's series as a text table (µs/op by default)."""
    unit = "us/op" if unit_scale == 1000.0 else "ms/op"
    disciplines = list(series.ms_per_op)
    header = f"{series.benchmark}  (Figure {series.figure}, {unit})"
    lines = [header, "-" * len(header)]
    column_header = "threads".ljust(10) + "".join(d.ljust(14) for d in disciplines)
    lines.append(column_header)
    for threads in series.thread_counts:
        row = str(threads).ljust(10)
        for discipline in disciplines:
            value = series.ms_per_op[discipline][threads] * unit_scale
            row += f"{value:.2f}".ljust(14)
        lines.append(row)
    return "\n".join(lines)


def render_table1(rows: Sequence[CompileTimeRow]) -> str:
    """Render Table 1 (compilation times) as text.

    Includes the solver-cache columns (hits / queries per compile) and a
    totals row so batch runs surface aggregate compile time and hit rate.
    """
    header = "Table 1: Expresso compilation time per benchmark"
    lines = [header, "-" * len(header)]
    lines.append("Benchmark".ljust(32) + "Time (sec.)".ljust(14) +
                 "VCs".ljust(8) + "Cache".ljust(14) + "Notifications")
    for row in rows:
        cache_column = f"{row.cache_hits}/{row.cache_hits + row.cache_misses}"
        lines.append(
            row.benchmark.ljust(32)
            + f"{row.seconds:.2f}".ljust(14)
            + str(row.validity_queries).ljust(8)
            + cache_column.ljust(14)
            + f"{row.notifications} ({row.broadcasts} broadcasts)"
        )
    total_seconds = sum(row.seconds for row in rows)
    total_hits = sum(row.cache_hits for row in rows)
    total_queries = total_hits + sum(row.cache_misses for row in rows)
    hit_rate = f" ({total_hits / total_queries:.0%} hit rate)" if total_queries else ""
    lines.append("-" * len(header))
    lines.append(
        "TOTAL".ljust(32)
        + f"{total_seconds:.2f}".ljust(14)
        + str(sum(row.validity_queries for row in rows)).ljust(8)
        + f"{total_hits}/{total_queries}".ljust(14)
        + hit_rate.strip()
    )
    return "\n".join(lines)


def render_explore_table(results: Sequence) -> str:
    """Render exploration campaign summaries as a text table.

    Accepts :class:`repro.explore.engine.ExplorationResult` rows (typed
    loosely to keep the harness importable without the explore subsystem).
    """
    header = "Schedule exploration summary"
    lines = [header, "-" * len(header)]
    lines.append("Benchmark".ljust(30) + "Discipline".ljust(12) + "Strategy".ljust(10)
                 + "Schedules".ljust(11) + "Sched/s".ljust(10)
                 + "Completed".ljust(11) + "Stalls".ljust(8)
                 + "Pruned".ljust(8) + "POR-skip".ljust(10)
                 + "Sym-skip".ljust(10) + "Verdict")
    failures = 0
    for result in results:
        verdict = "ok"
        if result.failures:
            failures += len(result.failures)
            verdict = ", ".join(sorted({f.kind for f in result.failures}))
        if result.exhausted:
            verdict += " (exhausted)"
        elif getattr(result, "budget_exhausted", False):
            verdict += " (budget)"
        lines.append(
            result.benchmark.ljust(30)
            + result.discipline.ljust(12)
            + result.strategy.ljust(10)
            + str(result.schedules_run).ljust(11)
            + f"{result.schedules_per_second:.0f}".ljust(10)
            + str(result.completed).ljust(11)
            + str(result.stalls).ljust(8)
            + str(result.pruned).ljust(8)
            + str(getattr(result, "por_skipped", 0)).ljust(10)
            + str(getattr(result, "symmetry_skipped", 0)).ljust(10)
            + verdict
        )
    lines.append("-" * len(header))
    total = sum(result.schedules_run for result in results)
    lines.append(f"TOTAL: {total} schedules, "
                 f"{failures} divergence{'s' if failures != 1 else ''}")
    return "\n".join(lines)


def render_fuzz_table(result) -> str:
    """Render one fuzzing-campaign result as a text report.

    Accepts :class:`repro.fuzz.campaign.FuzzCampaignResult` rows (typed
    loosely to keep the harness importable without the fuzz subsystem).
    """
    header = "Coverage-guided fuzzing campaign"
    lines = [header, "-" * len(header)]
    lines.append(f"seed {result.seed}  strategy {result.strategy}  "
                 f"workers {result.workers}")
    lines.append(f"rounds {result.rounds}  monitors {result.monitors}  "
                 f"judged schedules {result.schedules_run} "
                 f"(budget {result.budget})")
    lines.append(f"corpus {result.corpus_size} entries "
                 f"(+{result.corpus_added} this run)")
    counts = result.coverage_counts
    lines.append("coverage".ljust(12)
                 + "  ".join(f"{axis}={counts.get(axis, 0)}"
                             for axis in sorted(counts))
                 + f"  total={result.coverage_total} "
                 f"(+{result.new_features} new)")
    lines.append(f"coverage/schedule {result.coverage_per_schedule:.3f}")
    if result.operator_stats:
        lines.append("")
        lines.append("Operator".ljust(22) + "Applied".ljust(9)
                     + "Rejected".ljust(10) + "NewCov".ljust(8) + "Findings")
        for name in sorted(result.operator_stats):
            stats = result.operator_stats[name]
            lines.append(name.ljust(22)
                         + str(stats.get("applied", 0)).ljust(9)
                         + str(stats.get("rejected", 0)).ljust(10)
                         + str(stats.get("new_coverage", 0)).ljust(8)
                         + str(stats.get("findings", 0)))
    distrib = getattr(result, "distrib", None)
    if distrib:
        lines.append("")
        lines.append("shared store".ljust(14)
                     + "  ".join(f"{name[len('distrib.'):]}={int(value)}"
                                 for name, value in sorted(distrib.items())))
    lines.append("-" * len(header))
    lines.append(f"findings: {len(result.findings)} "
                 f"({result.duplicate_findings} duplicates suppressed), "
                 f"compile errors: {len(result.compile_errors)}")
    return "\n".join(lines)


def render_lint_table(reports: Sequence) -> str:
    """Render static-analyzer reports as a text table.

    Accepts :class:`repro.analysis.lint.report.LintReport` rows (typed
    loosely to keep the harness importable without the lint subsystem).
    """
    header = "Static monitor analysis (expresso lint)"
    lines = [header, "-" * len(header)]
    lines.append("Monitor".ljust(30) + "Errors".ljust(8)
                 + "Advisories".ljust(12) + "Checks")
    total_errors = 0
    total_advisories = 0
    for report in reports:
        total_errors += len(report.errors)
        total_advisories += len(report.advisories)
        counts = report.counts()
        detail = ("  ".join(f"{check}={n}" for check, n in counts.items())
                  if counts else "clean")
        lines.append(report.monitor.ljust(30)
                     + str(len(report.errors)).ljust(8)
                     + str(len(report.advisories)).ljust(12)
                     + detail)
    lines.append("-" * len(header))
    lines.append(f"TOTAL: {len(reports)} monitor{'s' if len(reports) != 1 else ''}, "
                 f"{total_errors} error{'s' if total_errors != 1 else ''}, "
                 f"{total_advisories} "
                 f"advisor{'ies' if total_advisories != 1 else 'y'}")
    return "\n".join(lines)


def render_profile_table(profiler, phases: Optional[Dict[str, dict]] = None,
                         wall_seconds: Optional[float] = None,
                         top: int = 10,
                         metrics: Optional[Dict[str, int]] = None) -> str:
    """Render an SMT-profiler session as a text report.

    Accepts a :class:`repro.obs.profile.SmtProfiler` (typed loosely to keep
    the harness importable without the obs subsystem).  *phases* is the
    per-span attribution from :func:`repro.obs.phase_attribution`; with
    *wall_seconds* the header additionally reports what fraction of the
    measured wall time the named spans account for.  *metrics* is a counter
    snapshot; its ``distrib.*`` counters (shared-store lease traffic) are
    surfaced as their own section when present.
    """
    header = "SMT query profile (expresso profile)"
    lines = [header, "-" * len(header)]
    summary = (f"{profiler.total_queries} queries, "
               f"{profiler.total_seconds:.3f}s in the solver")
    if wall_seconds:
        summary += f" / {wall_seconds:.3f}s wall"
    lines.append(summary)
    if phases:
        lines.append("")
        lines.append("Phase".ljust(26) + "Count".ljust(8)
                     + "Seconds".ljust(10) + "Self")
        attributed = 0.0
        for name in sorted(phases, key=lambda n: -phases[n]["self_seconds"]):
            row = phases[name]
            attributed += row["self_seconds"]
            lines.append(name.ljust(26)
                         + str(row["count"]).ljust(8)
                         + f"{row['seconds']:.3f}".ljust(10)
                         + f"{row['self_seconds']:.3f}")
        if wall_seconds:
            lines.append(f"attributed: {attributed:.3f}s "
                         f"({attributed / wall_seconds:.0%} of wall)")
    rows = profiler.top(top)
    if rows:
        lines.append("")
        phase_width = max([22] + [len(str(row["phase"])) + 2 for row in rows])
        lines.append("Hash".ljust(14) + "Count".ljust(7) + "Cached".ljust(8)
                     + "Seconds".ljust(10) + "Status".ljust(9)
                     + "Phase".ljust(phase_width) + "Caller")
        for row in rows:
            lines.append(str(row["fingerprint"]).ljust(14)
                         + str(row["count"]).ljust(7)
                         + str(row["cached"]).ljust(8)
                         + f"{row['seconds']:.3f}".ljust(10)
                         + str(row["status"]).ljust(9)
                         + str(row["phase"]).ljust(phase_width)
                         + str(row["caller"]))
            lines.append("  " + str(row["sample"]))
    distrib = {name: value for name, value in (metrics or {}).items()
               if name.startswith("distrib.")}
    if distrib:
        lines.append("")
        lines.append("Distributed store")
        for name in sorted(distrib):
            lines.append(f"  {name[len('distrib.'):]}".ljust(26)
                         + str(int(distrib[name])))
    lines.append("-" * len(header))
    callers = profiler.by_caller()
    hottest = sorted(callers.items(),
                     key=lambda item: -item[1]["seconds"])[:5]
    lines.append("hot callers: "
                 + ("  ".join(f"{name} ({agg['seconds']:.3f}s/{int(agg['count'])})"
                              for name, agg in hottest) or "(none)"))
    return "\n".join(lines)


def speedup_summary(all_series: Iterable[FigureSeries]) -> Dict[str, float]:
    """The headline aggregates: mean speedups of Expresso over each baseline."""
    per_baseline: Dict[str, List[float]] = {}
    for series in all_series:
        for baseline in series.ms_per_op:
            if baseline == "expresso":
                continue
            per_baseline.setdefault(baseline, []).append(series.speedup_over(baseline))
    return {
        baseline: statistics.geometric_mean(values) if values else 1.0
        for baseline, values in per_baseline.items()
    }
