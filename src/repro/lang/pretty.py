"""Pretty printing of monitors and statements back into DSL-style text."""

from __future__ import annotations

from typing import List

from repro.logic.pretty import pretty
from repro.logic.terms import BOOL
from repro.lang.ast import (
    ArrayAssign,
    Assign,
    CCR,
    If,
    LocalDecl,
    MethodDecl,
    Monitor,
    Seq,
    Skip,
    Stmt,
    While,
)


def pretty_stmt(stmt: Stmt, indent: int = 0) -> str:
    """Render a statement as indented DSL text."""
    pad = "    " * indent
    if isinstance(stmt, Skip):
        return f"{pad}skip;"
    if isinstance(stmt, Assign):
        return f"{pad}{stmt.target} = {pretty(stmt.value)};"
    if isinstance(stmt, ArrayAssign):
        return f"{pad}{stmt.array}[{pretty(stmt.index)}] = {pretty(stmt.value)};"
    if isinstance(stmt, LocalDecl):
        type_name = "boolean" if stmt.sort is BOOL else "int"
        return f"{pad}{type_name} {stmt.name} = {pretty(stmt.init)};"
    if isinstance(stmt, Seq):
        return "\n".join(pretty_stmt(child, indent) for child in stmt.stmts)
    if isinstance(stmt, If):
        lines = [f"{pad}if ({pretty(stmt.cond)}) {{",
                 pretty_stmt(stmt.then, indent + 1),
                 f"{pad}}}"]
        if not isinstance(stmt.orelse, Skip):
            lines += [f"{pad}else {{", pretty_stmt(stmt.orelse, indent + 1), f"{pad}}}"]
        return "\n".join(lines)
    if isinstance(stmt, While):
        header = f"{pad}while ({pretty(stmt.cond)})"
        if stmt.invariant is not None:
            header += f" invariant ({pretty(stmt.invariant)})"
        return "\n".join([header + " {", pretty_stmt(stmt.body, indent + 1), f"{pad}}}"])
    raise TypeError(f"cannot pretty-print statement {type(stmt).__name__}")


def pretty_monitor(monitor: Monitor) -> str:
    """Render a monitor as DSL source text (round-trips through the parser)."""
    lines: List[str] = [f"monitor {monitor.name} {{"]
    for name, value in monitor.constants:
        lines.append(f"    const int {name} = {value};")
    for decl in monitor.fields:
        type_name = "boolean" if decl.sort is BOOL else ("unsigned int" if decl.unsigned else "int")
        suffix = f"[{decl.array_size}]" if decl.is_array else ""
        lines.append(f"    {type_name} {decl.name}{suffix} = {pretty(decl.init)};")
    for method in monitor.methods:
        params = ", ".join(
            f"{'boolean' if p.sort is BOOL else 'int'} {p.name}" for p in method.params
        )
        lines.append("")
        lines.append(f"    atomic void {method.name}({params}) {{")
        for ccr in method.ccrs:
            if ccr.is_trivial():
                lines.append(pretty_stmt(ccr.body, 2))
            else:
                lines.append(f"        waituntil ({pretty(ccr.guard)}) {{")
                if not isinstance(ccr.body, Skip):
                    lines.append(pretty_stmt(ccr.body, 3))
                lines.append("        }")
        lines.append("    }")
    lines.append("}")
    return "\n".join(lines)
