"""Abstract syntax for implicit-signal monitors.

Expressions inside the AST are :mod:`repro.logic` terms; the statement layer
defined here is exactly the statement language of the paper's Figure 3 plus
fixed-size array assignment (which :mod:`repro.lang.arrays` removes before
analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.logic import build
from repro.logic.terms import BOOL, Expr, INT, Sort, Var


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    """Base class for statements."""

    def children(self) -> Tuple["Stmt", ...]:
        return ()


@dataclass(frozen=True)
class Skip(Stmt):
    """The no-op statement."""


@dataclass(frozen=True)
class Assign(Stmt):
    """``target = value`` where *target* is a field, parameter, or local."""

    target: str
    value: Expr


@dataclass(frozen=True)
class ArrayAssign(Stmt):
    """``array[index] = value`` on a fixed-size array field (pre-scalarization)."""

    array: str
    index: Expr
    value: Expr


@dataclass(frozen=True)
class LocalDecl(Stmt):
    """Declaration of a method-local variable with an initializer."""

    name: str
    sort: Sort
    init: Expr


@dataclass(frozen=True)
class Seq(Stmt):
    """Sequential composition of two or more statements."""

    stmts: Tuple[Stmt, ...]

    def children(self) -> Tuple[Stmt, ...]:
        return self.stmts


@dataclass(frozen=True)
class If(Stmt):
    """Conditional statement with an optional else branch (``Skip`` if absent)."""

    cond: Expr
    then: Stmt
    orelse: Stmt

    def children(self) -> Tuple[Stmt, ...]:
        return (self.then, self.orelse)


@dataclass(frozen=True)
class While(Stmt):
    """Loop with an optional user-supplied invariant annotation.

    The invariant is only used to strengthen the (otherwise havoc-based)
    weakest-precondition treatment of loops; omitting it is always sound.
    """

    cond: Expr
    body: Stmt
    invariant: Optional[Expr] = None

    def children(self) -> Tuple[Stmt, ...]:
        return (self.body,)


def seq(*stmts: Stmt) -> Stmt:
    """Build a right-flattened sequence, dropping ``Skip`` components."""
    flat: List[Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, Skip):
            continue
        if isinstance(stmt, Seq):
            flat.extend(stmt.stmts)
        else:
            flat.append(stmt)
    if not flat:
        return Skip()
    if len(flat) == 1:
        return flat[0]
    return Seq(tuple(flat))


def stmt_assigned_vars(stmt: Stmt) -> frozenset:
    """Names assigned anywhere inside *stmt* (fields, locals, array cells)."""
    names: set = set()
    _collect_assigned(stmt, names)
    return frozenset(names)


def _collect_assigned(stmt: Stmt, out: set) -> None:
    if isinstance(stmt, Assign):
        out.add(stmt.target)
    elif isinstance(stmt, LocalDecl):
        out.add(stmt.name)
    elif isinstance(stmt, ArrayAssign):
        out.add(stmt.array)
    for child in stmt.children():
        _collect_assigned(child, out)


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldDecl:
    """A shared monitor field.

    ``unsigned`` fields carry an implicit non-negativity hint that the
    invariant-inference engine may add to its candidate pool; it is *not*
    assumed without proof.  ``array_size`` is set for fixed-size arrays
    before scalarization.
    """

    name: str
    sort: Sort
    init: Expr
    unsigned: bool = False
    array_size: Optional[int] = None

    @property
    def is_array(self) -> bool:
        return self.array_size is not None


@dataclass(frozen=True)
class Param:
    """A method parameter (thread-local by definition, §3.1)."""

    name: str
    sort: Sort


@dataclass(frozen=True)
class CCR:
    """A conditional critical region ``waituntil (guard) { body }``."""

    guard: Expr
    body: Stmt
    #: Stable identifier "<method>#<index>" assigned by the parser.
    label: str = ""

    def is_trivial(self) -> bool:
        """True when the guard is literally ``true`` (a plain statement)."""
        return self.guard == build.TRUE


@dataclass(frozen=True)
class MethodDecl:
    """An ``atomic`` monitor method: a parameter list plus a CCR sequence."""

    name: str
    params: Tuple[Param, ...]
    ccrs: Tuple[CCR, ...]

    def param_names(self) -> Tuple[str, ...]:
        return tuple(param.name for param in self.params)


@dataclass(frozen=True)
class Monitor:
    """An implicit-signal monitor: fields, named constants, and atomic methods."""

    name: str
    fields: Tuple[FieldDecl, ...]
    methods: Tuple[MethodDecl, ...]
    constants: Tuple[Tuple[str, int], ...] = ()

    # -- lookup helpers -----------------------------------------------------

    def field(self, name: str) -> FieldDecl:
        for decl in self.fields:
            if decl.name == name:
                return decl
        raise KeyError(name)

    def field_names(self) -> Tuple[str, ...]:
        return tuple(decl.name for decl in self.fields)

    def method(self, name: str) -> MethodDecl:
        for decl in self.methods:
            if decl.name == name:
                return decl
        raise KeyError(name)

    def shared_vars(self) -> Tuple[Var, ...]:
        """The shared (global) variables of the monitor as logic variables."""
        return tuple(Var(decl.name, decl.sort) for decl in self.fields if not decl.is_array)

    def ccrs(self) -> Tuple[Tuple[MethodDecl, CCR], ...]:
        """All conditional critical regions with their enclosing methods (CCRs(M))."""
        result = []
        for method in self.methods:
            for ccr in method.ccrs:
                result.append((method, ccr))
        return tuple(result)

    def ccr_by_label(self, label: str) -> Tuple[MethodDecl, CCR]:
        """The CCR carrying the parser-assigned *label*, with its method."""
        for method, ccr in self.ccrs():
            if ccr.label == label:
                return method, ccr
        raise KeyError(label)

    def guards(self) -> Tuple[Expr, ...]:
        """The distinct non-trivial guard predicates of the monitor (Guards(M))."""
        seen: List[Expr] = []
        for _method, ccr in self.ccrs():
            if ccr.is_trivial():
                continue
            if ccr.guard not in seen:
                seen.append(ccr.guard)
        return tuple(seen)

    def constructor(self) -> Stmt:
        """The implicit constructor Ctr(M): initialize every scalar field."""
        assigns: List[Stmt] = []
        for decl in self.fields:
            if decl.is_array:
                continue
            assigns.append(Assign(decl.name, decl.init))
        return seq(*assigns)

    def thread_local_names(self, method: MethodDecl) -> frozenset:
        """Parameter and local-variable names of *method* (thread-local, §3.1/§4.2)."""
        names = set(method.param_names())
        for ccr in method.ccrs:
            for name in stmt_assigned_vars(ccr.body):
                if name not in self.field_names():
                    names.add(name)
        return frozenset(names)
