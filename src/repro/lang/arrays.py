"""Fixed-size array support via compile-time scalarization.

The paper's source language has only scalar fields; several benchmarks
(Dining Philosophers, Round Robin variants) are naturally written with small
fixed-size arrays indexed by a thread-local parameter.  We admit such arrays
in the surface syntax and *scalarize* them before analysis:

* an array field ``int forks[5]`` becomes scalar fields ``forks__0 ..
  forks__4``;
* a read ``forks[e]`` becomes the nested conditional
  ``ite(e == 0, forks__0, ite(e == 1, forks__1, ...))``;
* a write ``forks[e] = v`` becomes one conditional assignment per cell:
  ``forks__k = ite(e == k, v, forks__k)``.

The transformation is semantics-preserving for in-bounds indices; an
out-of-bounds read evaluates to the last cell and an out-of-bounds write is
dropped, mirroring the "monitors do not fail" assumption of the formal model.
The resulting guards contain disjunctions over the concrete indices, which
typically makes the placement algorithm conservative (broadcast) for
array-indexed guards — the same behaviour the paper reports for Dining
Philosophers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.logic import build
from repro.logic.terms import (
    Add,
    And,
    BoolConst,
    Eq,
    Expr,
    Ge,
    Gt,
    Iff,
    Implies,
    INT,
    IntConst,
    Ite,
    Le,
    Lt,
    Mul,
    Ne,
    Neg,
    Not,
    Or,
    Sort,
    Sub,
    Var,
)
from repro.lang.ast import (
    ArrayAssign,
    Assign,
    CCR,
    FieldDecl,
    If,
    LocalDecl,
    MethodDecl,
    Monitor,
    Seq,
    Skip,
    Stmt,
    While,
    seq,
)


@dataclass(frozen=True)
class ArraySelect(Expr):
    """Placeholder expression ``array[index]`` produced by the parser.

    Scalarization removes every occurrence; the SMT layer never sees it.
    """

    array: str
    index: Expr
    elem_sort: Sort = INT

    def children(self) -> Tuple[Expr, ...]:
        return (self.index,)


def cell_name(array: str, index: int) -> str:
    """The scalar field name standing for ``array[index]``."""
    return f"{array}__{index}"


def scalarize_monitor(monitor: Monitor) -> Monitor:
    """Replace array fields, reads, and writes with scalar equivalents."""
    sizes: Dict[str, Tuple[int, Sort, Expr]] = {}
    new_fields: List[FieldDecl] = []
    for decl in monitor.fields:
        if decl.is_array:
            sizes[decl.name] = (decl.array_size, decl.sort, decl.init)
            for index in range(decl.array_size):
                new_fields.append(
                    FieldDecl(cell_name(decl.name, index), decl.sort, decl.init,
                              unsigned=decl.unsigned)
                )
        else:
            new_fields.append(decl)
    if not sizes:
        return monitor

    new_methods = []
    for method in monitor.methods:
        new_ccrs = []
        for ccr in method.ccrs:
            guard = _scalarize_expr(ccr.guard, sizes)
            body = _scalarize_stmt(ccr.body, sizes)
            new_ccrs.append(CCR(guard, body, ccr.label))
        new_methods.append(MethodDecl(method.name, method.params, tuple(new_ccrs)))
    return Monitor(monitor.name, tuple(new_fields), tuple(new_methods), monitor.constants)


def _scalarize_expr(expr: Expr, sizes: Dict[str, Tuple[int, Sort, Expr]]) -> Expr:
    if isinstance(expr, ArraySelect):
        size, elem_sort, _ = sizes[expr.array]
        index = _scalarize_expr(expr.index, sizes)
        if isinstance(index, IntConst):
            clamped = min(max(index.value, 0), size - 1)
            return Var(cell_name(expr.array, clamped), elem_sort)
        result: Expr = Var(cell_name(expr.array, size - 1), elem_sort)
        for cell_index in range(size - 2, -1, -1):
            result = build.ite(build.eq(index, build.i(cell_index)),
                               Var(cell_name(expr.array, cell_index), elem_sort),
                               result)
        return result
    if isinstance(expr, (Var, IntConst, BoolConst)):
        return expr
    children = tuple(_scalarize_expr(child, sizes) for child in expr.children())
    return _rebuild_expr(expr, children)


def _scalarize_stmt(stmt: Stmt, sizes: Dict[str, Tuple[int, Sort, Expr]]) -> Stmt:
    if isinstance(stmt, Skip):
        return stmt
    if isinstance(stmt, Assign):
        return Assign(stmt.target, _scalarize_expr(stmt.value, sizes))
    if isinstance(stmt, LocalDecl):
        return LocalDecl(stmt.name, stmt.sort, _scalarize_expr(stmt.init, sizes))
    if isinstance(stmt, ArrayAssign):
        size, elem_sort, _ = sizes[stmt.array]
        index = _scalarize_expr(stmt.index, sizes)
        value = _scalarize_expr(stmt.value, sizes)
        if isinstance(index, IntConst):
            if 0 <= index.value < size:
                return Assign(cell_name(stmt.array, index.value), value)
            return Skip()
        updates: List[Stmt] = []
        for cell_index in range(size):
            cell = Var(cell_name(stmt.array, cell_index), elem_sort)
            updates.append(
                Assign(cell_name(stmt.array, cell_index),
                       build.ite(build.eq(index, build.i(cell_index)), value, cell))
            )
        return seq(*updates)
    if isinstance(stmt, Seq):
        return seq(*[_scalarize_stmt(child, sizes) for child in stmt.stmts])
    if isinstance(stmt, If):
        return If(_scalarize_expr(stmt.cond, sizes),
                  _scalarize_stmt(stmt.then, sizes),
                  _scalarize_stmt(stmt.orelse, sizes))
    if isinstance(stmt, While):
        invariant = _scalarize_expr(stmt.invariant, sizes) if stmt.invariant is not None else None
        return While(_scalarize_expr(stmt.cond, sizes),
                     _scalarize_stmt(stmt.body, sizes), invariant)
    raise TypeError(f"cannot scalarize statement {type(stmt).__name__}")


def _rebuild_expr(expr: Expr, children: Tuple[Expr, ...]) -> Expr:
    if isinstance(expr, (Add, And, Or)):
        return type(expr)(tuple(children))
    if isinstance(expr, (Sub, Mul, Eq, Ne, Lt, Le, Gt, Ge, Iff)):
        return type(expr)(children[0], children[1])
    if isinstance(expr, Implies):
        return Implies(children[0], children[1])
    if isinstance(expr, (Neg, Not)):
        return type(expr)(children[0])
    if isinstance(expr, Ite):
        return Ite(children[0], children[1], children[2])
    raise TypeError(f"cannot rebuild node {type(expr).__name__}")
