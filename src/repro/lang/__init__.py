"""The implicit-signal monitor language (the paper's source language, Fig. 3).

The concrete syntax is Java-like; the abstract syntax mirrors the paper:

* a monitor is a set of field declarations plus ``atomic`` methods;
* each method body is a sequence of conditional critical regions
  (``waituntil (p) { s }``); plain statements are sugar for
  ``waituntil (true) { s }``;
* statements are assignments, conditionals, loops, and sequences over
  linear-integer/boolean expressions.

The frontend produces a :class:`repro.lang.ast.Monitor` whose guards and
expressions are :mod:`repro.logic` terms, ready for the analyses.
"""

from repro.lang.ast import (
    Assign,
    ArrayAssign,
    CCR,
    FieldDecl,
    If,
    LocalDecl,
    MethodDecl,
    Monitor,
    Param,
    Seq,
    Skip,
    Stmt,
    While,
    seq,
)
from repro.lang.lexer import LexError, Token, tokenize
from repro.lang.parser import MonitorParseError, parse_monitor
from repro.lang.check import MonitorCheckError, check_monitor
from repro.lang.arrays import scalarize_monitor
from repro.lang.pretty import pretty_monitor, pretty_stmt

__all__ = [
    "Monitor", "FieldDecl", "MethodDecl", "Param", "CCR",
    "Stmt", "Skip", "Assign", "ArrayAssign", "Seq", "If", "While", "LocalDecl", "seq",
    "tokenize", "Token", "LexError",
    "parse_monitor", "MonitorParseError",
    "check_monitor", "MonitorCheckError",
    "scalarize_monitor",
    "pretty_monitor", "pretty_stmt",
    "load_monitor",
]


def load_monitor(source: str) -> Monitor:
    """Parse, scalarize and check a monitor from DSL source text.

    This is the one-call frontend used by the pipeline, the examples and the
    benchmark registry.
    """
    monitor = parse_monitor(source)
    monitor = scalarize_monitor(monitor)
    check_monitor(monitor)
    return monitor
