"""Semantic checks for parsed monitors.

The checker enforces the well-formedness conditions the paper's development
relies on:

* guards are boolean-sorted and mention no array placeholders (scalarization
  must run first);
* statements assign only to declared fields or to method locals/params, with
  matching sorts;
* ``waituntil`` regions are not nested (guaranteed syntactically by the
  parser, re-checked here for programmatically-built monitors);
* expressions are well-sorted throughout.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.logic.free_vars import free_vars
from repro.logic.terms import BOOL, Expr, INT, Sort, SortError, Var, sort_of
from repro.lang.arrays import ArraySelect
from repro.lang.ast import (
    ArrayAssign,
    Assign,
    CCR,
    If,
    LocalDecl,
    MethodDecl,
    Monitor,
    Seq,
    Skip,
    Stmt,
    While,
)


class MonitorCheckError(ValueError):
    """Raised when a monitor violates a semantic well-formedness rule."""


def check_monitor(monitor: Monitor) -> None:
    """Validate *monitor*; raises :class:`MonitorCheckError` on the first violation."""
    field_sorts: Dict[str, Sort] = {}
    for decl in monitor.fields:
        if decl.is_array:
            raise MonitorCheckError(
                f"field {decl.name!r} is an unscalarized array; run scalarize_monitor first"
            )
        if decl.name in field_sorts:
            raise MonitorCheckError(f"duplicate field {decl.name!r}")
        field_sorts[decl.name] = decl.sort
        _check_sorted(decl.init, f"initializer of field {decl.name!r}")
        if sort_of(decl.init) is not decl.sort:
            raise MonitorCheckError(
                f"initializer of field {decl.name!r} has the wrong sort"
            )

    method_names: Set[str] = set()
    for method in monitor.methods:
        if method.name in method_names:
            raise MonitorCheckError(f"duplicate method {method.name!r}")
        method_names.add(method.name)
        _check_method(monitor, method, field_sorts)


def _collect_local_decls(stmt: Stmt, out: Dict[str, Sort]) -> None:
    if isinstance(stmt, LocalDecl):
        out[stmt.name] = stmt.sort
    for child in stmt.children():
        _collect_local_decls(child, out)


def _check_method(monitor: Monitor, method: MethodDecl, field_sorts: Dict[str, Sort]) -> None:
    scope: Dict[str, Sort] = dict(field_sorts)
    for param in method.params:
        if param.name in field_sorts:
            raise MonitorCheckError(
                f"parameter {param.name!r} of {method.name!r} shadows a field"
            )
        scope[param.name] = param.sort
    # Method locals are thread-local names with method scope: a local declared
    # in an earlier CCR (e.g. a ticket number) may appear in a later guard.
    for ccr in method.ccrs:
        _collect_local_decls(ccr.body, scope)
    for ccr in method.ccrs:
        guard_context = f"guard of {ccr.label or method.name}"
        _check_sorted(ccr.guard, guard_context)
        if sort_of(ccr.guard) is not BOOL:
            raise MonitorCheckError(f"{guard_context} is not boolean")
        _check_known_vars(ccr.guard, scope, guard_context)
        _check_stmt(ccr.body, dict(scope), field_sorts, method.name)


def _check_stmt(stmt: Stmt, scope: Dict[str, Sort], field_sorts: Dict[str, Sort],
                method_name: str) -> None:
    if isinstance(stmt, Skip):
        return
    if isinstance(stmt, LocalDecl):
        _check_sorted(stmt.init, f"initializer of local {stmt.name!r}")
        _check_known_vars(stmt.init, scope, f"initializer of local {stmt.name!r}")
        if stmt.name in field_sorts:
            raise MonitorCheckError(f"local {stmt.name!r} in {method_name!r} shadows a field")
        scope[stmt.name] = stmt.sort
        if sort_of(stmt.init) is not stmt.sort:
            raise MonitorCheckError(f"initializer of local {stmt.name!r} has the wrong sort")
        return
    if isinstance(stmt, Assign):
        context = f"assignment to {stmt.target!r} in {method_name!r}"
        if stmt.target not in scope:
            raise MonitorCheckError(f"{context}: undeclared variable")
        _check_sorted(stmt.value, context)
        _check_known_vars(stmt.value, scope, context)
        if sort_of(stmt.value) is not scope[stmt.target]:
            raise MonitorCheckError(f"{context}: sort mismatch")
        return
    if isinstance(stmt, ArrayAssign):
        raise MonitorCheckError(
            f"array assignment to {stmt.array!r} must be scalarized before checking"
        )
    if isinstance(stmt, Seq):
        for child in stmt.stmts:
            _check_stmt(child, scope, field_sorts, method_name)
        return
    if isinstance(stmt, If):
        _check_bool_cond(stmt.cond, scope, f"if-condition in {method_name!r}")
        _check_stmt(stmt.then, dict(scope), field_sorts, method_name)
        _check_stmt(stmt.orelse, dict(scope), field_sorts, method_name)
        return
    if isinstance(stmt, While):
        _check_bool_cond(stmt.cond, scope, f"while-condition in {method_name!r}")
        if stmt.invariant is not None:
            _check_bool_cond(stmt.invariant, scope, f"loop invariant in {method_name!r}")
        _check_stmt(stmt.body, dict(scope), field_sorts, method_name)
        return
    raise MonitorCheckError(f"unknown statement node {type(stmt).__name__}")


def _check_bool_cond(expr: Expr, scope: Dict[str, Sort], context: str) -> None:
    _check_sorted(expr, context)
    _check_known_vars(expr, scope, context)
    if sort_of(expr) is not BOOL:
        raise MonitorCheckError(f"{context} is not boolean")


def _check_sorted(expr: Expr, context: str) -> None:
    if _contains_array_select(expr):
        raise MonitorCheckError(f"{context} contains an unscalarized array access")
    try:
        sort_of(expr)
    except SortError as exc:
        raise MonitorCheckError(f"{context} is ill-sorted: {exc}") from exc


def _contains_array_select(expr: Expr) -> bool:
    if isinstance(expr, ArraySelect):
        return True
    return any(_contains_array_select(child) for child in expr.children())


def _check_known_vars(expr: Expr, scope: Dict[str, Sort], context: str) -> None:
    for var in free_vars(expr):
        declared = scope.get(var.name)
        if declared is None:
            raise MonitorCheckError(f"{context} mentions undeclared variable {var.name!r}")
        if declared is not var.var_sort:
            raise MonitorCheckError(
                f"{context} uses {var.name!r} at sort {var.var_sort.value} "
                f"but it is declared {declared.value}"
            )
