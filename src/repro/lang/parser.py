"""Recursive-descent parser for the monitor DSL.

The concrete syntax is deliberately Java-flavoured so the paper's benchmarks
can be transcribed almost verbatim::

    monitor RWLock {
        unsigned int readers = 0;
        boolean writerIn = false;

        atomic void enterReader() {
            waituntil (!writerIn) { readers++; }
        }
        atomic void exitReader() {
            if (readers > 0) { readers--; }
        }
        atomic void enterWriter() {
            waituntil (readers == 0 && !writerIn) { writerIn = true; }
        }
        atomic void exitWriter() {
            writerIn = false;
        }
    }

Top-level plain statements of a method are grouped into ``waituntil (true)``
regions as in the paper's Figure 3.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.logic import build
from repro.logic.terms import BOOL, Expr, INT, Sort, Var
from repro.lang.arrays import ArraySelect
from repro.lang.ast import (
    ArrayAssign,
    Assign,
    CCR,
    FieldDecl,
    If,
    LocalDecl,
    MethodDecl,
    Monitor,
    Param,
    Seq,
    Skip,
    Stmt,
    While,
    seq,
)
from repro.lang.lexer import KEYWORDS, Token, tokenize


class MonitorParseError(ValueError):
    """Raised on syntactically or referentially malformed monitor source."""


def parse_monitor(source: str) -> Monitor:
    """Parse DSL source text into a :class:`Monitor` (arrays not yet scalarized)."""
    return _Parser(tokenize(source)).parse_monitor()


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0
        # Symbol tables filled while parsing.
        self._field_sorts: Dict[str, Sort] = {}
        self._array_fields: Dict[str, Sort] = {}
        self._constants: Dict[str, int] = {}
        self._scope: List[Dict[str, Sort]] = []

    # -- token plumbing -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> MonitorParseError:
        token = token or self._peek()
        return MonitorParseError(f"line {token.line}, column {token.column}: {message}")

    def _expect(self, text: str) -> Token:
        token = self._advance()
        if token.text != text:
            raise self._error(f"expected {text!r} but found {token.text!r}", token)
        return token

    def _at(self, text: str) -> bool:
        return self._peek().text == text

    def _accept(self, text: str) -> bool:
        if self._at(text):
            self._advance()
            return True
        return False

    # -- declarations -------------------------------------------------------

    def parse_monitor(self) -> Monitor:
        self._expect("monitor")
        name_token = self._advance()
        if name_token.kind != "ident":
            raise self._error("expected monitor name", name_token)
        self._expect("{")
        fields: List[FieldDecl] = []
        methods: List[MethodDecl] = []
        while not self._at("}"):
            if self._at("atomic"):
                methods.append(self._parse_method())
            elif self._at("const"):
                self._parse_constant()
            else:
                fields.append(self._parse_field())
        self._expect("}")
        if self._peek().kind != "eof":
            raise self._error("trailing input after monitor body")
        if not methods:
            raise self._error("monitor declares no atomic methods")
        return Monitor(name_token.text, tuple(fields), tuple(methods),
                       tuple(sorted(self._constants.items())))

    def _parse_constant(self) -> None:
        self._expect("const")
        self._expect("int")
        name = self._expect_ident("constant name")
        self._expect("=")
        sign = -1 if self._accept("-") else 1
        token = self._advance()
        if token.kind != "int":
            raise self._error("constant initializer must be an integer literal", token)
        self._expect(";")
        self._constants[name] = sign * int(token.text)

    def _parse_type(self) -> Tuple[Sort, bool]:
        unsigned = self._accept("unsigned")
        token = self._advance()
        if token.text == "int":
            return INT, unsigned
        if token.text == "boolean":
            if unsigned:
                raise self._error("'unsigned boolean' is not a type", token)
            return BOOL, False
        raise self._error(f"expected a type but found {token.text!r}", token)

    def _parse_field(self) -> FieldDecl:
        sort, unsigned = self._parse_type()
        name = self._expect_ident("field name")
        array_size: Optional[int] = None
        if self._accept("["):
            size_token = self._advance()
            if size_token.kind == "int":
                array_size = int(size_token.text)
            elif size_token.text in self._constants:
                array_size = self._constants[size_token.text]
            else:
                raise self._error("array size must be an integer literal or const", size_token)
            self._expect("]")
        init: Expr = build.i(0) if sort is INT else build.FALSE
        if self._accept("="):
            init = self._parse_expr()
        self._expect(";")
        if name in self._field_sorts or name in self._array_fields:
            raise self._error(f"duplicate field {name!r}")
        if array_size is None:
            self._field_sorts[name] = sort
        else:
            self._array_fields[name] = sort
        return FieldDecl(name, sort, init, unsigned=unsigned, array_size=array_size)

    def _parse_method(self) -> MethodDecl:
        self._expect("atomic")
        if not self._accept("void"):
            # Allow a (ignored) primitive return type for Java fidelity.
            if self._peek().text in ("int", "boolean"):
                self._advance()
            else:
                raise self._error("expected a return type after 'atomic'")
        name = self._expect_ident("method name")
        self._expect("(")
        params: List[Param] = []
        scope: Dict[str, Sort] = {}
        if not self._at(")"):
            while True:
                sort, _unsigned = self._parse_type()
                param_name = self._expect_ident("parameter name")
                params.append(Param(param_name, sort))
                scope[param_name] = sort
                if not self._accept(","):
                    break
        self._expect(")")
        self._scope.append(scope)
        try:
            ccrs = self._parse_method_body(name)
        finally:
            self._scope.pop()
        return MethodDecl(name, tuple(params), tuple(ccrs))

    def _parse_method_body(self, method_name: str) -> List[CCR]:
        self._expect("{")
        ccrs: List[CCR] = []
        pending: List[Stmt] = []

        def flush_pending() -> None:
            if pending:
                label = f"{method_name}#{len(ccrs)}"
                ccrs.append(CCR(build.TRUE, seq(*pending), label))
                pending.clear()

        while not self._at("}"):
            if self._at("waituntil"):
                flush_pending()
                self._advance()
                self._expect("(")
                guard = self._parse_expr(expect_bool=True)
                self._expect(")")
                if self._accept(";"):
                    body: Stmt = Skip()
                else:
                    body = self._parse_block()
                label = f"{method_name}#{len(ccrs)}"
                ccrs.append(CCR(guard, body, label))
            else:
                pending.append(self._parse_statement())
        flush_pending()
        self._expect("}")
        if not ccrs:
            ccrs.append(CCR(build.TRUE, Skip(), f"{method_name}#0"))
        return ccrs

    # -- statements ---------------------------------------------------------

    def _parse_block(self) -> Stmt:
        self._expect("{")
        stmts: List[Stmt] = []
        while not self._at("}"):
            stmts.append(self._parse_statement())
        self._expect("}")
        return seq(*stmts)

    def _parse_statement(self) -> Stmt:
        token = self._peek()
        if token.text == "{":
            return self._parse_block()
        if token.text == "skip":
            self._advance()
            self._expect(";")
            return Skip()
        if token.text == "return":
            self._advance()
            if not self._at(";"):
                self._parse_expr()
            self._expect(";")
            return Skip()
        if token.text == "if":
            return self._parse_if()
        if token.text == "while":
            return self._parse_while()
        if token.text == "waituntil":
            raise self._error("waituntil statements may only appear at the top level "
                              "of a method body (paper §3.2)")
        if token.text in ("int", "boolean", "unsigned"):
            return self._parse_local_decl()
        return self._parse_assignment()

    def _parse_if(self) -> Stmt:
        self._expect("if")
        self._expect("(")
        cond = self._parse_expr(expect_bool=True)
        self._expect(")")
        then = self._parse_statement()
        orelse: Stmt = Skip()
        if self._accept("else"):
            orelse = self._parse_statement()
        return If(cond, then, orelse)

    def _parse_while(self) -> Stmt:
        self._expect("while")
        self._expect("(")
        cond = self._parse_expr(expect_bool=True)
        self._expect(")")
        invariant: Optional[Expr] = None
        if self._accept("invariant"):
            self._expect("(")
            invariant = self._parse_expr(expect_bool=True)
            self._expect(")")
        body = self._parse_statement()
        return While(cond, body, invariant)

    def _parse_local_decl(self) -> Stmt:
        sort, _unsigned = self._parse_type()
        name = self._expect_ident("local variable name")
        init: Expr = build.i(0) if sort is INT else build.FALSE
        if self._accept("="):
            init = self._parse_expr(expect_bool=(sort is BOOL))
        self._expect(";")
        if self._scope:
            self._scope[-1][name] = sort
        return LocalDecl(name, sort, init)

    def _parse_assignment(self) -> Stmt:
        name = self._expect_ident("assignment target")
        index: Optional[Expr] = None
        if self._accept("["):
            index = self._parse_expr()
            self._expect("]")
        target_sort = self._sort_of(name, array=index is not None)
        current: Expr
        if index is not None:
            current = ArraySelect(name, index, target_sort)
        else:
            current = Var(name, target_sort)
        token = self._advance()
        if token.text == "=":
            value = self._parse_expr(expect_bool=(target_sort is BOOL))
        elif token.text == "++":
            value = build.add(current, 1)
        elif token.text == "--":
            value = build.sub(current, 1)
        elif token.text == "+=":
            value = build.add(current, self._parse_expr())
        elif token.text == "-=":
            value = build.sub(current, self._parse_expr())
        else:
            raise self._error(f"expected an assignment operator, found {token.text!r}", token)
        self._expect(";")
        if index is not None:
            return ArrayAssign(name, index, value)
        return Assign(name, value)

    # -- expressions --------------------------------------------------------

    def _parse_expr(self, expect_bool: bool = False) -> Expr:
        expr = self._parse_or()
        if expect_bool and isinstance(expr, Var) and expr.var_sort is INT:
            raise self._error(f"expected a boolean expression but {expr.name!r} is an int")
        return expr

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._at("||"):
            self._advance()
            left = build.lor(left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._at("&&"):
            self._advance()
            left = build.land(left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self._accept("!"):
            return build.lnot(self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        ops = {"==": build.eq, "!=": build.ne, "<=": build.le, ">=": build.ge,
               "<": build.lt, ">": build.gt}
        for symbol, builder in ops.items():
            if self._at(symbol):
                self._advance()
                right = self._parse_additive()
                return builder(left, right)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            if self._at("+"):
                self._advance()
                left = build.add(left, self._parse_multiplicative())
            elif self._at("-"):
                self._advance()
                left = build.sub(left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self._at("*"):
            self._advance()
            left = build.mul(left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expr:
        if self._accept("-"):
            return build.neg(self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._advance()
        if token.kind == "int":
            return build.i(int(token.text))
        if token.text == "(":
            expr = self._parse_or()
            self._expect(")")
            return expr
        if token.text == "true":
            return build.TRUE
        if token.text == "false":
            return build.FALSE
        if token.kind == "ident":
            name = token.text
            if name in KEYWORDS:
                raise self._error(f"unexpected keyword {name!r} in expression", token)
            if name in self._constants:
                return build.i(self._constants[name])
            if self._accept("["):
                index = self._parse_expr()
                self._expect("]")
                elem_sort = self._sort_of(name, array=True, token=token)
                return ArraySelect(name, index, elem_sort)
            return Var(name, self._sort_of(name, token=token))
        raise self._error(f"unexpected token {token.text!r} in expression", token)

    # -- symbol lookup ------------------------------------------------------

    def _expect_ident(self, what: str) -> str:
        token = self._advance()
        if token.kind != "ident" or token.text in KEYWORDS:
            raise self._error(f"expected {what} but found {token.text!r}", token)
        return token.text

    def _sort_of(self, name: str, array: bool = False, token: Optional[Token] = None) -> Sort:
        if array:
            if name not in self._array_fields:
                raise self._error(f"unknown array field {name!r}", token)
            return self._array_fields[name]
        for scope in reversed(self._scope):
            if name in scope:
                return scope[name]
        if name in self._field_sorts:
            return self._field_sorts[name]
        raise self._error(f"unknown variable {name!r}", token)
