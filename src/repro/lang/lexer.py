"""Lexer for the monitor DSL."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List


class LexError(ValueError):
    """Raised on characters the lexer does not understand."""


@dataclass(frozen=True)
class Token:
    """A lexical token with source position (1-based line/column)."""

    kind: str  # "ident", "int", "op", "eof"
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


KEYWORDS = frozenset({
    "monitor", "atomic", "void", "int", "boolean", "unsigned", "const",
    "if", "else", "while", "waituntil", "true", "false", "return", "skip",
    "invariant", "new",
})

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<ws>\s+)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)*)
  | (?P<op>\+\+|--|\+=|-=|==|!=|<=|>=|&&|\|\||[()\[\]{}<>+\-*=!;,.])
    """,
    re.VERBOSE | re.DOTALL,
)


def tokenize(source: str) -> List[Token]:
    """Tokenize DSL source text; comments (// and /* */) are skipped."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            column = pos - line_start + 1
            raise LexError(f"unexpected character {source[pos]!r} at line {line}, column {column}")
        text = match.group()
        kind = match.lastgroup or "op"
        column = pos - line_start + 1
        if kind not in ("ws", "comment"):
            tokens.append(Token(kind, text, line, column))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = pos + text.rfind("\n") + 1
        pos = match.end()
    tokens.append(Token("eof", "", line, 1))
    return tokens
