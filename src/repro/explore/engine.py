"""The exploration engine: strategies × scheduler × oracle × reduction.

`explore_class` is the core loop: run a budget of schedules of one coop-mode
monitor class over fixed per-thread programs, judge every run with the
differential oracle, and delta-debug the first failing schedule down to a
minimal, replayable counterexample.  `explore_benchmark` wires that loop to
the paper's benchmark registry (any of the four disciplines), and
`explore_explicit` to an arbitrary placed monitor — which is how mutation
tests inject lost-wakeup bugs and how the fuzzer checks freshly generated
placements.

Three strategies are supported (see :mod:`repro.explore.strategies`):

* ``dfs`` — exhaustive depth-first enumeration of all scheduling decisions.
  By default it runs with **dynamic partial-order reduction** (``por=True``):
  sleep sets plus a DPOR-style backtrack filter over grant decisions (two
  enabled choices commute unless their method footprints touch the same
  shared fields or condition variables), and an early *merge probe* that
  cuts a backtracking replay the moment its divergent suffix re-enters an
  already-visited state — so the engine judges one canonical representative
  per Mazurkiewicz trace instead of every interleaving.  ``por=False``
  recovers the plain PR-2 DFS (every popped prefix runs to completion and is
  judged), which the soundness cross-check tests compare against.  Both
  variants set ``exhausted=True`` when the whole (reduced) space was covered.
* ``random`` — seeded uniform random walks (seed *i* of a budget-N run uses
  ``seed + i``, so any failing walk is reproducible in isolation).
* ``pct`` — PCT-style priority schedules, better at deep ordering bugs.

All strategies share a per-campaign :class:`~repro.explore.oracle.OracleCache`
so commit prefixes are interpreted against the reference semantics exactly
once, however many schedules revisit them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.codegen.python_gen import (
    generate_python_autosynch,
    generate_python_explicit,
    generate_python_implicit,
    materialize_class,
)
from repro.explore.oracle import OracleCache, OracleVerdict, check_run
from repro.explore.reduce import ddmin
from repro.explore.scheduler import Decision, RunResult, run_schedule
from repro.explore.strategies import (
    DporStrategy,
    FirstStrategy,
    IndependenceRelation,
    MethodFootprint,
    ScheduleStrategy,
    make_strategy,
)
from repro.explore.trace import render_trace
from repro.lang.ast import (
    ArrayAssign,
    Assign,
    If,
    LocalDecl,
    Monitor,
    Stmt,
    While,
    stmt_assigned_vars,
)
from repro.logic import TRUE
from repro.logic.free_vars import free_vars
from repro.placement.target import ExplicitMonitor

#: The disciplines the engine can adversarially schedule.
COOP_DISCIPLINES: Tuple[str, ...] = ("expresso", "explicit", "autosynch", "implicit")

#: Exploration strategies accepted by the engine/CLI.
STRATEGIES: Tuple[str, ...] = ("dfs", "random", "pct")

_COOP_CLASS_CACHE: Dict[Tuple, type] = {}


# ---------------------------------------------------------------------------
# Method footprints (the POR independence base)
# ---------------------------------------------------------------------------


def _expr_fields(expr, fields: frozenset) -> Set[str]:
    return {var.name for var in free_vars(expr) if var.name in fields}


def _stmt_reads(stmt: Stmt, fields: frozenset) -> Set[str]:
    """Shared fields read anywhere inside *stmt*."""
    reads: Set[str] = set()
    if isinstance(stmt, Assign):
        reads |= _expr_fields(stmt.value, fields)
    elif isinstance(stmt, ArrayAssign):
        reads |= _expr_fields(stmt.index, fields)
        reads |= _expr_fields(stmt.value, fields)
    elif isinstance(stmt, LocalDecl):
        reads |= _expr_fields(stmt.init, fields)
    elif isinstance(stmt, If):
        reads |= _expr_fields(stmt.cond, fields)
    elif isinstance(stmt, While):
        reads |= _expr_fields(stmt.cond, fields)
    for child in stmt.children():
        reads |= _stmt_reads(child, fields)
    return reads


def footprints_for_explicit(explicit: ExplicitMonitor) -> Dict[str, MethodFootprint]:
    """Per-method shared-field/condition-variable footprints of a placement.

    The footprint over-approximates everything the *compiled* method can
    touch: guard evaluations and conditional-notification predicates count as
    reads, placed notifications as signals on their condition variable, and
    non-trivial guards as waits.  Mutants produced by
    :meth:`ExplicitMonitor.without_notification` get footprints from their
    own (reduced) notification sets, so independence reflects the mutant's
    actual behaviour.
    """
    fields = frozenset(decl.name for decl in explicit.fields)
    cond_of = {guard: name for guard, name in explicit.condition_vars}
    footprints: Dict[str, MethodFootprint] = {}
    for method in explicit.methods:
        reads: Set[str] = set()
        writes: Set[str] = set()
        waits: Set[str] = set()
        signals: Set[str] = set()
        for ccr in method.ccrs:
            reads |= _expr_fields(ccr.guard, fields)
            reads |= _stmt_reads(ccr.body, fields)
            writes |= set(stmt_assigned_vars(ccr.body)) & fields
            if ccr.guard != TRUE:
                cond = cond_of.get(ccr.guard)
                if cond is not None:
                    waits.add(cond)
            for notification in ccr.notifications:
                cond = cond_of.get(notification.predicate)
                if cond is None:
                    continue  # the code generator drops these too
                signals.add(cond)
                if notification.conditional:
                    reads |= _expr_fields(notification.predicate, fields)
        footprints[method.name] = MethodFootprint(
            frozenset(reads), frozenset(writes),
            frozenset(waits), frozenset(signals))
    return footprints


# ---------------------------------------------------------------------------
# Coop-class construction
# ---------------------------------------------------------------------------


def coop_class_for_explicit(explicit: ExplicitMonitor,
                            class_name: str = "CoopMonitor") -> type:
    """Materialize the scheduler-targeting class for a placed monitor."""
    source = generate_python_explicit(explicit, class_name=class_name, coop=True)
    cls = materialize_class(source, class_name)
    cls._coop_footprints = footprints_for_explicit(explicit)
    cls._coop_source = source
    return cls


def coop_monitor_and_class(spec, discipline: str,
                           pipeline=None) -> Tuple[Monitor, type]:
    """(reference monitor AST, coop class) for one benchmark/discipline pair."""
    from repro.harness.saturation import expresso_result
    from repro.placement.pipeline import ExpressoPipeline

    pipeline = pipeline if pipeline is not None else ExpressoPipeline()
    key = (spec.name, discipline, pipeline.config_key())
    if discipline == "expresso":
        result = expresso_result(spec, pipeline)
        reference = result.monitor
        if key not in _COOP_CLASS_CACHE:
            _COOP_CLASS_CACHE[key] = coop_class_for_explicit(result.explicit)
    elif discipline == "explicit":
        reference = spec.monitor()
        if key not in _COOP_CLASS_CACHE:
            _COOP_CLASS_CACHE[key] = coop_class_for_explicit(spec.handwritten_explicit())
    elif discipline == "autosynch":
        reference = spec.monitor()
        if key not in _COOP_CLASS_CACHE:
            source = generate_python_autosynch(reference, "CoopMonitor", coop=True)
            _COOP_CLASS_CACHE[key] = materialize_class(source, "CoopMonitor")
            _COOP_CLASS_CACHE[key]._coop_source = source
    elif discipline == "implicit":
        reference = spec.monitor()
        if key not in _COOP_CLASS_CACHE:
            source = generate_python_implicit(reference, "CoopMonitor", coop=True)
            _COOP_CLASS_CACHE[key] = materialize_class(source, "CoopMonitor")
            _COOP_CLASS_CACHE[key]._coop_source = source
    else:
        raise ValueError(f"unknown discipline {discipline!r}; "
                         f"expected one of {COOP_DISCIPLINES}")
    # The automatic runtimes broadcast on every exit, so no two of their
    # segments commute; they get no footprints (POR degrades to merge
    # probing, which is discipline-agnostic).
    return reference, _COOP_CLASS_CACHE[key]


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass
class Counterexample:
    """A failing schedule, minimized and rendered for replay."""

    kind: str                      # oracle failure kind
    detail: str
    schedule: Tuple[int, ...]      # the original failing choice list
    minimized: Tuple[int, ...]     # the delta-debugged choice list
    trace: str                     # readable interleaving of the minimized run
    strategy: str
    seed: Optional[int]            # seed that found it (sampling strategies)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "schedule": list(self.schedule),
            "minimized": list(self.minimized),
            "strategy": self.strategy,
            "seed": self.seed,
            "trace": self.trace,
        }


@dataclass
class ExplorationResult:
    """Aggregate outcome of one exploration campaign.

    ``schedules_run`` counts fully executed, oracle-judged schedules.
    ``pruned`` counts backtracking replays cut off by the merge probe (their
    divergent suffix re-entered a visited state), and ``por_skipped`` counts
    subtrees the partial-order reduction proved redundant without running
    them (sleep-set hits and backtrack-filter skips).  ``budget_exhausted``
    distinguishes "stopped because the budget ran out" from "covered
    everything" (``exhausted``).
    """

    benchmark: str
    discipline: str
    strategy: str
    seed: int
    threads: int = 0
    ops: int = 0
    workers: int = 1
    schedules_run: int = 0
    completed: int = 0
    stalls: int = 0
    pruned: int = 0
    por_skipped: int = 0
    distinct_states: int = 0
    exhausted: bool = False
    budget_exhausted: bool = False
    oracle_hits: int = 0
    oracle_misses: int = 0
    elapsed_seconds: float = 0.0
    failures: List[Counterexample] = field(default_factory=list)
    #: Stable 64-bit hashes of the visited-state set (only populated when the
    #: engine is asked to export them, e.g. to union shard coverage).
    state_hashes: Optional[List[int]] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def schedules_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.schedules_run / self.elapsed_seconds

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "discipline": self.discipline,
            "strategy": self.strategy,
            "seed": self.seed,
            "threads": self.threads,
            "ops": self.ops,
            "workers": self.workers,
            "schedules_run": self.schedules_run,
            "completed": self.completed,
            "stalls": self.stalls,
            "pruned": self.pruned,
            "por_skipped": self.por_skipped,
            "distinct_states": self.distinct_states,
            "exhausted": self.exhausted,
            "budget_exhausted": self.budget_exhausted,
            "oracle_hits": self.oracle_hits,
            "oracle_misses": self.oracle_misses,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "schedules_per_second": round(self.schedules_per_second, 2),
            "ok": self.ok,
            "failures": [failure.to_dict() for failure in self.failures],
        }


# ---------------------------------------------------------------------------
# Core loops
# ---------------------------------------------------------------------------


def _run_once(monitor: Monitor, coop_class: type, programs, strategy,
              max_steps: int, fingerprints: bool = False):
    instance = coop_class()
    result = run_schedule(instance, programs, strategy, max_steps,
                          fingerprints=fingerprints)
    verdict = check_run(monitor, programs, instance, result)
    return result, verdict


def replay_schedule(monitor: Monitor, coop_class: type, programs,
                    schedule: Sequence[int],
                    max_steps: int = 20_000) -> Tuple[RunResult, OracleVerdict]:
    """Replay a recorded/minimized schedule deterministically."""
    return _run_once(monitor, coop_class, programs,
                     ScheduleStrategy(schedule, FirstStrategy()), max_steps)


def _minimize(monitor: Monitor, coop_class: type, programs,
              schedule: Tuple[int, ...], kind: str,
              max_steps: int) -> Tuple[Tuple[int, ...], RunResult, OracleVerdict]:
    """ddmin the schedule, then rerun the minimum for its trace."""

    def reproduces(candidate: Tuple[int, ...]) -> bool:
        _result, verdict = replay_schedule(monitor, coop_class, programs,
                                           candidate, max_steps)
        return verdict.is_failure and verdict.kind == kind

    minimized = ddmin(schedule, reproduces)
    result, verdict = replay_schedule(monitor, coop_class, programs,
                                      minimized, max_steps)
    return minimized, result, verdict


def _record_failure(outcome: ExplorationResult, monitor, coop_class, programs,
                    run: RunResult, verdict: OracleVerdict, strategy_name: str,
                    seed: Optional[int], max_steps: int, minimize: bool) -> None:
    schedule = run.choices
    if minimize:
        minimized, min_run, min_verdict = _minimize(
            monitor, coop_class, programs, schedule, verdict.kind, max_steps)
        trace = render_trace(min_run, programs, min_verdict)
        detail = min_verdict.detail or verdict.detail
    else:
        minimized = schedule
        trace = render_trace(run, programs, verdict)
        detail = verdict.detail
    outcome.failures.append(Counterexample(
        kind=verdict.kind or "failure", detail=detail, schedule=schedule,
        minimized=minimized, trace=trace, strategy=strategy_name, seed=seed))


def _tally(outcome: ExplorationResult, run: RunResult,
           verdict: OracleVerdict) -> None:
    outcome.schedules_run += 1
    if run.outcome == "completed":
        outcome.completed += 1
    elif verdict.ok and verdict.kind == "stall":
        outcome.stalls += 1


def _explore_sampling(monitor, coop_class, programs, outcome: ExplorationResult,
                      budget: int, seed: int, max_steps: int,
                      stop_on_failure: bool, minimize: bool,
                      oracle: OracleCache) -> None:
    # PCT change points must land inside the run: roughly one grant decision
    # per operation plus slack for waits/relays.
    expected_decisions = max(8, 2 * sum(len(program) for program in programs))
    for iteration in range(budget):
        walk_seed = seed + iteration
        strategy = make_strategy(outcome.strategy, walk_seed,
                                 expected_decisions=expected_decisions)
        instance = coop_class()
        run = run_schedule(instance, programs, strategy, max_steps)
        verdict = oracle.judge(run, instance)
        _tally(outcome, run, verdict)
        if verdict.is_failure:
            _record_failure(outcome, monitor, coop_class, programs, run, verdict,
                            outcome.strategy, walk_seed, max_steps, minimize)
            if stop_on_failure:
                return


def _explore_dfs_plain(monitor, coop_class, programs, outcome: ExplorationResult,
                       budget: int, max_steps: int, stop_on_failure: bool,
                       minimize: bool, oracle: OracleCache,
                       seen: set, dfs_prefixes=None) -> None:
    stack: List[Tuple[int, ...]] = (
        [tuple(prefix) for prefix in reversed(dfs_prefixes)]
        if dfs_prefixes else [()])
    while stack and outcome.schedules_run < budget:
        prefix = stack.pop()
        strategy = ScheduleStrategy(prefix, FirstStrategy())
        instance = coop_class()
        run = run_schedule(instance, programs, strategy, max_steps,
                           fingerprints=True, fingerprint_after=len(prefix))
        verdict = oracle.judge(run, instance)
        _tally(outcome, run, verdict)
        # Decisions at positions < len(prefix) replay ancestor choices whose
        # alternatives the ancestors already pushed; fresh positions start at
        # len(prefix).  A fresh position whose pre-decision state was already
        # visited roots a subtree explored elsewhere: stop expanding there.
        # (Expansion happens before the failure check so that a failing first
        # run still records its states and pending alternatives — `exhausted`
        # must not claim full coverage after an early stop.)
        limit = len(run.decisions)
        for position in range(len(prefix), len(run.decisions)):
            fingerprint = run.decisions[position].fingerprint
            if fingerprint is None:
                continue
            if fingerprint in seen:
                limit = position
                outcome.pruned += 1
                break
            seen.add(fingerprint)
        choices = run.choices
        for position in range(limit - 1, len(prefix) - 1, -1):
            decision = run.decisions[position]
            for alternative in range(len(decision.candidates)):
                if alternative != decision.chosen:
                    stack.append(choices[:position] + (alternative,))
        if verdict.is_failure:
            _record_failure(outcome, monitor, coop_class, programs, run, verdict,
                            "dfs", None, max_steps, minimize)
            if stop_on_failure:
                break
    outcome.exhausted = not stack
    outcome.budget_exhausted = bool(stack)


def _commutes_past(run: RunResult, decision: Decision, tid: int, method: str,
                   independence: IndependenceRelation) -> bool:
    """Does deferring thread *tid*'s pending segment commute with the run?

    The DPOR backtrack filter: the sibling choice "grant *tid* now" needs no
    exploration when every segment the run executed between this decision and
    *tid*'s own next grant is independent of *tid*'s pending method — the two
    orders reach the same state through equivalent (Mazurkiewicz-equal)
    traces, and the run already covers the canonical one.  Truncated runs
    where *tid* never ran again answer conservatively False.
    """
    # events[event_index] is the chosen thread's own grant: the scan starts
    # there so the chosen segment itself is dependence-checked too.
    for event in run.events[decision.event_index:]:
        if event.kind != "grant":
            continue
        if event.thread == tid:
            return True
        if not independence.independent(method, event.label):
            return False
    return False


def _expand_dpor(run: RunResult, prefix: Tuple[int, ...],
                 strategy: DporStrategy, stack: list,
                 independence: IndependenceRelation,
                 outcome: ExplorationResult) -> None:
    """Push the non-redundant sibling prefixes of one DPOR run.

    Children of each decision node are pushed so pops follow exploration
    order (shallowest node first, ascending alternatives), and each sibling's
    sleep set accumulates the siblings explored before it — the classic
    sleep-set discipline adapted to the worklist DFS.
    """
    decisions = run.decisions
    sleeps = strategy.fresh_sleeps
    choices = run.choices
    entries: List[Tuple[Tuple[int, ...], frozenset]] = []
    for offset, position in enumerate(range(len(prefix), len(decisions))):
        decision = decisions[position]
        node_sleep = sleeps[offset]
        child_prefix = choices[:position]
        if decision.kind != "grant":
            # Signal choices are not reduced: every alternative wake target
            # is explored (the woken thread's identity is observable).
            for alternative in range(len(decision.candidates)):
                if alternative != decision.chosen:
                    entries.append((child_prefix + (alternative,), node_sleep))
            continue
        chosen_tid = decision.candidates[decision.chosen]
        chosen_method = decision.methods[decision.chosen]
        asleep = {tid for tid, _method in node_sleep}
        cumulative = set(node_sleep)
        cumulative.add((chosen_tid, chosen_method))
        for alternative in range(len(decision.candidates)):
            if alternative == decision.chosen:
                continue
            tid = decision.candidates[alternative]
            method = decision.methods[alternative]
            if tid in asleep:
                # Sleep set: an ancestor's sibling already explores every
                # trace that starts by running this thread here.
                outcome.por_skipped += 1
                continue
            if _commutes_past(run, decision, tid, method, independence):
                outcome.por_skipped += 1
                continue
            entries.append((child_prefix + (alternative,), frozenset(cumulative)))
            cumulative.add((tid, method))
    stack.extend(reversed(entries))


def _explore_dpor(monitor, coop_class, programs, outcome: ExplorationResult,
                  budget: int, max_steps: int, stop_on_failure: bool,
                  minimize: bool, oracle: OracleCache,
                  seen: set, dfs_prefixes=None) -> None:
    independence = IndependenceRelation(
        getattr(coop_class, "_coop_footprints", None))
    stack: List[Tuple[Tuple[int, ...], frozenset]] = (
        [(tuple(prefix), frozenset()) for prefix in reversed(dfs_prefixes)]
        if dfs_prefixes else [((), frozenset())])

    def probe(fingerprint: tuple) -> bool:
        if fingerprint in seen:
            return True
        seen.add(fingerprint)
        return False

    # Probes (merge-aborted replays) are bounded by the state-graph edge
    # count, but cap total work anyway so a pathological class cannot spin.
    work_cap = 60 * budget
    stopped = False
    while stack and outcome.schedules_run < budget and not stopped:
        if outcome.pruned + outcome.por_skipped >= work_cap:
            break
        prefix, sleep = stack.pop()
        strategy = DporStrategy(prefix, sleep, independence)
        instance = coop_class()
        run = run_schedule(instance, programs, strategy, max_steps,
                           fingerprints=True, fingerprint_after=len(prefix),
                           merge_probe=probe)
        if run.outcome == "merged":
            outcome.pruned += 1
            verdict = oracle.judge_partial(run)
        elif run.outcome == "sleep-set":
            outcome.por_skipped += 1
            verdict = oracle.judge_partial(run)
        else:
            verdict = oracle.judge(run, instance)
            _tally(outcome, run, verdict)
        _expand_dpor(run, prefix, strategy, stack, independence, outcome)
        if verdict.is_failure:
            _record_failure(outcome, monitor, coop_class, programs, run, verdict,
                            "dfs", None, max_steps, minimize)
            if stop_on_failure:
                stopped = True
    outcome.exhausted = not stack
    outcome.budget_exhausted = bool(stack)


def explore_class(monitor: Monitor, coop_class: type, programs,
                  strategy: str = "random", budget: int = 200, seed: int = 0,
                  max_steps: int = 20_000, stop_on_failure: bool = True,
                  minimize: bool = True, benchmark: str = "?",
                  discipline: str = "?", por: bool = True,
                  dfs_prefixes: Optional[Sequence[Sequence[int]]] = None,
                  export_state_hashes: bool = False) -> ExplorationResult:
    """Explore one coop monitor class over fixed per-thread programs.

    ``por`` selects partial-order reduction for the ``dfs`` strategy
    (sampling strategies ignore it).  ``dfs_prefixes`` restricts the DFS to
    the subtrees rooted at the given choice prefixes (the parallel driver
    shards the top-level decision this way).  ``export_state_hashes``
    populates ``result.state_hashes`` with stable hashes of the visited
    states so shard coverage can be unioned across processes.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
    # ``ops`` falls back to the longest program; registry-level entry points
    # overwrite it with the actual workload parameter.
    outcome = ExplorationResult(benchmark=benchmark, discipline=discipline,
                                strategy=strategy, seed=seed,
                                threads=len(programs),
                                ops=max((len(p) for p in programs), default=0))
    oracle = OracleCache(monitor, programs)
    seen: set = set()
    start = time.perf_counter()
    if strategy == "dfs":
        driver = _explore_dpor if por else _explore_dfs_plain
        driver(monitor, coop_class, programs, outcome, budget, max_steps,
               stop_on_failure, minimize, oracle, seen, dfs_prefixes)
        outcome.distinct_states = len(seen)
    else:
        _explore_sampling(monitor, coop_class, programs, outcome, budget, seed,
                          max_steps, stop_on_failure, minimize, oracle)
    outcome.elapsed_seconds = time.perf_counter() - start
    outcome.oracle_hits = oracle.hits
    outcome.oracle_misses = oracle.misses
    if export_state_hashes:
        outcome.state_hashes = sorted(_stable_hash(fp) for fp in seen)
    return outcome


def _stable_hash(fingerprint: tuple) -> int:
    """A process-stable 64-bit hash of a state fingerprint."""
    import hashlib

    digest = hashlib.blake2b(repr(fingerprint).encode(), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


def explore_explicit(explicit: ExplicitMonitor, reference: Monitor, programs,
                     **kwargs) -> ExplorationResult:
    """Explore an arbitrary placed monitor (mutants, fuzzer output, ...)."""
    coop_class = coop_class_for_explicit(explicit)
    kwargs.setdefault("benchmark", reference.name)
    kwargs.setdefault("discipline", "explicit")
    return explore_class(reference, coop_class, programs, **kwargs)


def explore_benchmark(spec, discipline: str = "expresso", threads: int = 3,
                      ops: int = 3, pipeline=None, **kwargs) -> ExplorationResult:
    """Explore one registry benchmark under a discipline's coop compilation."""
    reference, coop_class = coop_monitor_and_class(spec, discipline, pipeline)
    programs = spec.workload(threads, ops)
    kwargs.setdefault("benchmark", spec.name)
    kwargs.setdefault("discipline", discipline)
    result = explore_class(reference, coop_class, programs, **kwargs)
    # Record the *workload parameter*, not the derived program length (roles
    # may emit several calls per op) — `--replay` feeds it back to
    # ``spec.workload`` and must regenerate the same programs.
    result.ops = ops
    return result
