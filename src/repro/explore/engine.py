"""The exploration engine: strategies × scheduler × oracle × reduction.

`explore_class` is the core loop: run a budget of schedules of one coop-mode
monitor class over fixed per-thread programs, judge every run with the
differential oracle, and delta-debug the first failing schedule down to a
minimal, replayable counterexample.  `explore_benchmark` wires that loop to
the paper's benchmark registry (any of the four disciplines), and
`explore_explicit` to an arbitrary placed monitor — which is how mutation
tests inject lost-wakeup bugs and how the fuzzer checks freshly generated
placements.

Three strategies are supported (see :mod:`repro.explore.strategies`):

* ``dfs`` — exhaustive depth-first enumeration of all scheduling decisions.
  By default it runs with **dynamic partial-order reduction** (``por=True``):
  sleep sets plus a DPOR-style backtrack filter over grant decisions (two
  enabled choices commute unless their method footprints touch the same
  shared fields or condition variables), and an early *merge probe* that
  cuts a backtracking replay the moment its divergent suffix re-enters an
  already-visited state — so the engine judges one canonical representative
  per Mazurkiewicz trace instead of every interleaving.  ``por=False``
  recovers the plain PR-2 DFS (every popped prefix runs to completion and is
  judged), which the soundness cross-check tests compare against.  Both
  variants set ``exhausted=True`` when the whole (reduced) space was covered.
* ``random`` — seeded uniform random walks (seed *i* of a budget-N run uses
  ``seed + i``, so any failing walk is reproducible in isolation).
* ``pct`` — PCT-style priority schedules, better at deep ordering bugs.

All strategies share a per-campaign :class:`~repro.explore.oracle.OracleCache`
so commit prefixes are interpreted against the reference semantics exactly
once, however many schedules revisit them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.codegen.python_gen import (
    generate_python_autosynch,
    generate_python_explicit,
    generate_python_implicit,
    materialize_class,
)
from repro.explore.oracle import OracleCache, OracleVerdict, check_run
from repro.explore.reduce import ddmin
from repro.explore.scheduler import Decision, RunResult, run_schedule
from repro.explore.strategies import (
    DporStrategy,
    FirstStrategy,
    IndependenceRelation,
    MethodFootprint,
    ScheduleStrategy,
    make_strategy,
)
from repro.explore.trace import render_trace
from repro.lang.ast import (
    ArrayAssign,
    Assign,
    If,
    LocalDecl,
    Monitor,
    Stmt,
    While,
    stmt_assigned_vars,
)
from repro.logic import TRUE
from repro.logic.evaluate import EvaluationError, evaluate
from repro.logic.free_vars import free_vars
from repro.placement.target import ExplicitMonitor

#: The disciplines the engine can adversarially schedule.
COOP_DISCIPLINES: Tuple[str, ...] = ("expresso", "explicit", "autosynch", "implicit")

#: Exploration strategies accepted by the engine/CLI.
STRATEGIES: Tuple[str, ...] = ("dfs", "random", "pct")

_COOP_CLASS_CACHE: Dict[Tuple, type] = {}


# ---------------------------------------------------------------------------
# Method footprints (the POR independence base)
# ---------------------------------------------------------------------------


def _expr_fields(expr, fields: frozenset) -> Set[str]:
    return {var.name for var in free_vars(expr) if var.name in fields}


def _stmt_reads(stmt: Stmt, fields: frozenset) -> Set[str]:
    """Shared fields read anywhere inside *stmt*."""
    reads: Set[str] = set()
    if isinstance(stmt, Assign):
        reads |= _expr_fields(stmt.value, fields)
    elif isinstance(stmt, ArrayAssign):
        reads |= _expr_fields(stmt.index, fields)
        reads |= _expr_fields(stmt.value, fields)
    elif isinstance(stmt, LocalDecl):
        reads |= _expr_fields(stmt.init, fields)
    elif isinstance(stmt, If):
        reads |= _expr_fields(stmt.cond, fields)
    elif isinstance(stmt, While):
        reads |= _expr_fields(stmt.cond, fields)
    for child in stmt.children():
        reads |= _stmt_reads(child, fields)
    return reads


def footprints_for_explicit(explicit: ExplicitMonitor) -> Dict[str, MethodFootprint]:
    """Per-method shared-field/condition-variable footprints of a placement.

    The footprint over-approximates everything the *compiled* method can
    touch: guard evaluations and conditional-notification predicates count as
    reads, placed notifications as signals on their condition variable, and
    non-trivial guards as waits.  Mutants produced by
    :meth:`ExplicitMonitor.without_notification` get footprints from their
    own (reduced) notification sets, so independence reflects the mutant's
    actual behaviour.
    """
    fields = frozenset(decl.name for decl in explicit.fields)
    cond_of = {guard: name for guard, name in explicit.condition_vars}
    footprints: Dict[str, MethodFootprint] = {}
    for method in explicit.methods:
        reads: Set[str] = set()
        writes: Set[str] = set()
        waits: Set[str] = set()
        signals: Set[str] = set()
        for ccr in method.ccrs:
            reads |= _expr_fields(ccr.guard, fields)
            reads |= _stmt_reads(ccr.body, fields)
            writes |= set(stmt_assigned_vars(ccr.body)) & fields
            if ccr.guard != TRUE:
                cond = cond_of.get(ccr.guard)
                if cond is not None:
                    waits.add(cond)
            for notification in ccr.notifications:
                cond = cond_of.get(notification.predicate)
                if cond is None:
                    continue  # the code generator drops these too
                signals.add(cond)
                if notification.conditional:
                    reads |= _expr_fields(notification.predicate, fields)
        footprints[method.name] = MethodFootprint(
            frozenset(reads), frozenset(writes),
            frozenset(waits), frozenset(signals))
    return footprints


def wait_info_for_explicit(explicit: ExplicitMonitor) -> dict:
    """Guard metadata for the context-sensitive segment refinement.

    ``conds`` maps condition keys to the guard expressions threads sleep on;
    ``entry`` maps each method to its first CCR's (condition key, guard,
    parameter names) when that guard is non-trivial — enough for the DPOR
    layer to evaluate, against a recorded decision state, whether granting a
    candidate would merely evaluate its guard and go to sleep.
    """
    cond_of = {guard: name for guard, name in explicit.condition_vars}
    entry: Dict[str, Optional[tuple]] = {}
    for method in explicit.methods:
        first = method.ccrs[0] if method.ccrs else None
        cond = cond_of.get(first.guard) if first is not None else None
        if first is not None and first.guard != TRUE and cond is not None:
            entry[method.name] = (cond, first.guard,
                                  tuple(p.name for p in method.params))
        else:
            entry[method.name] = None
    return {
        "fields": frozenset(decl.name for decl in explicit.fields),
        "conds": {name: guard for guard, name in explicit.condition_vars},
        "entry": entry,
    }


class SegmentRefiner:
    """Context-sensitive footprint refinement for grant decisions.

    A thread whose guard is false in the decision state does not run its
    method body — it evaluates the guard and goes to sleep.  That *wait
    entry* segment reads the guard's fields, waits on one condition, writes
    nothing and signals nothing, so it commutes with far more than the
    whole-method footprint suggests ("who blocks first" orders collapse).

    Two sources of refinement, both exact rather than over-approximate:

    * **executed segments** — a grant event immediately followed by the same
      thread's wait event ran nothing but the guard evaluation;
    * **pending candidates** — the recorded pre-decision fingerprint carries
      the shared state, the decision carries each candidate's program
      position and resume condition, and guards are concretely evaluable
      (:mod:`repro.logic.evaluate`) whenever their free variables are fields
      plus the call's own parameters.
    """

    def __init__(self, coop_class: type, programs):
        info = getattr(coop_class, "_coop_wait_info", None)
        self.enabled = bool(info)
        if not self.enabled:
            return
        self.fields: frozenset = info["fields"]
        self.conds: Dict[str, object] = info["conds"]
        self.entry: Dict[str, Optional[tuple]] = info["entry"]
        self.programs = [list(program) for program in programs]
        self._wait_footprints: Dict[str, Optional[MethodFootprint]] = {}
        self._guard_vars: Dict[str, frozenset] = {}

    def wait_footprint(self, key: str) -> Optional[MethodFootprint]:
        """The footprint of "evaluate *key*'s guard and sleep on it"."""
        if key not in self._wait_footprints:
            guard = self.conds.get(key)
            if guard is None:
                self._wait_footprints[key] = None
            else:
                reads = frozenset(
                    var.name for var in free_vars(guard)
                    if var.name in self.fields)
                self._wait_footprints[key] = MethodFootprint(
                    reads, frozenset(), frozenset({key}), frozenset())
        return self._wait_footprints[key]

    def executed(self, run, event_index: int) -> Optional[MethodFootprint]:
        """Refined footprint of the segment behind an executed grant event.

        Only the guard ran when the very next event is the granted thread's
        own wait — commits, signals and releases all produce events first.
        """
        if not self.enabled:
            return None
        events = run.events
        follower = events[event_index + 1] if event_index + 1 < len(events) else None
        if (follower is not None and follower.kind == "wait"
                and follower.thread == events[event_index].thread):
            return self.wait_footprint(follower.key)
        return None

    def pending(self, decision: Decision, index: int) -> Optional[MethodFootprint]:
        """Refined footprint of a decision candidate, or None for full method."""
        key = self.pending_wait_key(decision, index)
        return self.wait_footprint(key) if key is not None else None

    def pending_wait_key(self, decision: Decision, index: int) -> Optional[str]:
        """The condition a candidate would provably sleep on, or None."""
        if (not self.enabled or decision.fingerprint is None
                or not decision.op_indices):
            return None
        resume = decision.resumes[index] if decision.resumes else None
        env: Dict[str, object] = {}
        if resume is not None:
            guard = self.conds.get(resume)
            key = resume
        else:
            entry = self.entry.get(decision.methods[index])
            if entry is None:
                return None
            key, guard, params = entry
            tid = decision.candidates[index]
            op_index = decision.op_indices[index]
            if tid >= len(self.programs) or op_index >= len(self.programs[tid]):
                return None
            args = self.programs[tid][op_index][1]
            env.update(zip(params, args))
        if guard is None:
            return None
        # Fingerprint entries are keyed by *attribute* name (dots mangled to
        # underscores); opaque values froze to None and must not silently
        # satisfy comparisons, so they stay unbound and trip EvaluationError.
        shared = dict(decision.fingerprint[0])
        for field in self.fields:
            value = shared.get(field.replace(".", "_"))
            if value is not None:
                env.setdefault(field, value)
        try:
            holds = evaluate(guard, env)
        except (EvaluationError, TypeError):
            return None
        if holds:
            return None  # the guard passes: the body runs, keep full method
        return key if self.wait_footprint(key) is not None else None


class ValueIndependence:
    """Value-sensitive independence: SMT checks at concrete call arguments.

    The ROADMAP's value-sensitive item — the exploration-time counterpart of
    the symbolic matrix.  Two calls whose fully symbolic methods conflict may
    still commute at the *specific arguments* a workload passes (e.g. two
    ``putDown`` calls of adjacent philosophers both reset the shared fork to
    the same value).  Verdicts are memoized per campaign and below that in
    the solver's :class:`~repro.smt.cache.FormulaCache`, so each distinct
    (method, args) pair costs at most one round of solver queries per
    process.  Condition-variable compatibility is still gated syntactically
    on the (mutant-accurate) footprints.
    """

    def __init__(self, explicit, relation: IndependenceRelation):
        self.explicit = explicit
        self.relation = relation
        self.shared = frozenset(decl.name for decl in explicit.fields)
        self._methods = {method.name: method for method in explicit.methods}
        self._cache: Dict[tuple, bool] = {}

    def independent(self, method_a: str, args_a, method_b: str, args_b) -> bool:
        from repro.analysis.commutativity import calls_semantically_independent
        from repro.explore.strategies import condition_vars_compatible

        fp_a = self.relation.footprints.get(method_a)
        fp_b = self.relation.footprints.get(method_b)
        if fp_a is None or fp_b is None:
            return False
        if not condition_vars_compatible(fp_a, fp_b, allow_shared_signals=True):
            return False
        key = (method_a, tuple(args_a), method_b, tuple(args_b))
        if key[:2] > key[2:]:
            key = key[2:] + key[:2]
        verdict = self._cache.get(key)
        if verdict is None:
            decl_a = self._methods.get(method_a)
            decl_b = self._methods.get(method_b)
            verdict = (decl_a is not None and decl_b is not None
                       and calls_semantically_independent(
                           decl_a, tuple(args_a), decl_b, tuple(args_b),
                           self.shared))
            self._cache[key] = verdict
        return verdict


# ---------------------------------------------------------------------------
# Coop-class construction
# ---------------------------------------------------------------------------


def coop_class_for_explicit(explicit: ExplicitMonitor,
                            class_name: str = "CoopMonitor",
                            solver=None, semantic: bool = True,
                            placement=None) -> type:
    """Materialize the scheduler-targeting class for a placed monitor.

    Both reduction artifacts — the syntactic per-method footprints and the
    SMT-proven semantic-independence matrix — are computed here and *emitted
    into the generated source* as class attributes, so parallel workers that
    rebuild the class from shipped source inherit them without re-running
    any analysis.  ``semantic=False`` skips the matrix (a full round of
    solver queries) for callers whose exploration cannot consult it —
    plain enumeration, syntactic-only DPOR, sampling strategies.  *solver*
    optionally reuses a caller's (cached) solver for the commutativity
    queries; by default the commutativity module's shared solver memoizes
    verdicts across every class built in the process.
    """
    from repro.analysis.commutativity import matrix_with_statistics
    from repro.codegen.python_gen import placement_signature

    footprints = footprints_for_explicit(explicit)
    matrix = None
    matrix_stats: Dict[str, int] = {}
    if semantic:
        # snapshot/diff isolation: the commutativity module's shared solver
        # accumulates across every class built in the process, so only this
        # build's own delta is attributed to this class (and to the
        # ``explore.matrix.*`` registry counters).
        matrix, matrix_stats = matrix_with_statistics(explicit, solver=solver)
    signature = (placement_signature(placement)
                 if placement is not None else None)
    source = generate_python_explicit(explicit, class_name=class_name, coop=True,
                                      footprints=footprints, semantic=matrix,
                                      placement=signature)
    cls = materialize_class(source, class_name)
    cls._coop_source = source
    # AST-bearing artifacts cannot be embedded in source text; parallel
    # drivers ship them alongside the source (they pickle like the monitor
    # AST).  ``_coop_explicit`` feeds the value-sensitive independence
    # checks, ``_coop_wait_info`` the wait-entry refinement.
    cls._coop_wait_info = wait_info_for_explicit(explicit)
    cls._coop_explicit = explicit
    #: This build's own share of the matrix solver work (empty for
    #: ``semantic=False``) — the per-monitor attribution the cumulative
    #: module-solver statistics cannot provide.
    cls._coop_matrix_stats = matrix_stats
    return cls


def coop_monitor_and_class(spec, discipline: str,
                           pipeline=None) -> Tuple[Monitor, type]:
    """(reference monitor AST, coop class) for one benchmark/discipline pair."""
    from repro.harness.saturation import expresso_result
    from repro.placement.pipeline import ExpressoPipeline

    pipeline = pipeline if pipeline is not None else ExpressoPipeline()
    key = (spec.name, discipline, pipeline.config_key())
    if discipline == "expresso":
        result = expresso_result(spec, pipeline)
        reference = result.monitor
        if key not in _COOP_CLASS_CACHE:
            _COOP_CLASS_CACHE[key] = coop_class_for_explicit(result.explicit)
    elif discipline == "explicit":
        reference = spec.monitor()
        if key not in _COOP_CLASS_CACHE:
            _COOP_CLASS_CACHE[key] = coop_class_for_explicit(spec.handwritten_explicit())
    elif discipline == "autosynch":
        reference = spec.monitor()
        if key not in _COOP_CLASS_CACHE:
            source = generate_python_autosynch(reference, "CoopMonitor", coop=True)
            _COOP_CLASS_CACHE[key] = materialize_class(source, "CoopMonitor")
            _COOP_CLASS_CACHE[key]._coop_source = source
    elif discipline == "implicit":
        reference = spec.monitor()
        if key not in _COOP_CLASS_CACHE:
            source = generate_python_implicit(reference, "CoopMonitor", coop=True)
            _COOP_CLASS_CACHE[key] = materialize_class(source, "CoopMonitor")
            _COOP_CLASS_CACHE[key]._coop_source = source
    else:
        raise ValueError(f"unknown discipline {discipline!r}; "
                         f"expected one of {COOP_DISCIPLINES}")
    # The automatic runtimes broadcast on every exit, so no two of their
    # segments commute; they get no footprints (POR degrades to merge
    # probing, which is discipline-agnostic).
    return reference, _COOP_CLASS_CACHE[key]


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass
class Counterexample:
    """A failing schedule, minimized and rendered for replay."""

    kind: str                      # oracle failure kind
    detail: str
    schedule: Tuple[int, ...]      # the original failing choice list
    minimized: Tuple[int, ...]     # the delta-debugged choice list
    trace: str                     # readable interleaving of the minimized run
    strategy: str
    seed: Optional[int]            # seed that found it (sampling strategies)
    #: Definition 3.4 witness (implicit-vs-explicit trace pair) — attached
    #: when the campaign ran with ``witness=True`` and a trace-level form of
    #: the failure exists (see :func:`repro.semantics.equivalence
    #: .counterexample_witness`).
    witness: Optional[dict] = None

    def to_dict(self) -> dict:
        record = {
            "kind": self.kind,
            "detail": self.detail,
            "schedule": list(self.schedule),
            "minimized": list(self.minimized),
            "strategy": self.strategy,
            "seed": self.seed,
            "trace": self.trace,
        }
        if self.witness is not None:
            record["witness"] = self.witness
        return record

    @classmethod
    def from_dict(cls, data: dict) -> "Counterexample":
        """Rehydrate a :meth:`to_dict` record (explore checkpoint resume)."""
        return cls(kind=data["kind"], detail=data["detail"],
                   schedule=tuple(data.get("schedule", ())),
                   minimized=tuple(data.get("minimized", ())),
                   trace=data.get("trace", ""),
                   strategy=data.get("strategy", "?"),
                   seed=data.get("seed"),
                   witness=data.get("witness"))


@dataclass
class ExplorationResult:
    """Aggregate outcome of one exploration campaign.

    ``schedules_run`` counts fully executed, oracle-judged schedules.
    ``pruned`` counts backtracking replays cut off by the merge probe (their
    divergent suffix re-entered a visited state), and ``por_skipped`` counts
    subtrees the partial-order reduction proved redundant without running
    them (sleep-set hits and backtrack-filter skips).  ``budget_exhausted``
    distinguishes "stopped because the budget ran out" from "covered
    everything" (``exhausted``).
    """

    benchmark: str
    discipline: str
    strategy: str
    seed: int
    threads: int = 0
    ops: int = 0
    workers: int = 1
    schedules_run: int = 0
    completed: int = 0
    stalls: int = 0
    pruned: int = 0
    por_skipped: int = 0
    #: Wake/grant alternatives collapsed because they were provably symmetric
    #: to an explored sibling (same frame, arguments and remaining program).
    symmetry_skipped: int = 0
    #: Merge-probe hits against *another* shard's visited states (only
    #: non-zero when a cross-worker shared state store is in play).
    shared_hits: int = 0
    distinct_states: int = 0
    exhausted: bool = False
    budget_exhausted: bool = False
    oracle_hits: int = 0
    oracle_misses: int = 0
    elapsed_seconds: float = 0.0
    failures: List[Counterexample] = field(default_factory=list)
    #: Stable 128-bit hashes of the visited-state set (only populated when
    #: the engine is asked to export them, e.g. to union shard coverage).
    state_hashes: Optional[List[int]] = field(default=None, repr=False)
    #: Stable hashes of *abstracted* state shapes (only populated when the
    #: engine is given a shape function — the fuzzing campaign's
    #: scheduler-state-shape coverage axis).
    state_shapes: Optional[List[int]] = field(default=None, repr=False)
    #: Flight-recorder payloads, populated only inside an observability
    #: session: per-shard raw trace event lists (one inner list per shard)
    #: and the merged counter snapshot.  Deliberately excluded from
    #: ``to_dict`` — the JSON artifact surface is unchanged.
    trace_shards: Optional[List[list]] = field(default=None, repr=False)
    metrics_snapshot: Optional[Dict[str, int]] = field(default=None, repr=False)
    #: Shards the worker supervisor gave up on (quarantined after retries):
    #: one dict per lost shard with the shard's identifying parameters and
    #: the error chain.  Serialized only when nonempty, so fault-free
    #: campaign artifacts are byte-identical with or without supervision.
    worker_failures: List[dict] = field(default_factory=list)
    #: Serialized schedules/s pinned by :meth:`from_dict` — ``to_dict``
    #: derives the rate from the *unrounded* elapsed time, so a rehydrated
    #: record must carry the original value to round-trip byte-identically.
    sps_override: Optional[float] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def schedules_per_second(self) -> float:
        if self.sps_override is not None:
            return self.sps_override
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.schedules_run / self.elapsed_seconds

    def to_dict(self) -> dict:
        record = {
            "benchmark": self.benchmark,
            "discipline": self.discipline,
            "strategy": self.strategy,
            "seed": self.seed,
            "threads": self.threads,
            "ops": self.ops,
            "workers": self.workers,
            "schedules_run": self.schedules_run,
            "completed": self.completed,
            "stalls": self.stalls,
            "pruned": self.pruned,
            "por_skipped": self.por_skipped,
            "symmetry_skipped": self.symmetry_skipped,
            "shared_hits": self.shared_hits,
            "distinct_states": self.distinct_states,
            "exhausted": self.exhausted,
            "budget_exhausted": self.budget_exhausted,
            "oracle_hits": self.oracle_hits,
            "oracle_misses": self.oracle_misses,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "schedules_per_second": round(self.schedules_per_second, 2),
            "ok": self.ok,
            "failures": [failure.to_dict() for failure in self.failures],
        }
        if self.worker_failures:
            record["worker_failures"] = self.worker_failures
        return record

    @classmethod
    def from_dict(cls, data: dict) -> "ExplorationResult":
        """Rehydrate a :meth:`to_dict` record (explore checkpoint resume).

        Round-trips every serialized field; the derived keys (``ok``,
        ``schedules_per_second``) and the non-serialized flight-recorder
        payloads are recomputed/absent, so ``from_dict(d).to_dict() == d``
        for any ``to_dict`` output.
        """
        result = cls(benchmark=data["benchmark"],
                     discipline=data["discipline"],
                     strategy=data["strategy"], seed=data["seed"])
        for name in ("threads", "ops", "workers", "schedules_run",
                     "completed", "stalls", "pruned", "por_skipped",
                     "symmetry_skipped", "shared_hits", "distinct_states",
                     "exhausted", "budget_exhausted", "oracle_hits",
                     "oracle_misses", "elapsed_seconds"):
            if name in data:
                setattr(result, name, data[name])
        result.sps_override = data.get("schedules_per_second")
        result.failures = [Counterexample.from_dict(failure)
                           for failure in data.get("failures", ())]
        result.worker_failures = list(data.get("worker_failures", ()))
        return result


# ---------------------------------------------------------------------------
# Core loops
# ---------------------------------------------------------------------------


def _run_once(monitor: Monitor, coop_class: type, programs, strategy,
              max_steps: int, fingerprints: bool = False):
    instance = coop_class()
    result = run_schedule(instance, programs, strategy, max_steps,
                          fingerprints=fingerprints)
    verdict = check_run(monitor, programs, instance, result)
    return result, verdict


def replay_schedule(monitor: Monitor, coop_class: type, programs,
                    schedule: Sequence[int],
                    max_steps: int = 20_000) -> Tuple[RunResult, OracleVerdict]:
    """Replay a recorded/minimized schedule deterministically."""
    return _run_once(monitor, coop_class, programs,
                     ScheduleStrategy(schedule, FirstStrategy()), max_steps)


def _minimize(monitor: Monitor, coop_class: type, programs,
              schedule: Tuple[int, ...], kind: str,
              max_steps: int) -> Tuple[Tuple[int, ...], RunResult, OracleVerdict]:
    """ddmin the schedule, then rerun the minimum for its trace."""

    def reproduces(candidate: Tuple[int, ...]) -> bool:
        _result, verdict = replay_schedule(monitor, coop_class, programs,
                                           candidate, max_steps)
        return verdict.is_failure and verdict.kind == kind

    minimized = ddmin(schedule, reproduces)
    result, verdict = replay_schedule(monitor, coop_class, programs,
                                      minimized, max_steps)
    return minimized, result, verdict


def _record_failure(outcome: ExplorationResult, monitor, coop_class, programs,
                    run: RunResult, verdict: OracleVerdict, strategy_name: str,
                    seed: Optional[int], max_steps: int, minimize: bool,
                    witness: bool = False) -> None:
    schedule = run.choices
    if minimize:
        minimized, min_run, min_verdict = _minimize(
            monitor, coop_class, programs, schedule, verdict.kind, max_steps)
        trace = render_trace(min_run, programs, min_verdict)
        detail = min_verdict.detail or verdict.detail
        witness_run, witness_verdict = min_run, min_verdict
    else:
        minimized = schedule
        trace = render_trace(run, programs, verdict)
        detail = verdict.detail
        witness_run, witness_verdict = run, verdict
    witness_record = None
    if witness:
        explicit = getattr(coop_class, "_coop_explicit", None)
        if explicit is not None:
            from repro.semantics.equivalence import counterexample_witness

            witness_record = counterexample_witness(
                monitor, explicit, programs, witness_run, witness_verdict)
    outcome.failures.append(Counterexample(
        kind=verdict.kind or "failure", detail=detail, schedule=schedule,
        minimized=minimized, trace=trace, strategy=strategy_name, seed=seed,
        witness=witness_record))


def _tally(outcome: ExplorationResult, run: RunResult,
           verdict: OracleVerdict) -> None:
    outcome.schedules_run += 1
    if run.outcome == "completed":
        outcome.completed += 1
    elif verdict.ok and verdict.kind == "stall":
        outcome.stalls += 1


def _explore_sampling(monitor, coop_class, programs, outcome: ExplorationResult,
                      budget: int, seed: int, max_steps: int,
                      stop_on_failure: bool, minimize: bool,
                      oracle: OracleCache, seen: Optional[set] = None,
                      witness: bool = False) -> None:
    # PCT change points must land inside the run: roughly one grant decision
    # per operation plus slack for waits/relays.  When a *seen* set is given
    # (coverage export), walks additionally fingerprint every grant decision
    # so sampling campaigns report the states they visited.
    expected_decisions = max(8, 2 * sum(len(program) for program in programs))
    tracer = obs.tracer()
    for iteration in range(budget):
        walk_seed = seed + iteration
        # Spans are keyed by the *global* walk seed, not the loop index, so a
        # sharded campaign emits the same event args as a sequential one.
        with tracer.span("schedule", cat="explore", seed=walk_seed) as span:
            strategy = make_strategy(outcome.strategy, walk_seed,
                                     expected_decisions=expected_decisions)
            instance = coop_class()
            run = run_schedule(instance, programs, strategy, max_steps,
                               fingerprints=seen is not None)
            if seen is not None:
                for decision in run.decisions:
                    if decision.fingerprint is not None:
                        seen.add(decision.fingerprint)
            verdict = oracle.judge(run, instance)
            span.set(outcome=run.outcome, ok=verdict.ok, kind=verdict.kind or "")
        _tally(outcome, run, verdict)
        if verdict.is_failure:
            _record_failure(outcome, monitor, coop_class, programs, run, verdict,
                            outcome.strategy, walk_seed, max_steps, minimize,
                            witness)
            if stop_on_failure:
                return


def _explore_dfs_plain(monitor, coop_class, programs, outcome: ExplorationResult,
                       budget: int, max_steps: int, stop_on_failure: bool,
                       minimize: bool, oracle: OracleCache,
                       seen: set, dfs_prefixes=None,
                       witness: bool = False) -> None:
    stack: List[Tuple[int, ...]] = (
        [tuple(prefix) for prefix in reversed(dfs_prefixes)]
        if dfs_prefixes else [()])
    tracer = obs.tracer()
    while stack and outcome.schedules_run < budget:
        prefix = stack.pop()
        strategy = ScheduleStrategy(prefix, FirstStrategy())
        instance = coop_class()
        with tracer.span("schedule", cat="explore", depth=len(prefix)) as span:
            run = run_schedule(instance, programs, strategy, max_steps,
                               fingerprints=True, fingerprint_after=len(prefix))
            verdict = oracle.judge(run, instance)
            span.set(outcome=run.outcome, ok=verdict.ok, kind=verdict.kind or "")
        _tally(outcome, run, verdict)
        # Decisions at positions < len(prefix) replay ancestor choices whose
        # alternatives the ancestors already pushed; fresh positions start at
        # len(prefix).  A fresh position whose pre-decision state was already
        # visited roots a subtree explored elsewhere: stop expanding there.
        # (Expansion happens before the failure check so that a failing first
        # run still records its states and pending alternatives — `exhausted`
        # must not claim full coverage after an early stop.)
        limit = len(run.decisions)
        for position in range(len(prefix), len(run.decisions)):
            fingerprint = run.decisions[position].fingerprint
            if fingerprint is None:
                continue
            if fingerprint in seen:
                limit = position
                outcome.pruned += 1
                if tracer.enabled:
                    tracer.instant("prune", cat="explore", provenance="visited")
                    obs.registry().inc("explore.skipped.visited")
                break
            seen.add(fingerprint)
        choices = run.choices
        for position in range(limit - 1, len(prefix) - 1, -1):
            decision = run.decisions[position]
            for alternative in range(len(decision.candidates)):
                if alternative != decision.chosen:
                    stack.append(choices[:position] + (alternative,))
        if verdict.is_failure:
            _record_failure(outcome, monitor, coop_class, programs, run, verdict,
                            "dfs", None, max_steps, minimize, witness)
            if stop_on_failure:
                break
    outcome.exhausted = not stack
    outcome.budget_exhausted = bool(stack)


def _commutes_past(run: RunResult, decision: Decision, alternative: int,
                   independence: IndependenceRelation,
                   refiner: Optional[SegmentRefiner],
                   values: Optional[ValueIndependence] = None,
                   programs=None) -> bool:
    """Does deferring the *alternative* candidate's segment commute with the run?

    The DPOR backtrack filter: the sibling choice "grant this thread now"
    needs no exploration when every segment the run executed between this
    decision and the thread's own next grant is independent of its pending
    segment — the two orders reach the same state through equivalent
    (Mazurkiewicz-equal) traces, and the run already covers the canonical
    one.  Truncated runs where the thread never ran again answer
    conservatively False.

    Independence is consulted per *segment* when the refiner can prove a
    side is a pure wait entry (guard evaluation + sleep), and per method
    otherwise; the pending-side refinement is anchored at the decision state
    and stays valid along the scan because every independent executed
    segment leaves the guard's fields untouched.
    """
    tid = decision.candidates[alternative]
    method = decision.methods[alternative]
    pending_fp = refiner.pending(decision, alternative) if refiner else None
    pending_args = None
    if values is not None and programs is not None and decision.op_indices:
        op_index = decision.op_indices[alternative]
        if tid < len(programs) and op_index < len(programs[tid]):
            pending_args = programs[tid][op_index][1]
    # events[event_index] is the chosen thread's own grant: the scan starts
    # there so the chosen segment itself is dependence-checked too.
    for event_index in range(decision.event_index, len(run.events)):
        event = run.events[event_index]
        if event.kind != "grant":
            continue
        if event.thread == tid:
            return True
        executed_fp = refiner.executed(run, event_index) if refiner else None
        if independence.segment_independent(method, pending_fp,
                                            event.label, executed_fp):
            continue
        if (pending_args is not None
                and values.independent(method, pending_args,
                                       event.label, event.args)):
            continue
        return False
    return False


def _expand_dpor(run: RunResult, prefix: Tuple[int, ...],
                 strategy: DporStrategy, stack: list,
                 independence: IndependenceRelation,
                 outcome: ExplorationResult,
                 refiner: Optional[SegmentRefiner] = None,
                 values: Optional[ValueIndependence] = None,
                 programs=None) -> None:
    """Push the non-redundant sibling prefixes of one DPOR run.

    Children of each decision node are pushed so pops follow exploration
    order (shallowest node first, ascending alternatives), and each sibling's
    sleep set accumulates the siblings explored before it — the classic
    sleep-set discipline adapted to the worklist DFS.

    When the scheduler recorded symmetry classes (wake-order
    canonicalization), alternatives whose class matches the chosen candidate
    or an already-pushed sibling are collapsed: their subtrees are images of
    an explored subtree under a thread-swap automorphism, so only one
    representative per class is branched.
    """
    decisions = run.decisions
    sleeps = strategy.fresh_sleeps
    choices = run.choices
    tracer = obs.tracer()
    entries: List[Tuple[Tuple[int, ...], frozenset]] = []
    for offset, position in enumerate(range(len(prefix), len(decisions))):
        decision = decisions[position]
        node_sleep = sleeps[offset]
        child_prefix = choices[:position]
        sym = decision.sym_classes
        explored_classes = {sym[decision.chosen]} if sym else None
        if decision.kind != "grant":
            # Signal choices are otherwise not reduced: every alternative
            # wake target is explored (the woken thread's identity is
            # observable) unless it is provably symmetric to one already
            # taken.
            for alternative in range(len(decision.candidates)):
                if alternative == decision.chosen:
                    continue
                if sym:
                    if sym[alternative] in explored_classes:
                        outcome.symmetry_skipped += 1
                        if tracer.enabled:
                            tracer.instant("prune", cat="explore",
                                           provenance="symmetry")
                        continue
                    explored_classes.add(sym[alternative])
                entries.append((child_prefix + (alternative,), node_sleep))
            continue
        chosen_tid = decision.candidates[decision.chosen]
        chosen_method = decision.methods[decision.chosen]
        asleep = {entry[0] for entry in node_sleep}
        cumulative = set(node_sleep)
        cumulative.add((chosen_tid, chosen_method,
                        _call_args(programs, decision, decision.chosen),
                        refiner.pending_wait_key(decision, decision.chosen)
                        if refiner else None))
        for alternative in range(len(decision.candidates)):
            if alternative == decision.chosen:
                continue
            tid = decision.candidates[alternative]
            method = decision.methods[alternative]
            if tid in asleep:
                # Sleep set: an ancestor's sibling already explores every
                # trace that starts by running this thread here.
                outcome.por_skipped += 1
                if tracer.enabled:
                    tracer.instant("prune", cat="explore",
                                   provenance="sleep_set")
                    obs.registry().inc("explore.skipped.sleep_set")
                continue
            if sym and sym[alternative] in explored_classes:
                outcome.symmetry_skipped += 1
                if tracer.enabled:
                    tracer.instant("prune", cat="explore",
                                   provenance="symmetry")
                continue
            if _commutes_past(run, decision, alternative, independence, refiner,
                              values, programs):
                outcome.por_skipped += 1
                if tracer.enabled:
                    tracer.instant("prune", cat="explore",
                                   provenance="backtrack")
                    obs.registry().inc("explore.skipped.backtrack")
                continue
            entries.append((child_prefix + (alternative,), frozenset(cumulative)))
            cumulative.add((tid, method,
                            _call_args(programs, decision, alternative),
                            refiner.pending_wait_key(decision, alternative)
                            if refiner else None))
            if sym:
                explored_classes.add(sym[alternative])
    stack.extend(reversed(entries))


def _call_args(programs, decision: Decision, index: int) -> tuple:
    """The concrete arguments of a decision candidate's pending call."""
    if programs is None or not decision.op_indices:
        return ()
    tid = decision.candidates[index]
    op_index = decision.op_indices[index]
    if tid < len(programs) and op_index < len(programs[tid]):
        return tuple(programs[tid][op_index][1])
    return ()


def _explore_dpor(monitor, coop_class, programs, outcome: ExplorationResult,
                  budget: int, max_steps: int, stop_on_failure: bool,
                  minimize: bool, oracle: OracleCache,
                  seen: set, dfs_prefixes=None, semantic: bool = True,
                  symmetry: bool = True, shared_store=None,
                  witness: bool = False) -> None:
    independence = IndependenceRelation(
        getattr(coop_class, "_coop_footprints", None),
        getattr(coop_class, "_coop_semantic", None) if semantic else None)
    refiner: Optional[SegmentRefiner] = None
    values: Optional[ValueIndependence] = None
    checker = None
    if semantic:
        candidate = SegmentRefiner(coop_class, programs)
        refiner = candidate if candidate.enabled else None
        explicit = getattr(coop_class, "_coop_explicit", None)
        if explicit is not None:
            values = ValueIndependence(explicit, independence)
        if refiner is not None or values is not None:
            def checker(entry, method, args, extent_key,
                        _refiner=refiner, _values=values,
                        _independence=independence):
                """Context-sensitive sleep-set dependence (see DporStrategy)."""
                _tid, entry_method, entry_args, entry_key = entry
                entry_fp = (_refiner.wait_footprint(entry_key)
                            if _refiner is not None and entry_key else None)
                extent_fp = (_refiner.wait_footprint(extent_key)
                             if _refiner is not None and extent_key else None)
                if _independence.segment_independent(entry_method, entry_fp,
                                                     method, extent_fp):
                    return True
                return (_values is not None
                        and _values.independent(entry_method, entry_args,
                                                method, args))
    stack: List[Tuple[Tuple[int, ...], frozenset]] = (
        [(tuple(prefix), frozenset()) for prefix in reversed(dfs_prefixes)]
        if dfs_prefixes else [((), frozenset())])

    # When a run aborts as "merged", provenance records whether the covering
    # probe hit this shard's own visited set or a sibling's published states.
    probe_source = ["merge"]

    def probe(fingerprint: tuple) -> bool:
        if fingerprint in seen:
            probe_source[0] = "merge"
            return True
        if shared_store is not None and shared_store.probe(_stable_hash(fingerprint)):
            # Another shard already explored this state's subtree.
            outcome.shared_hits += 1
            seen.add(fingerprint)
            probe_source[0] = "shared_store"
            return True
        seen.add(fingerprint)
        return False

    # Probes (merge-aborted replays) are bounded by the state-graph edge
    # count, but cap total work anyway so a pathological class cannot spin.
    work_cap = 60 * budget
    stopped = False
    tracer = obs.tracer()
    while stack and outcome.schedules_run < budget and not stopped:
        if outcome.pruned + outcome.por_skipped >= work_cap:
            break
        prefix, sleep = stack.pop()
        strategy = DporStrategy(prefix, sleep, independence, checker=checker)
        instance = coop_class()
        run = run_schedule(instance, programs, strategy, max_steps,
                           fingerprints=True, fingerprint_after=len(prefix),
                           merge_probe=probe, symmetry=symmetry)
        if run.outcome == "merged":
            outcome.pruned += 1
            if tracer.enabled:
                tracer.instant("prune", cat="explore",
                               provenance=probe_source[0])
                if probe_source[0] == "shared_store":
                    obs.registry().inc("explore.skipped.shared_store")
            verdict = oracle.judge_partial(run)
        elif run.outcome == "sleep-set":
            outcome.por_skipped += 1
            if tracer.enabled:
                tracer.instant("prune", cat="explore",
                               provenance="sleep_set")
                obs.registry().inc("explore.skipped.sleep_set")
            verdict = oracle.judge_partial(run)
        else:
            with tracer.span("schedule", cat="explore",
                             depth=len(prefix)) as span:
                verdict = oracle.judge(run, instance)
                span.set(outcome=run.outcome, ok=verdict.ok,
                         kind=verdict.kind or "")
            _tally(outcome, run, verdict)
        _expand_dpor(run, prefix, strategy, stack, independence, outcome,
                     refiner, values, programs)
        if verdict.is_failure:
            _record_failure(outcome, monitor, coop_class, programs, run, verdict,
                            "dfs", None, max_steps, minimize, witness)
            if stop_on_failure:
                stopped = True
    outcome.exhausted = not stack
    outcome.budget_exhausted = bool(stack)
    if shared_store is not None and outcome.exhausted and outcome.ok:
        # Only a fully drained, failure-free shard may publish.  Siblings
        # prune published states as covered subtrees, so a shard stopped
        # early (budget, work cap, stop-on-failure) must keep its states
        # private — and so must a failing shard, or a sibling sharing the
        # failure's region would prune instead of recording its own copy,
        # making the merged failure list timing-dependent.  A clean
        # exhausted shard's states root failure-free subtrees, so pruning
        # them can never suppress a counterexample.
        shared_store.publish()


def explore_class(monitor: Monitor, coop_class: type, programs,
                  strategy: str = "random", budget: int = 200, seed: int = 0,
                  max_steps: int = 20_000, stop_on_failure: bool = True,
                  minimize: bool = True, benchmark: str = "?",
                  discipline: str = "?", por: bool = True,
                  semantic: bool = True, symmetry: bool = True,
                  dfs_prefixes: Optional[Sequence[Sequence[int]]] = None,
                  export_state_hashes: bool = False,
                  shared_store=None, state_shape=None,
                  witness: bool = False) -> ExplorationResult:
    """Explore one coop monitor class over fixed per-thread programs.

    ``por`` selects partial-order reduction for the ``dfs`` strategy
    (sampling strategies ignore it); under POR, ``semantic`` additionally
    consults the compile-side SMT-proven independence matrix and
    ``symmetry`` collapses provably interchangeable wake/grant alternatives
    to one representative.  ``dfs_prefixes`` restricts the DFS to the
    subtrees rooted at the given choice prefixes (the parallel driver shards
    the top-level decision this way).  ``export_state_hashes`` populates
    ``result.state_hashes`` with stable hashes of the visited states so
    shard coverage can be unioned across processes; ``shared_store``
    (an object with ``probe(hash) -> bool`` and ``publish()``) lets DFS
    shards skip states other workers fully explored — states are published
    only when this exploration drains its whole search space without
    recording a failure.

    ``state_shape`` (a callable over raw scheduler fingerprints) populates
    ``result.state_shapes`` with stable hashes of the *abstracted* shapes of
    every visited state — the fuzzing campaign's coverage axis; sampling
    strategies then fingerprint their walks too.  ``witness=True`` attaches a
    Definition 3.4 implicit-vs-explicit trace witness to each recorded
    failure when one exists.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
    # ``ops`` falls back to the longest program; registry-level entry points
    # overwrite it with the actual workload parameter.
    outcome = ExplorationResult(benchmark=benchmark, discipline=discipline,
                                strategy=strategy, seed=seed,
                                threads=len(programs),
                                ops=max((len(p) for p in programs), default=0))
    oracle = OracleCache(monitor, programs)
    seen: set = set()
    collect_states = export_state_hashes or state_shape is not None
    start = time.perf_counter()
    if strategy == "dfs":
        if por:
            _explore_dpor(monitor, coop_class, programs, outcome, budget,
                          max_steps, stop_on_failure, minimize, oracle, seen,
                          dfs_prefixes, semantic=semantic, symmetry=symmetry,
                          shared_store=shared_store, witness=witness)
        else:
            _explore_dfs_plain(monitor, coop_class, programs, outcome, budget,
                               max_steps, stop_on_failure, minimize, oracle,
                               seen, dfs_prefixes, witness=witness)
        outcome.distinct_states = len(seen)
    else:
        _explore_sampling(monitor, coop_class, programs, outcome, budget, seed,
                          max_steps, stop_on_failure, minimize, oracle,
                          seen=seen if collect_states else None,
                          witness=witness)
        if collect_states:
            outcome.distinct_states = len(seen)
    outcome.elapsed_seconds = time.perf_counter() - start
    outcome.oracle_hits = oracle.hits
    outcome.oracle_misses = oracle.misses
    if export_state_hashes:
        outcome.state_hashes = sorted(_stable_hash(fp) for fp in seen)
    if state_shape is not None:
        outcome.state_shapes = sorted({_stable_hash(state_shape(fp))
                                       for fp in seen})
    # Single fold point: result counters land in the registry once per
    # exploration, and only inside an observability session (parallel shards
    # each fold into their own session registry; the driver merges snapshots,
    # so nothing is ever counted twice).
    if obs.tracer().enabled:
        obs.record_exploration(outcome, obs.registry())
    return outcome


def _stable_hash(fingerprint: tuple) -> int:
    """A process-stable 128-bit hash of a state fingerprint.

    These hashes gate cross-shard subtree pruning (a shared-store hit skips
    a state's whole subtree), so the digest is kept wide enough that a
    collision between distinct states is out of the picture — 64 bits was
    fine for coverage statistics but not for pruning decisions.
    """
    import hashlib

    digest = hashlib.blake2b(repr(fingerprint).encode(), digest_size=16)
    return int.from_bytes(digest.digest(), "big")


def explore_explicit(explicit: ExplicitMonitor, reference: Monitor, programs,
                     **kwargs) -> ExplorationResult:
    """Explore an arbitrary placed monitor (mutants, fuzzer output, ...).

    The semantic matrix is only built when the requested configuration can
    consult it (DFS with ``por`` and ``semantic`` both on).
    """
    import inspect

    defaults = inspect.signature(explore_class).parameters

    def option(name: str):
        return kwargs.get(name, defaults[name].default)

    wants_semantic = (option("strategy") == "dfs"
                      and option("por") and option("semantic"))
    coop_class = coop_class_for_explicit(explicit, semantic=wants_semantic,
                                         placement=kwargs.pop("placement", None))
    kwargs.setdefault("benchmark", reference.name)
    kwargs.setdefault("discipline", "explicit")
    return explore_class(reference, coop_class, programs, **kwargs)


def explore_benchmark(spec, discipline: str = "expresso", threads: int = 3,
                      ops: int = 3, pipeline=None, **kwargs) -> ExplorationResult:
    """Explore one registry benchmark under a discipline's coop compilation."""
    reference, coop_class = coop_monitor_and_class(spec, discipline, pipeline)
    programs = spec.workload(threads, ops)
    kwargs.setdefault("benchmark", spec.name)
    kwargs.setdefault("discipline", discipline)
    result = explore_class(reference, coop_class, programs, **kwargs)
    # Record the *workload parameter*, not the derived program length (roles
    # may emit several calls per op) — `--replay` feeds it back to
    # ``spec.workload`` and must regenerate the same programs.
    result.ops = ops
    return result
