"""The exploration engine: strategies × scheduler × oracle × reduction.

`explore_class` is the core loop: run a budget of schedules of one coop-mode
monitor class over fixed per-thread programs, judge every run with the
differential oracle, and delta-debug the first failing schedule down to a
minimal, replayable counterexample.  `explore_benchmark` wires that loop to
the paper's benchmark registry (any of the four disciplines), and
`explore_explicit` to an arbitrary placed monitor — which is how mutation
tests inject lost-wakeup bugs and how the fuzzer checks freshly generated
placements.

Three strategies are supported (see :mod:`repro.explore.strategies`):

* ``dfs`` — exhaustive depth-first enumeration of all scheduling decisions
  with shared-state hashing: a schedule prefix that re-enters an
  already-visited global state is pruned.  Feasible for small
  configurations; sets ``exhausted=True`` when the whole space was covered.
* ``random`` — seeded uniform random walks (seed *i* of a budget-N run uses
  ``seed + i``, so any failing walk is reproducible in isolation).
* ``pct`` — PCT-style priority schedules, better at deep ordering bugs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.codegen.python_gen import (
    generate_python_autosynch,
    generate_python_explicit,
    generate_python_implicit,
    materialize_class,
)
from repro.explore.oracle import OracleVerdict, check_run
from repro.explore.reduce import ddmin
from repro.explore.scheduler import RunResult, run_schedule
from repro.explore.strategies import FirstStrategy, ScheduleStrategy, make_strategy
from repro.explore.trace import render_trace
from repro.lang.ast import Monitor
from repro.placement.target import ExplicitMonitor

#: The disciplines the engine can adversarially schedule.
COOP_DISCIPLINES: Tuple[str, ...] = ("expresso", "explicit", "autosynch", "implicit")

#: Exploration strategies accepted by the engine/CLI.
STRATEGIES: Tuple[str, ...] = ("dfs", "random", "pct")

_COOP_CLASS_CACHE: Dict[Tuple, type] = {}


# ---------------------------------------------------------------------------
# Coop-class construction
# ---------------------------------------------------------------------------


def coop_class_for_explicit(explicit: ExplicitMonitor,
                            class_name: str = "CoopMonitor") -> type:
    """Materialize the scheduler-targeting class for a placed monitor."""
    source = generate_python_explicit(explicit, class_name=class_name, coop=True)
    return materialize_class(source, class_name)


def coop_monitor_and_class(spec, discipline: str,
                           pipeline=None) -> Tuple[Monitor, type]:
    """(reference monitor AST, coop class) for one benchmark/discipline pair."""
    from repro.harness.saturation import expresso_result
    from repro.placement.pipeline import ExpressoPipeline

    pipeline = pipeline if pipeline is not None else ExpressoPipeline()
    key = (spec.name, discipline, pipeline.config_key())
    if discipline == "expresso":
        result = expresso_result(spec, pipeline)
        reference = result.monitor
        if key not in _COOP_CLASS_CACHE:
            _COOP_CLASS_CACHE[key] = coop_class_for_explicit(result.explicit)
    elif discipline == "explicit":
        reference = spec.monitor()
        if key not in _COOP_CLASS_CACHE:
            _COOP_CLASS_CACHE[key] = coop_class_for_explicit(spec.handwritten_explicit())
    elif discipline == "autosynch":
        reference = spec.monitor()
        if key not in _COOP_CLASS_CACHE:
            source = generate_python_autosynch(reference, "CoopMonitor", coop=True)
            _COOP_CLASS_CACHE[key] = materialize_class(source, "CoopMonitor")
    elif discipline == "implicit":
        reference = spec.monitor()
        if key not in _COOP_CLASS_CACHE:
            source = generate_python_implicit(reference, "CoopMonitor", coop=True)
            _COOP_CLASS_CACHE[key] = materialize_class(source, "CoopMonitor")
    else:
        raise ValueError(f"unknown discipline {discipline!r}; "
                         f"expected one of {COOP_DISCIPLINES}")
    return reference, _COOP_CLASS_CACHE[key]


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass
class Counterexample:
    """A failing schedule, minimized and rendered for replay."""

    kind: str                      # oracle failure kind
    detail: str
    schedule: Tuple[int, ...]      # the original failing choice list
    minimized: Tuple[int, ...]     # the delta-debugged choice list
    trace: str                     # readable interleaving of the minimized run
    strategy: str
    seed: Optional[int]            # seed that found it (sampling strategies)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "schedule": list(self.schedule),
            "minimized": list(self.minimized),
            "strategy": self.strategy,
            "seed": self.seed,
            "trace": self.trace,
        }


@dataclass
class ExplorationResult:
    """Aggregate outcome of one exploration campaign."""

    benchmark: str
    discipline: str
    strategy: str
    seed: int
    schedules_run: int = 0
    completed: int = 0
    stalls: int = 0
    pruned: int = 0
    distinct_states: int = 0
    exhausted: bool = False
    elapsed_seconds: float = 0.0
    failures: List[Counterexample] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def schedules_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.schedules_run / self.elapsed_seconds

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "discipline": self.discipline,
            "strategy": self.strategy,
            "seed": self.seed,
            "schedules_run": self.schedules_run,
            "completed": self.completed,
            "stalls": self.stalls,
            "pruned": self.pruned,
            "distinct_states": self.distinct_states,
            "exhausted": self.exhausted,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "schedules_per_second": round(self.schedules_per_second, 2),
            "ok": self.ok,
            "failures": [failure.to_dict() for failure in self.failures],
        }


# ---------------------------------------------------------------------------
# Core loops
# ---------------------------------------------------------------------------


def _run_once(monitor: Monitor, coop_class: type, programs, strategy,
              max_steps: int, fingerprints: bool = False):
    instance = coop_class()
    result = run_schedule(instance, programs, strategy, max_steps,
                          fingerprints=fingerprints)
    verdict = check_run(monitor, programs, instance, result)
    return result, verdict


def replay_schedule(monitor: Monitor, coop_class: type, programs,
                    schedule: Sequence[int],
                    max_steps: int = 20_000) -> Tuple[RunResult, OracleVerdict]:
    """Replay a recorded/minimized schedule deterministically."""
    return _run_once(monitor, coop_class, programs,
                     ScheduleStrategy(schedule, FirstStrategy()), max_steps)


def _minimize(monitor: Monitor, coop_class: type, programs,
              schedule: Tuple[int, ...], kind: str,
              max_steps: int) -> Tuple[Tuple[int, ...], RunResult, OracleVerdict]:
    """ddmin the schedule, then rerun the minimum for its trace."""

    def reproduces(candidate: Tuple[int, ...]) -> bool:
        _result, verdict = replay_schedule(monitor, coop_class, programs,
                                           candidate, max_steps)
        return verdict.is_failure and verdict.kind == kind

    minimized = ddmin(schedule, reproduces)
    result, verdict = replay_schedule(monitor, coop_class, programs,
                                      minimized, max_steps)
    return minimized, result, verdict


def _record_failure(outcome: ExplorationResult, monitor, coop_class, programs,
                    run: RunResult, verdict: OracleVerdict, strategy_name: str,
                    seed: Optional[int], max_steps: int, minimize: bool) -> None:
    schedule = run.choices
    if minimize:
        minimized, min_run, min_verdict = _minimize(
            monitor, coop_class, programs, schedule, verdict.kind, max_steps)
        trace = render_trace(min_run, programs, min_verdict)
        detail = min_verdict.detail or verdict.detail
    else:
        minimized = schedule
        trace = render_trace(run, programs, verdict)
        detail = verdict.detail
    outcome.failures.append(Counterexample(
        kind=verdict.kind or "failure", detail=detail, schedule=schedule,
        minimized=minimized, trace=trace, strategy=strategy_name, seed=seed))


def _tally(outcome: ExplorationResult, run: RunResult,
           verdict: OracleVerdict) -> None:
    outcome.schedules_run += 1
    if run.outcome == "completed":
        outcome.completed += 1
    elif verdict.ok and verdict.kind == "stall":
        outcome.stalls += 1


def _explore_sampling(monitor, coop_class, programs, outcome: ExplorationResult,
                      budget: int, seed: int, max_steps: int,
                      stop_on_failure: bool, minimize: bool) -> None:
    # PCT change points must land inside the run: roughly one grant decision
    # per operation plus slack for waits/relays.
    expected_decisions = max(8, 2 * sum(len(program) for program in programs))
    for iteration in range(budget):
        walk_seed = seed + iteration
        strategy = make_strategy(outcome.strategy, walk_seed,
                                 expected_decisions=expected_decisions)
        run, verdict = _run_once(monitor, coop_class, programs, strategy, max_steps)
        _tally(outcome, run, verdict)
        if verdict.is_failure:
            _record_failure(outcome, monitor, coop_class, programs, run, verdict,
                            outcome.strategy, walk_seed, max_steps, minimize)
            if stop_on_failure:
                return


def _explore_dfs(monitor, coop_class, programs, outcome: ExplorationResult,
                 budget: int, max_steps: int, stop_on_failure: bool,
                 minimize: bool) -> None:
    seen: set = set()
    stack: List[Tuple[int, ...]] = [()]
    while stack and outcome.schedules_run < budget:
        prefix = stack.pop()
        strategy = ScheduleStrategy(prefix, FirstStrategy())
        instance = coop_class()
        run = run_schedule(instance, programs, strategy, max_steps,
                           fingerprints=True)
        verdict = check_run(monitor, programs, instance, run)
        _tally(outcome, run, verdict)
        # Decisions at positions < len(prefix) replay ancestor choices whose
        # alternatives the ancestors already pushed; fresh positions start at
        # len(prefix).  A fresh position whose pre-decision state was already
        # visited roots a subtree explored elsewhere: stop expanding there.
        # (Expansion happens before the failure check so that a failing first
        # run still records its states and pending alternatives — `exhausted`
        # must not claim full coverage after an early stop.)
        limit = len(run.decisions)
        for position in range(len(prefix), len(run.decisions)):
            fingerprint = run.decisions[position].fingerprint
            if fingerprint is None:
                continue
            if fingerprint in seen:
                limit = position
                outcome.pruned += 1
                break
            seen.add(fingerprint)
        choices = run.choices
        for position in range(limit - 1, len(prefix) - 1, -1):
            decision = run.decisions[position]
            for alternative in range(len(decision.candidates)):
                if alternative != decision.chosen:
                    stack.append(choices[:position] + (alternative,))
        if verdict.is_failure:
            _record_failure(outcome, monitor, coop_class, programs, run, verdict,
                            "dfs", None, max_steps, minimize)
            if stop_on_failure:
                break
    outcome.distinct_states = len(seen)
    outcome.exhausted = not stack


def explore_class(monitor: Monitor, coop_class: type, programs,
                  strategy: str = "random", budget: int = 200, seed: int = 0,
                  max_steps: int = 20_000, stop_on_failure: bool = True,
                  minimize: bool = True, benchmark: str = "?",
                  discipline: str = "?") -> ExplorationResult:
    """Explore one coop monitor class over fixed per-thread programs."""
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
    outcome = ExplorationResult(benchmark=benchmark, discipline=discipline,
                                strategy=strategy, seed=seed)
    start = time.perf_counter()
    if strategy == "dfs":
        _explore_dfs(monitor, coop_class, programs, outcome, budget, max_steps,
                     stop_on_failure, minimize)
    else:
        _explore_sampling(monitor, coop_class, programs, outcome, budget, seed,
                          max_steps, stop_on_failure, minimize)
    outcome.elapsed_seconds = time.perf_counter() - start
    return outcome


def explore_explicit(explicit: ExplicitMonitor, reference: Monitor, programs,
                     **kwargs) -> ExplorationResult:
    """Explore an arbitrary placed monitor (mutants, fuzzer output, ...)."""
    coop_class = coop_class_for_explicit(explicit)
    kwargs.setdefault("benchmark", reference.name)
    kwargs.setdefault("discipline", "explicit")
    return explore_class(reference, coop_class, programs, **kwargs)


def explore_benchmark(spec, discipline: str = "expresso", threads: int = 3,
                      ops: int = 3, pipeline=None, **kwargs) -> ExplorationResult:
    """Explore one registry benchmark under a discipline's coop compilation."""
    reference, coop_class = coop_monitor_and_class(spec, discipline, pipeline)
    programs = spec.workload(threads, ops)
    kwargs.setdefault("benchmark", spec.name)
    kwargs.setdefault("discipline", discipline)
    return explore_class(reference, coop_class, programs, **kwargs)
