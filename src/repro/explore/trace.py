"""Readable rendering of a scheduled execution (counterexample traces)."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.explore.oracle import OracleVerdict
from repro.explore.scheduler import RunResult, TraceEvent


def _format_args(args: tuple) -> str:
    return "(" + ", ".join(repr(arg) for arg in args) + ")"


def _format_event(event: TraceEvent,
                  programs: Sequence[Sequence[Tuple[str, tuple]]]) -> str:
    tid = event.thread
    if event.kind == "grant":
        return f"T{tid} enters the monitor for {event.label}()"
    if event.kind == "commit":
        return f"T{tid} commits {event.label}"
    if event.kind == "wait":
        return f"T{tid} blocks on condition '{event.key}'"
    if event.kind in ("signal", "broadcast"):
        if event.woken:
            woken = ", ".join(f"T{w}" for w in event.woken)
            return f"T{tid} {event.kind}s '{event.key}' -> wakes {woken}"
        return f"T{tid} {event.kind}s '{event.key}' -> no waiters"
    if event.kind == "release":
        return f"T{tid} leaves the monitor"
    return f"T{tid} {event.kind}"


def render_trace(result: RunResult,
                 programs: Sequence[Sequence[Tuple[str, tuple]]],
                 verdict: Optional[OracleVerdict] = None) -> str:
    """Render one execution as a numbered, human-readable interleaving."""
    lines = []
    for tid, program in enumerate(programs):
        ops = ", ".join(f"{name}{_format_args(args)}" for name, args in program)
        lines.append(f"T{tid}: {ops or '(idle)'}")
    lines.append("-" * 48)
    for step, event in enumerate(result.events, start=1):
        lines.append(f"{step:4d}  {_format_event(event, programs)}")
    lines.append("-" * 48)
    if result.outcome == "deadlock":
        waiting = ", ".join(f"T{tid} on '{key}'"
                            for tid, key in sorted(result.waiting.items()))
        lines.append(f"outcome: DEADLOCK ({waiting})")
    else:
        lines.append(f"outcome: {result.outcome.upper()}")
    if verdict is not None and verdict.kind is not None:
        status = "ok" if verdict.ok else "FAILURE"
        lines.append(f"oracle:  {verdict.kind} [{status}] {verdict.detail}".rstrip())
    return "\n".join(lines)
