"""The differential oracle: compiled monitor vs. reference semantics.

A scheduled run of a compiled (coop-mode) monitor produces a *commit order* —
the sequence of (thread, CCR label) pairs in the order their bodies ran under
the virtual monitor lock.  The oracle replays exactly that order through the
implicit-signal reference semantics (the AST interpreter of
:mod:`repro.semantics.state`) and flags every observable disagreement:

* **guard-violation** — the compiled monitor admitted a thread into a CCR
  whose guard is *false* in the reference state (a codegen or placement bug
  that broke mutual exclusion of the guard check);
* **lost-wakeup** — the run deadlocked while some sleeping thread's guard
  *holds* in the reference state: the implicit (automatic-signal) monitor
  would have woken it, so the generated signal placement dropped a required
  notification.  This is the bug class Theorem 4.1 rules out, checked
  executably;
* **state-divergence** — the run completed but the compiled monitor's shared
  fields disagree with the interpreter's (a compiled-body bug);
* **stall** (not a failure) — the run deadlocked but every sleeping guard is
  false in the reference state too: the implicit monitor is equally stuck,
  so the schedule merely exposed an unbalanced workload.

Because the reference replay interprets the original :class:`Monitor` AST,
the oracle cross-checks the entire pipeline — parsing, placement,
instrumentation and Python emission — against Definition 3.4's
"same commit order, same shared state" reading.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.codegen.pyexpr import python_identifier
from repro.lang.ast import Monitor
from repro.logic.evaluate import evaluate
from repro.semantics.state import MonitorState, Value


@dataclass(frozen=True)
class OracleVerdict:
    """The oracle's judgement of one scheduled run."""

    ok: bool
    kind: Optional[str] = None     # guard-violation | lost-wakeup | state-divergence
    detail: str = ""               # | step-limit | error | stall (ok=True) | None

    @property
    def is_failure(self) -> bool:
        return not self.ok


class ReferenceReplay:
    """Replay a commit order through the implicit-signal reference semantics."""

    def __init__(self, monitor: Monitor, programs: Sequence[Sequence[Tuple[str, tuple]]]):
        self.monitor = monitor
        self.state = MonitorState.initial(monitor)
        self._shared_names = monitor.field_names()
        self._programs = [list(program) for program in programs]
        # Per thread: (operation index, CCR index within the operation's method).
        self._position: Dict[int, Tuple[int, int]] = {
            tid: (0, 0) for tid in range(len(programs))
        }

    # -- stepping -------------------------------------------------------------

    def commit(self, tid: int, label: str) -> Optional[str]:
        """Replay one commit; returns a failure detail when the guard is false."""
        op_index, ccr_index = self._position[tid]
        program = self._programs[tid]
        if op_index >= len(program):
            raise ValueError(f"thread {tid} committed {label!r} past its program end")
        method_name, args = program[op_index]
        method = self.monitor.method(method_name)
        if ccr_index == 0:
            # Fresh method activation: bind parameters, drop stale locals.
            self.state.locals[tid] = dict(zip(method.param_names(), args))
        ccr = method.ccrs[ccr_index]
        if ccr.label != label:
            try:
                owner, _ccr = self.monitor.ccr_by_label(label)
                origin = f"; {label!r} belongs to method {owner.name!r}"
            except KeyError:
                origin = f"; {label!r} is unknown to the monitor"
            raise ValueError(
                f"thread {tid} committed {label!r} but its program expects "
                f"{ccr.label!r} — scheduler/program mismatch{origin}")
        guard_ok = bool(self.state.evaluate(ccr.guard, tid))
        self.state = self.state.run(ccr.body, tid, self._shared_names)
        if ccr_index + 1 < len(method.ccrs):
            self._position[tid] = (op_index, ccr_index + 1)
        else:
            self._position[tid] = (op_index + 1, 0)
        if not guard_ok:
            return (f"thread {tid} entered {label} while its guard is false "
                    f"in the reference state")
        return None

    # -- queries --------------------------------------------------------------

    def pending(self, tid: int) -> Optional[Tuple[str, object]]:
        """The (label, guard) the thread is about to attempt, if any."""
        op_index, ccr_index = self._position[tid]
        program = self._programs[tid]
        if op_index >= len(program):
            return None
        method = self.monitor.method(program[op_index][0])
        ccr = method.ccrs[ccr_index]
        return ccr.label, ccr.guard

    def pending_guard_true(self, tid: int) -> bool:
        """Would the implicit monitor admit *tid*'s next CCR right now?"""
        entry = self.pending(tid)
        if entry is None:
            return False
        _label, guard = entry
        return bool(evaluate(guard, self._guard_environment(tid)))

    def _guard_environment(self, tid: int) -> Dict[str, Value]:
        """σ(t, ·) for the pending guard, binding parameters when the thread
        blocked before its first commit of the current method."""
        op_index, ccr_index = self._position[tid]
        method_name, args = self._programs[tid][op_index]
        env: Dict[str, Value] = dict(self.state.shared)
        if ccr_index == 0:
            env.update(dict(zip(self.monitor.method(method_name).param_names(), args)))
        else:
            env.update(self.state.locals.get(tid, {}))
        return env

    def shared_mismatches(self, instance) -> List[Tuple[str, Value, Value]]:
        """(field, reference value, compiled value) triples that disagree."""
        mismatches = []
        for name, expected in sorted(self.state.shared.items()):
            actual = getattr(instance, python_identifier(name))
            if expected != actual:
                mismatches.append((name, expected, actual))
        return mismatches


class _TrieNode:
    """One commit-prefix of the reference replay, with its resulting state."""

    __slots__ = ("children", "state", "positions", "violation", "mismatch")

    def __init__(self, state: MonitorState, positions: Dict[int, Tuple[int, int]],
                 violation: Optional[str] = None, mismatch: Optional[str] = None):
        self.children: Dict[Tuple[int, str], "_TrieNode"] = {}
        self.state = state            # reference state AFTER this commit prefix
        self.positions = positions    # per-thread (op, ccr) positions
        self.violation = violation    # guard-violation detail at the last commit
        self.mismatch = mismatch      # commit-mismatch error at the last commit


class OracleCache:
    """Memoized differential oracle for one exploration campaign.

    Systematic exploration replays the same commit prefixes thousands of
    times (DFS siblings share everything up to their divergence; random walks
    repeat hot interleavings).  The cache interns reference-replay states in
    a trie keyed by commit prefix, so judging a run only interprets the
    commits the campaign has never seen in that order — a commit order seen
    verbatim costs a dictionary walk.  Complete verdicts are additionally
    memoized by (commit order, outcome, waiting set): generated coop classes
    mutate shared fields only inside committed CCR bodies, so the commit
    order determines the compiled shared state and the verdict is a pure
    function of the key.
    """

    def __init__(self, monitor: Monitor,
                 programs: Sequence[Sequence[Tuple[str, tuple]]]):
        self.monitor = monitor
        self.programs = programs
        self._stepper = ReferenceReplay(monitor, programs)
        self._root = _TrieNode(self._stepper.state.copy(),
                               dict(self._stepper._position))
        self._verdicts: Dict[tuple, OracleVerdict] = {}
        self.hits = 0
        self.misses = 0

    # -- trie -----------------------------------------------------------------

    def _child(self, node: _TrieNode, commit: Tuple[int, str]) -> _TrieNode:
        child = node.children.get(commit)
        if child is not None:
            return child
        stepper = self._stepper
        stepper.state = node.state.copy()
        stepper._position = dict(node.positions)
        try:
            detail = stepper.commit(*commit)
        except ValueError as exc:
            child = _TrieNode(node.state, node.positions, mismatch=str(exc))
        else:
            child = _TrieNode(stepper.state, dict(stepper._position),
                              violation=detail)
        node.children[commit] = child
        return child

    def _walk(self, commits) -> Tuple[Optional[_TrieNode], Optional[OracleVerdict]]:
        """Follow *commits* through the trie, extending it as needed."""
        node = self._root
        for commit in commits:
            node = self._child(node, commit)
            if node.mismatch is not None:
                return None, OracleVerdict(False, "commit-mismatch", node.mismatch)
            if node.violation is not None:
                return None, OracleVerdict(False, "guard-violation", node.violation)
        return node, None

    def _view(self, node: _TrieNode) -> ReferenceReplay:
        """A ReferenceReplay positioned at *node* (on copied state)."""
        stepper = self._stepper
        stepper.state = node.state.copy()
        stepper._position = dict(node.positions)
        return stepper

    # -- judging --------------------------------------------------------------

    def judge(self, result, instance) -> OracleVerdict:
        """Memoized equivalent of :func:`check_run` for complete runs."""
        key = (tuple(result.commits), result.outcome,
               tuple(sorted(result.waiting.items())))
        cached = self._verdicts.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        verdict = self._judge(result, instance)
        self._verdicts[key] = verdict
        return verdict

    def _judge(self, result, instance) -> OracleVerdict:
        if result.outcome == "error":
            return OracleVerdict(False, "error", result.error or "execution error")
        node, failure = self._walk(result.commits)
        if failure is not None:
            return failure
        if result.outcome == "step-limit":
            return OracleVerdict(False, "step-limit",
                                 f"schedule exceeded {result.steps} steps "
                                 f"without finishing")
        if result.outcome == "deadlock":
            view = self._view(node)
            for tid in sorted(result.waiting):
                if view.pending_guard_true(tid):
                    label, _guard = view.pending(tid)
                    return OracleVerdict(
                        False, "lost-wakeup",
                        f"thread {tid} sleeps on {label} although its guard "
                        f"holds in the reference state — the implicit monitor "
                        f"would wake it")
            return OracleVerdict(True, "stall",
                                 "every sleeping guard is false in the reference "
                                 "state (the implicit monitor is equally stuck)")
        mismatches = self._view(node).shared_mismatches(instance)
        if mismatches:
            rendered = ", ".join(f"{name}: reference={exp!r} compiled={act!r}"
                                 for name, exp, act in mismatches)
            return OracleVerdict(False, "state-divergence", rendered)
        return OracleVerdict(True)

    def judge_partial(self, result) -> OracleVerdict:
        """Judge the commits of a truncated run (merged / sleep-set pruned).

        Only per-commit failure classes (guard violations, commit mismatches)
        apply — completion classes (state divergence, lost wakeups) are
        checked on the full runs that cover the truncated run's subtree.
        """
        _node, failure = self._walk(result.commits)
        return failure if failure is not None else OracleVerdict(True)


def check_run(monitor: Monitor, programs: Sequence[Sequence[Tuple[str, tuple]]],
              instance, result) -> OracleVerdict:
    """Judge one :class:`~repro.explore.scheduler.RunResult` differentially."""
    if result.outcome == "error":
        return OracleVerdict(False, "error", result.error or "execution error")
    reference = ReferenceReplay(monitor, programs)
    try:
        for tid, label in result.commits:
            detail = reference.commit(tid, label)
            if detail is not None:
                return OracleVerdict(False, "guard-violation", detail)
    except ValueError as exc:
        # Wrong or out-of-order commit labels are themselves a pipeline-bug
        # class (mislabelled CCRs, broken emission): classify, don't crash.
        return OracleVerdict(False, "commit-mismatch", str(exc))
    if result.outcome == "step-limit":
        return OracleVerdict(False, "step-limit",
                             f"schedule exceeded {result.steps} steps without finishing")
    if result.outcome == "deadlock":
        for tid in sorted(result.waiting):
            if reference.pending_guard_true(tid):
                label, _guard = reference.pending(tid)
                return OracleVerdict(
                    False, "lost-wakeup",
                    f"thread {tid} sleeps on {label} although its guard holds in "
                    f"the reference state — the implicit monitor would wake it")
        return OracleVerdict(True, "stall",
                             "every sleeping guard is false in the reference state "
                             "(the implicit monitor is equally stuck)")
    mismatches = reference.shared_mismatches(instance)
    if mismatches:
        rendered = ", ".join(f"{name}: reference={exp!r} compiled={act!r}"
                             for name, exp, act in mismatches)
        return OracleVerdict(False, "state-divergence", rendered)
    return OracleVerdict(True)
