"""Deterministic schedule exploration for compiled monitors.

The subsystem adversarially schedules monitors compiled in *coop* mode
(generator-based virtual threads) and differentially checks every execution
against the implicit-signal reference semantics:

* :mod:`repro.explore.scheduler`  — the cooperative virtual-thread scheduler
  (every interleaving is a replayable list of recorded choices);
* :mod:`repro.explore.strategies` — exhaustive DFS extension, seeded random
  walks, and PCT-style priority schedules;
* :mod:`repro.explore.oracle`     — the differential oracle (guard
  violations, lost wakeups, state divergence);
* :mod:`repro.explore.reduce`     — ddmin counterexample reduction;
* :mod:`repro.explore.trace`      — readable interleaving rendering;
* :mod:`repro.explore.engine`     — the campaign driver gluing it together;
* :mod:`repro.explore.genmon`     — a seeded random-monitor generator that
  fuzzes the whole compile pipeline end to end.
"""

from repro.explore.engine import (
    COOP_DISCIPLINES,
    STRATEGIES,
    Counterexample,
    ExplorationResult,
    SegmentRefiner,
    ValueIndependence,
    coop_class_for_explicit,
    coop_monitor_and_class,
    explore_benchmark,
    explore_class,
    explore_explicit,
    footprints_for_explicit,
    replay_schedule,
    wait_info_for_explicit,
)
from repro.explore.oracle import OracleCache, OracleVerdict, ReferenceReplay, check_run
from repro.explore.parallel import (
    MutationReport,
    merge_results,
    mutation_campaign,
    parallel_explore_benchmark,
    parallel_explore_class,
)
from repro.explore.reduce import ddmin
from repro.explore.scheduler import (
    CoopScheduler,
    Decision,
    RunResult,
    SchedulerError,
    TraceEvent,
    run_schedule,
)
from repro.explore.strategies import (
    DporStrategy,
    FirstStrategy,
    IndependenceRelation,
    MethodFootprint,
    PCTStrategy,
    RandomStrategy,
    ScheduleStrategy,
    Strategy,
    make_strategy,
)
from repro.explore.trace import render_trace

__all__ = [
    "COOP_DISCIPLINES", "STRATEGIES",
    "Counterexample", "ExplorationResult",
    "coop_class_for_explicit", "coop_monitor_and_class",
    "explore_benchmark", "explore_class", "explore_explicit",
    "footprints_for_explicit", "replay_schedule",
    "OracleCache", "OracleVerdict", "ReferenceReplay", "check_run",
    "MutationReport", "merge_results", "mutation_campaign",
    "parallel_explore_benchmark", "parallel_explore_class",
    "ddmin",
    "CoopScheduler", "Decision", "RunResult", "SchedulerError", "TraceEvent",
    "run_schedule",
    "DporStrategy", "FirstStrategy", "IndependenceRelation", "MethodFootprint",
    "PCTStrategy", "RandomStrategy", "ScheduleStrategy",
    "Strategy", "make_strategy",
    "render_trace",
]
