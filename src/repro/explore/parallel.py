"""Parallel exploration campaigns: shard schedules over a process pool.

Schedules are independent, so a campaign parallelizes embarrassingly — the
only care is determinism of the *reported* result:

* ``random`` / ``pct`` budgets are sharded into contiguous seed blocks
  (worker *i* explores walk seeds ``seed+start_i .. seed+end_i-1``); because
  walk ``seed + k`` is exactly the schedule a sequential campaign would run
  as iteration *k*, the merged first failure — minimal global iteration
  index — is the same schedule a ``--workers 1`` campaign reports.
* ``dfs`` shards the *top-level decision*: the driver runs one schedule to
  find the first branching decision and gives each worker a slice of its
  alternatives as DFS root prefixes.  Shards keep private visited-state sets
  (coverage is unioned via stable state hashes) **and additionally share a
  cross-worker visited-fingerprint memo** — a SQLite-backed
  :class:`~repro.distrib.CampaignStore` each shard's merge probe consults
  through :class:`~repro.distrib.VisitedStore` — so shards stop re-exploring
  (and re-judging) overlap that a shard *completed failure-free*.
  Publication is gated on clean completion (see
  :class:`~repro.distrib.VisitedStore`), which keeps the failure list and
  the combined coverage independent of scheduling timing.  Statistics are
  not: judged/pruned/shared-hit counts — and, under budgets tight enough
  that pruning decides whether a shard drains, the per-shard ``exhausted``
  flags — depend on which shards finish first, so assert verdicts, never
  exact counts, for ``workers > 1``.  The merged failure list is ordered
  by (shard, discovery order).

With a persistent ``--store`` (see :mod:`repro.distrib`), shards are not
statically bound to pool workers: every shard becomes a leased work unit in
the store's work-stealing queue, so cooperating processes — extra
``expresso`` invocations pointed at the same path — pick up units, and a
unit whose worker dies is re-claimed by a sibling after its lease expires.
The merged result is collected in unit order either way, so it is identical
to the supervised-pool path.

Workers never recompile the monitor: the parent ships the *generated coop
class source* (plus the reference AST, POR footprints, semantic matrix and
wait-guard metadata), so a worker only ``exec``s the class definition — no
SMT recompilation, no placement.

The module also hosts the **mutation campaign**: iterate every placed
notification of every benchmark (``ExplicitMonitor.notification_sites``),
delete it, and require the exploration engine to produce a counterexample —
a placement-wide lost-wakeup detection sweep, parallelized per mutant.
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.codegen.python_gen import generate_python_explicit, materialize_class
from repro.distrib import CampaignStore, DistribConfig, VisitedStore, queue_map
from repro.explore.engine import (
    Counterexample,
    ExplorationResult,
    coop_monitor_and_class,
    explore_class,
    footprints_for_explicit,
    wait_info_for_explicit,
)
from repro.explore.scheduler import run_schedule
from repro.explore.strategies import FirstStrategy
from repro.lang.ast import Monitor
from repro.placement.target import ExplicitMonitor
from repro.resilience import JobFailure, SupervisorConfig, run_supervised
from repro.resilience.atomic import checksum_payload


def default_workers() -> int:
    return os.cpu_count() or 2


def map_jobs(function, jobs: Sequence[dict], workers: Optional[int] = None,
             supervisor: Optional[SupervisorConfig] = None) -> List:
    """Order-preserving *supervised* map over the campaign worker pool.

    The building block campaign drivers (the mutation sweep, the fuzzing
    campaign's batches) shard per-candidate jobs with: results come back in
    job order whatever the pool's scheduling did, so merging is
    deterministic and independent of the worker count; one worker (or one
    job) short-circuits to an in-process loop.

    Execution is delegated to the worker supervisor: a worker death
    (``BrokenProcessPool``) or a hang past ``supervisor.deadline_seconds``
    costs bounded retries of the *suspect* jobs, never the completed
    siblings — a job that keeps failing comes back as
    :class:`~repro.resilience.JobFailure` carrying the offending job dict,
    in its slot, instead of an exception that loses the whole batch.
    """
    jobs = list(jobs)
    config = supervisor or SupervisorConfig()
    config = dataclasses.replace(
        config, workers=workers or config.workers or default_workers())
    return run_supervised(function, jobs, config)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _rebuild_class(job: dict) -> type:
    cls = materialize_class(job["class_source"], job["class_name"])
    if job.get("footprints") is not None:
        cls._coop_footprints = job["footprints"]
    if job.get("semantic") is not None:
        cls._coop_semantic = job["semantic"]
    if job.get("wait_info") is not None:
        cls._coop_wait_info = job["wait_info"]
    if job.get("explicit") is not None:
        cls._coop_explicit = job["explicit"]
    return cls


def _run_shard(job: dict) -> ExplorationResult:
    """One worker's slice of a campaign (executed in a pool process)."""
    coop_class = _rebuild_class(job)
    store_path = job.get("visited_store")
    shared_store = (VisitedStore(CampaignStore(store_path),
                                 scope=job["visited_scope"])
                    if store_path is not None else None)

    def explore() -> ExplorationResult:
        return explore_class(
            job["monitor"], coop_class, job["programs"],
            strategy=job["strategy"], budget=job["budget"], seed=job["seed"],
            max_steps=job["max_steps"], stop_on_failure=job["stop_on_failure"],
            minimize=job["minimize"], benchmark=job["benchmark"],
            discipline=job["discipline"], por=job["por"],
            semantic=job.get("semantic_por", True),
            symmetry=job.get("symmetry", True),
            dfs_prefixes=job.get("dfs_prefixes"),
            export_state_hashes=job["strategy"] == "dfs",
            shared_store=shared_store,
            witness=job.get("witness", False))

    if not job.get("trace"):
        return explore()
    # Traced shard: record into a worker-local session and ship the raw
    # events + counter snapshot home; the driver merges them in shard order.
    with obs.observe(trace=True) as session:
        result = explore()
    result.trace_shards = [session.tracer.events]
    result.metrics_snapshot = session.registry.snapshot()
    return result


def _run_mutant(job: dict) -> dict:
    """Explore one notification-deleted mutant (executed in a pool process).

    The driver computes the semantic matrix *per mutant*: matrix entries may
    rest on notification-order proofs (the monotone-broadcast rule), so the
    parent's matrix can overstate independence once a notification is
    deleted.  The syntactic condition-variable gating additionally uses the
    mutant's own (reduced) footprints, computed here.
    """
    mutant: ExplicitMonitor = job["mutant"]
    source = generate_python_explicit(mutant, class_name="CoopMonitor", coop=True)
    cls = materialize_class(source, "CoopMonitor")
    cls._coop_footprints = footprints_for_explicit(mutant)
    if job.get("semantic") is not None:
        cls._coop_semantic = job["semantic"]
    cls._coop_wait_info = wait_info_for_explicit(mutant)
    cls._coop_explicit = mutant
    result = explore_class(
        job["monitor"], cls, job["programs"], strategy="dfs",
        budget=job["budget"], max_steps=job["max_steps"],
        stop_on_failure=True, minimize=job["minimize"],
        benchmark=job["benchmark"], discipline="mutant", por=True)
    if result.ok and result.exhausted:
        status = "benign"        # proven unobservable within this bound
    elif result.ok:
        status = "survived"      # budget ran out without a counterexample
    else:
        status = "caught"
    failure = result.failures[0].to_dict() if result.failures else None
    return {
        "benchmark": job["benchmark"],
        "site": job["site"],
        "status": status,
        "kind": failure["kind"] if failure else None,
        "schedules_run": result.schedules_run,
        "exhausted": result.exhausted,
        "failure": failure,
    }


# ---------------------------------------------------------------------------
# Merging
# ---------------------------------------------------------------------------


def merge_results(shards: Sequence[ExplorationResult], strategy: str,
                  base_seed: int, workers: int,
                  elapsed: float) -> ExplorationResult:
    """Fold worker shard results into one campaign result.

    The first failure is chosen deterministically: minimal global iteration
    index (``failure.seed - base_seed``) for sampling strategies, shard order
    for DFS — independent of worker count and scheduling jitter.
    """
    first = shards[0]
    merged = ExplorationResult(
        benchmark=first.benchmark, discipline=first.discipline,
        strategy=strategy, seed=base_seed, threads=first.threads,
        ops=first.ops, workers=workers)
    hashes: set = set()
    for shard in shards:
        merged.schedules_run += shard.schedules_run
        merged.completed += shard.completed
        merged.stalls += shard.stalls
        merged.pruned += shard.pruned
        merged.por_skipped += shard.por_skipped
        merged.symmetry_skipped += shard.symmetry_skipped
        merged.shared_hits += shard.shared_hits
        merged.oracle_hits += shard.oracle_hits
        merged.oracle_misses += shard.oracle_misses
        if shard.state_hashes:
            hashes.update(shard.state_hashes)
    if strategy == "dfs":
        merged.distinct_states = len(hashes)
        merged.exhausted = all(shard.exhausted for shard in shards)
        merged.budget_exhausted = any(shard.budget_exhausted for shard in shards)
        failures: List[Counterexample] = [
            failure for shard in shards for failure in shard.failures]
    else:
        merged.distinct_states = max(shard.distinct_states for shard in shards)
        failures = sorted(
            (failure for shard in shards for failure in shard.failures),
            key=lambda failure: failure.seed if failure.seed is not None else 0)
    merged.failures = failures
    merged.elapsed_seconds = elapsed
    # Flight-recorder payloads: shard event lists are concatenated in shard
    # (= job) order — for sampling strategies that is exactly the sequential
    # walk order, so the deterministic trace export is worker-count-stable.
    # Counter snapshots are summed into one registry; each shard folded its
    # own result exactly once, so the merge never double-counts.
    if any(shard.trace_shards for shard in shards):
        merged.trace_shards = [events for shard in shards
                               for events in (shard.trace_shards or [])]
        registry = obs.MetricsRegistry()
        for shard in shards:
            if shard.metrics_snapshot:
                registry.merge(shard.metrics_snapshot)
        merged.metrics_snapshot = registry.snapshot()
    return merged


# ---------------------------------------------------------------------------
# Driver side
# ---------------------------------------------------------------------------


def _shard_bounds(budget: int, workers: int) -> List[Tuple[int, int]]:
    """Split ``range(budget)`` into ``workers`` contiguous blocks."""
    chunk, remainder = divmod(budget, workers)
    bounds = []
    start = 0
    for index in range(workers):
        size = chunk + (1 if index < remainder else 0)
        if size == 0:
            continue
        bounds.append((start, start + size))
        start += size
    return bounds


def _dfs_root_prefixes(coop_class: type, programs, max_steps: int) -> List[Tuple[int, ...]]:
    """The alternatives of the first branching decision (DFS shard roots)."""
    probe = run_schedule(coop_class(), programs, FirstStrategy(), max_steps)
    if not probe.decisions:
        return []
    first = probe.decisions[0]
    return [(alternative,) for alternative in range(len(first.candidates))]


def parallel_explore_class(monitor: Monitor, coop_class: type, programs,
                           strategy: str = "random", budget: int = 200,
                           seed: int = 0, max_steps: int = 20_000,
                           stop_on_failure: bool = True, minimize: bool = True,
                           benchmark: str = "?", discipline: str = "?",
                           por: bool = True, semantic: bool = True,
                           symmetry: bool = True, share_states: bool = True,
                           witness: bool = False, trace: bool = False,
                           workers: Optional[int] = None,
                           supervisor: Optional[SupervisorConfig] = None,
                           store: Optional[CampaignStore] = None,
                           distrib: Optional[DistribConfig] = None,
                           ) -> ExplorationResult:
    """`explore_class`, sharded over a supervised process pool.

    Falls back to the sequential engine when one worker (or one shard) would
    do all the work anyway.  The coop class must carry ``_coop_source`` (all
    engine-built classes do) so workers can rebuild it without recompiling.
    ``share_states`` (DFS only) links the shards' merge probes through one
    SQLite-backed :class:`~repro.distrib.VisitedStore` (a private temp store
    by default, the persistent campaign *store* when one is given), so
    overlap explored by one shard is pruned — not re-judged — by the others.
    ``trace`` records every shard into a flight-recorder session and
    attaches ``trace_shards`` / ``metrics_snapshot`` to the merged result
    (also on the sequential fallback, so callers read one surface regardless
    of worker count).

    With *store* set, shards are dispatched through the store's lease-based
    work-stealing queue (:func:`repro.distrib.queue_map`) instead of a
    statically partitioned pool: cooperating processes pointed at the same
    store path claim units too, and a crashed worker's units are stolen by
    surviving siblings after the TTL.  Results still merge in unit order, so
    the outcome matches the supervised-pool path.

    Shards run under the worker supervisor: a shard whose worker dies or
    hangs is retried in isolation and, if it keeps failing, *quarantined* —
    recorded in ``result.worker_failures`` with its shard parameters — while
    every surviving shard's coverage and failures are still merged.  A lost
    shard also forces ``exhausted=False``: the merged result never claims
    full coverage of a subtree nobody finished.
    """
    workers = workers or default_workers()
    source = getattr(coop_class, "_coop_source", None)
    sequential_kwargs = dict(
        strategy=strategy, budget=budget, seed=seed, max_steps=max_steps,
        stop_on_failure=stop_on_failure, minimize=minimize,
        benchmark=benchmark, discipline=discipline, por=por,
        semantic=semantic, symmetry=symmetry, witness=witness)

    def sequential() -> ExplorationResult:
        if not trace:
            return explore_class(monitor, coop_class, programs,
                                 **sequential_kwargs)
        with obs.observe(trace=True) as session:
            result = explore_class(monitor, coop_class, programs,
                                   **sequential_kwargs)
        result.trace_shards = [session.tracer.events]
        result.metrics_snapshot = session.registry.snapshot()
        return result

    if source is None or (workers <= 1 and store is None):
        return sequential()
    # Explicit coop sources embed footprints/matrix as class-attribute
    # literals — rebuilding from source restores them, so ship them only
    # for classes whose source does not (autosynch/implicit runtimes).
    base_job = {
        "class_source": source,
        "class_name": coop_class.__name__,
        "footprints": (None if "_coop_footprints" in source
                       else getattr(coop_class, "_coop_footprints", None)),
        "semantic": (None if "_coop_semantic" in source
                     else getattr(coop_class, "_coop_semantic", None)),
        "wait_info": getattr(coop_class, "_coop_wait_info", None),
        "explicit": getattr(coop_class, "_coop_explicit", None),
        "monitor": monitor,
        "programs": [list(program) for program in programs],
        "strategy": strategy,
        "max_steps": max_steps,
        "stop_on_failure": stop_on_failure,
        "minimize": minimize,
        "benchmark": benchmark,
        "discipline": discipline,
        "por": por,
        "semantic_por": semantic,
        "symmetry": symmetry,
        "witness": witness,
        "trace": trace,
    }
    tempdir = None
    jobs: List[dict] = []
    try:
        if strategy == "dfs":
            roots = _dfs_root_prefixes(coop_class, programs, max_steps)
            if not roots or (len(roots) < 2 and store is None):
                return sequential()
            visited_store = None
            visited_scope = None
            if share_states and por and roots:
                # Campaign-scoped namespace: different benchmarks/configs
                # cooperating through one persistent store never observe
                # each other's published subtrees.
                visited_scope = checksum_payload([
                    benchmark, discipline, source,
                    [[repr(op) for op in program] for program in programs],
                    seed, max_steps, bool(semantic), bool(symmetry)])[:16]
                if store is not None:
                    visited_store = str(store.path)
                else:
                    tempdir = tempfile.TemporaryDirectory(
                        prefix="expresso-visited-")
                    visited_store = str(Path(tempdir.name) / "visited.sqlite3")
            root_slices = _shard_bounds(len(roots),
                                        min(max(workers, 1), len(roots)))
            # The --schedules budget caps *total* judged schedules, like the
            # sequential path: split it across shards (each shard gets at
            # least one schedule so every subtree is entered).
            budget_sizes = [end - start
                            for start, end in _shard_bounds(budget, len(root_slices))]
            budget_sizes += [1] * (len(root_slices) - len(budget_sizes))
            for (start, end), shard_budget in zip(root_slices, budget_sizes):
                job = dict(base_job)
                job["seed"] = seed
                job["budget"] = max(shard_budget, 1)
                job["dfs_prefixes"] = roots[start:end]
                job["visited_store"] = visited_store
                job["visited_scope"] = visited_scope
                jobs.append(job)
        else:
            for start, end in _shard_bounds(budget, max(workers, 1)):
                job = dict(base_job)
                job["seed"] = seed + start
                job["budget"] = end - start
                jobs.append(job)
        start_time = time.perf_counter()
        if store is not None:
            batch_key = checksum_payload([
                benchmark, discipline, strategy, source,
                [[repr(op) for op in program] for program in programs],
                budget, seed, max_steps, stop_on_failure, minimize,
                por, semantic, symmetry, witness, len(jobs)])[:16]
            outcomes = queue_map(
                _run_shard, jobs, store, batch=f"explore/{batch_key}",
                config=distrib or DistribConfig(store_path=str(store.path)),
                workers=min(max(workers, 1), len(jobs)))
            # The store's transactional counters are the authoritative
            # cross-process aggregate; mirror them so the session registry
            # (observe() snapshots, the exporter) shares one namespace.
            obs.mirror_store_counters(store.counters())
        else:
            config = supervisor or SupervisorConfig()
            config = dataclasses.replace(config, workers=len(jobs))
            outcomes = run_supervised(_run_shard, jobs, config)
        elapsed = time.perf_counter() - start_time
    finally:
        if tempdir is not None:
            tempdir.cleanup()
    shards: List[ExplorationResult] = []
    lost: List[dict] = []
    for job, outcome in zip(jobs, outcomes):
        if isinstance(outcome, JobFailure):
            lost.append(outcome.error_dict(
                shard={"seed": job["seed"], "budget": job["budget"],
                       "dfs_prefixes": [list(prefix) for prefix in
                                        job["dfs_prefixes"]]
                       if job.get("dfs_prefixes") else None}))
        else:
            shards.append(outcome)
    if not shards:
        merged = ExplorationResult(
            benchmark=benchmark, discipline=discipline, strategy=strategy,
            seed=seed, workers=len(jobs), elapsed_seconds=elapsed)
    else:
        merged = merge_results(shards, strategy, seed, len(jobs), elapsed)
    if lost:
        merged.worker_failures = lost
        merged.exhausted = False
    return merged


def parallel_explore_benchmark(spec, discipline: str = "expresso",
                               threads: int = 3, ops: int = 3, pipeline=None,
                               workers: Optional[int] = None,
                               **kwargs) -> ExplorationResult:
    """`explore_benchmark`, sharded over a process pool."""
    reference, coop_class = coop_monitor_and_class(spec, discipline, pipeline)
    programs = spec.workload(threads, ops)
    kwargs.setdefault("benchmark", spec.name)
    kwargs.setdefault("discipline", discipline)
    result = parallel_explore_class(reference, coop_class, programs,
                                    workers=workers, **kwargs)
    # Replay files feed this back to ``spec.workload``: record the workload
    # parameter, not the derived program length.
    result.ops = ops
    return result


# ---------------------------------------------------------------------------
# Mutation campaign
# ---------------------------------------------------------------------------


@dataclass
class MutationReport:
    """Outcome of a notification-deletion sweep over benchmark placements."""

    threads: int
    ops: int
    budget: int
    workers: int
    elapsed_seconds: float = 0.0
    mutants: List[dict] = field(default_factory=list)

    @property
    def caught(self) -> List[dict]:
        return [m for m in self.mutants if m["status"] == "caught"]

    @property
    def survived(self) -> List[dict]:
        return [m for m in self.mutants if m["status"] == "survived"]

    @property
    def benign(self) -> List[dict]:
        return [m for m in self.mutants if m["status"] == "benign"]

    @property
    def errors(self) -> List[dict]:
        return [m for m in self.mutants if m["status"] == "error"]

    @property
    def ok(self) -> bool:
        """Every mutant either yielded a counterexample or was *proven*
        unobservable at this bound (exhausted without divergence); a mutant
        that merely outlives the budget — or whose worker was quarantined
        before a verdict (``error``) — fails the campaign."""
        return not self.survived and not self.errors

    def to_dict(self) -> dict:
        record = {
            "threads": self.threads,
            "ops": self.ops,
            "budget": self.budget,
            "workers": self.workers,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "total": len(self.mutants),
            "caught": len(self.caught),
            "benign": len(self.benign),
            "survived": len(self.survived),
            "ok": self.ok,
            "mutants": self.mutants,
        }
        if self.errors:
            record["errors"] = len(self.errors)
        return record


def mutation_campaign(specs, threads: int = 3, ops: int = 2,
                      budget: int = 20_000, max_steps: int = 20_000,
                      workers: Optional[int] = None, minimize: bool = True,
                      pipeline=None,
                      supervisor: Optional[SupervisorConfig] = None,
                      ) -> MutationReport:
    """Drop every placed notification across *specs*; each must be detected.

    Compilation (SMT) happens once per benchmark in the driver; workers only
    exec mutant class sources and explore.  Uses DPOR DFS so small bounds
    exhaust — a surviving mutant is then either *benign* (search exhausted:
    the signal is unobservable under this workload bound) or a genuine
    detection gap (``survived``), which fails the campaign.
    """
    from repro.analysis.commutativity import semantic_independence_for_explicit
    from repro.harness.saturation import expresso_result
    from repro.placement.pipeline import ExpressoPipeline

    pipeline = pipeline if pipeline is not None else ExpressoPipeline()
    workers = workers or default_workers()
    jobs: List[dict] = []
    for spec in specs:
        compiled = expresso_result(spec, pipeline)
        programs = [list(program) for program in spec.workload(threads, ops)]
        for site in compiled.explicit.notification_sites():
            mutant = compiled.explicit.without_notification(*site)
            # Matrix entries can rest on notification-order proofs (the
            # monotone-broadcast rule), so each mutant gets its own matrix
            # in the driver; the shared solver's commute memo makes every
            # pair the deletion does not touch a cache hit.
            jobs.append({
                "benchmark": spec.name,
                "site": list(site),
                "mutant": mutant,
                "monitor": compiled.monitor,
                "programs": programs,
                "budget": budget,
                "max_steps": max_steps,
                "minimize": minimize,
                "semantic": semantic_independence_for_explicit(mutant),
            })
    report = MutationReport(threads=threads, ops=ops, budget=budget,
                            workers=workers)
    start = time.perf_counter()
    outcomes = map_jobs(_run_mutant, jobs, workers, supervisor=supervisor)
    report.mutants = [
        outcome if not isinstance(outcome, JobFailure)
        else outcome.error_dict(
            benchmark=outcome.job["benchmark"], site=outcome.job["site"],
            status="error", kind=None, schedules_run=0, exhausted=False,
            failure=None)
        for outcome in outcomes
    ]
    report.elapsed_seconds = time.perf_counter() - start
    return report
