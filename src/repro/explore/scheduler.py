"""The cooperative virtual-thread scheduler.

Monitor operations compiled in *coop* mode (see
:func:`repro.codegen.python_gen.generate_python_explicit` with ``coop=True``)
are generator functions that yield scheduler operations at every
synchronization point: ``acquire``, ``wait``, ``signal``, ``broadcast``,
``commit`` and ``release``.  :class:`CoopScheduler` drives one virtual thread
per workload entry and resolves the only two sources of scheduling
nondeterminism a monitor program has:

1. **grant** — when the monitor lock is free, which contending thread enters
   next (fresh arrivals and signalled waiters compete alike);
2. **signal** — when a ``signal`` finds several threads sleeping on the same
   condition, which one is woken.

Every such choice is delegated to a :mod:`strategy <repro.explore.strategies>`
and recorded, so an execution is fully described by its choice list — the
*schedule* — and can be replayed bit-for-bit from it.  Deadlocks are
*detected* (lock free, nobody runnable, someone asleep) rather than
experienced, which is what lets the engine probe lost-wakeup bugs without
ever hanging the test process.

For exhaustive exploration the scheduler can fingerprint the global state
(shared monitor fields plus, per thread, the generator frame's instruction
pointer and local variables) at every grant decision; the DFS driver uses the
fingerprints to prune schedules that re-enter an already-explored state.

Three hot-path refinements keep systematic exploration cheap:

* **incremental fingerprints** — per-thread frame snapshots are cached and
  only recomputed for threads that actually advanced since the previous
  fingerprint (between two grant decisions exactly one thread runs), so a
  fingerprint costs one frame walk instead of N;
* **prefix checkpointing** (``fingerprint_after``) — when the DFS replays a
  recorded prefix to reach a backtrack point, decisions inside the prefix
  were already fingerprinted by the parent run, so the replay skips all
  analysis work until the divergent suffix begins;
* **merge probing** (``merge_probe``) — the DFS can hand the scheduler a
  membership probe over already-visited states; a run whose divergent suffix
  immediately re-enters a visited state is cut off with outcome ``merged``
  instead of executing (and judging) its entire redundant tail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.explore.strategies import AbortRun, Strategy, _session_registry

#: One thread's program: a list of ``(method name, positional args)`` pairs.
ThreadProgram = Sequence[Tuple[str, tuple]]


class SchedulerError(RuntimeError):
    """A generated coop monitor violated the scheduler protocol."""


@dataclass(frozen=True)
class TraceEvent:
    """One rendered step of a virtual execution."""

    kind: str                      # grant | commit | wait | signal | broadcast | release
    thread: int
    label: Optional[str] = None    # CCR label (commit) or method name (grant)
    key: Optional[str] = None      # condition key (wait/signal/broadcast)
    woken: Tuple[int, ...] = ()    # threads woken by a signal/broadcast
    #: The granted operation's call arguments (grant events only) — the
    #: value-sensitive POR layer keys instantiated independence checks on
    #: (method, args) pairs.
    args: Tuple = ()


@dataclass(frozen=True)
class Decision:
    """One recorded scheduling choice (only choices with >1 candidate)."""

    kind: str                      # 'grant' | 'signal'
    candidates: Tuple[int, ...]    # thread ids, sorted
    chosen: int                    # index into candidates
    fingerprint: Optional[tuple] = None   # pre-decision state (grant only)
    #: The method each candidate thread is currently executing, aligned with
    #: ``candidates`` (grant decisions only; the POR layer derives candidate
    #: footprints from these).
    methods: Tuple[str, ...] = ()
    #: Index into ``RunResult.events`` where this decision's effect lands —
    #: the grant event it produced (grant) or the signal event (signal).
    event_index: int = -1
    #: Symmetry-class ids aligned with ``candidates`` (only populated when
    #: the scheduler runs with ``symmetry=True``).  Two candidates share a
    #: class when they are provably interchangeable: same suspended frame
    #: (method, arguments, locals, resume point) and same remaining program,
    #: so swapping them is a state automorphism and the DPOR expansion only
    #: needs one representative per class.
    sym_classes: Tuple[int, ...] = ()
    #: Each candidate's program position (grant decisions only) — the
    #: context-sensitive POR refinement uses it to look up the pending
    #: operation's arguments.
    op_indices: Tuple[int, ...] = ()
    #: Per candidate, the condition key the thread was last woken from (None
    #: for a thread starting a fresh operation); grant decisions only.
    resumes: Tuple[Optional[str], ...] = ()


@dataclass
class RunResult:
    """Everything one scheduled execution produced."""

    outcome: str                               # completed | deadlock | merged |
                                               #   sleep-set | step-limit | error
    commits: List[Tuple[int, str]] = field(default_factory=list)
    events: List[TraceEvent] = field(default_factory=list)
    decisions: List[Decision] = field(default_factory=list)
    waiting: Dict[int, str] = field(default_factory=dict)  # tid -> condition key
    steps: int = 0
    error: Optional[str] = None

    @property
    def choices(self) -> Tuple[int, ...]:
        """The schedule: the recorded choice list that replays this run."""
        return tuple(decision.chosen for decision in self.decisions)


class _VirtualThread:
    __slots__ = ("tid", "program", "op_index", "frame", "status", "wait_key",
                 "resume_key")

    def __init__(self, tid: int, program: ThreadProgram):
        self.tid = tid
        self.program = list(program)
        self.op_index = 0
        self.frame = None
        self.status = "done"       # acquiring | waiting | done
        self.wait_key: Optional[str] = None
        #: The condition this thread was last woken from, None once the
        #: operation completes — i.e. whether a grant would *resume* the
        #: thread mid-method rather than start the operation fresh.
        self.resume_key: Optional[str] = None


# -- state fingerprinting ----------------------------------------------------


def _freeze(value):
    """A hashable snapshot of a frame-local / field value (opaque -> None)."""
    if isinstance(value, (int, bool, str, type(None))):
        return value
    if isinstance(value, dict):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return None


def _frame_fingerprint(generator) -> tuple:
    """Fingerprint a (possibly ``yield from``-nested) suspended generator.

    The instruction pointer (``f_lasti``) pins *where* the coroutine is
    suspended; the frozen locals pin the values of method parameters and
    CCR-local variables.  Opaque locals (closures, the monitor itself) are
    dropped — their observable content is either shared state (fingerprinted
    separately) or derived from the frozen locals.
    """
    parts = []
    while generator is not None:
        frame = getattr(generator, "gi_frame", None)
        if frame is None:
            parts.append(("exhausted",))
            break
        locals_fp = tuple(sorted(
            (name, _freeze(value))
            for name, value in frame.f_locals.items()
            if name != "self" and isinstance(value, (int, bool, str, type(None),
                                                     dict, list, tuple))
        ))
        parts.append((frame.f_lasti, locals_fp))
        generator = getattr(generator, "gi_yieldfrom", None)
    return tuple(parts)


class CoopScheduler:
    """Run one coop monitor instance over per-thread programs under a strategy.

    *fingerprint_after* skips fingerprinting (and merge probing) for the first
    N recorded decisions — the DFS sets it to the replayed prefix length so a
    backtracking replay only pays analysis cost on its divergent suffix.

    *merge_probe* is consulted with every fresh fingerprint; returning True
    means the state was already explored elsewhere and the run is cut off
    with outcome ``merged`` (no decision is recorded for the merged state).
    """

    def __init__(self, instance, programs: Sequence[ThreadProgram],
                 strategy: Strategy, max_steps: int = 20_000,
                 fingerprints: bool = False, fingerprint_after: int = 0,
                 merge_probe: Optional[Callable[[tuple], bool]] = None,
                 symmetry: bool = False):
        self.instance = instance
        self.strategy = strategy
        self.max_steps = max_steps
        self.fingerprints = fingerprints
        self.fingerprint_after = fingerprint_after
        self.merge_probe = merge_probe
        self.symmetry = symmetry
        self.threads = [_VirtualThread(tid, program)
                        for tid, program in enumerate(programs)]
        self.owner: Optional[_VirtualThread] = None
        self.result = RunResult(outcome="error")
        self._frame_cache: Dict[int, tuple] = {}
        self._observe = getattr(strategy, "observe_grant", None)
        self._observe_extent = getattr(strategy, "observe_extent", None)
        # Symmetry reduction canonicalizes state fingerprints modulo
        # permutation of threads running *identical programs*: swapping two
        # such threads' entire dynamic states is an automorphism of the
        # scheduler, so states that differ only by the transposition root
        # isomorphic subtrees and may share one fingerprint.
        self._sym_groups: List[List[int]] = []
        #: Bound only inside an observability session: state-fingerprint and
        #: frame-cache counters land under ``explore.scheduler.*``.  These
        #: counts are per-run deterministic but shard-dependent under DFS
        #: sharding, so they stay out of the exploration-result surface.
        self._metrics = _session_registry()
        #: Per-(tid, op_index) remaining-program keys, filled lazily —
        #: programs are fixed, so the suffix key never changes and the hot
        #: decision loop must not rebuild it per candidate per decision.
        self._suffix_keys: Dict[Tuple[int, int], tuple] = {}
        if symmetry:
            by_program: Dict[tuple, List[int]] = {}
            for thread in self.threads:
                key = tuple((name, tuple(args)) for name, args in thread.program)
                by_program.setdefault(key, []).append(thread.tid)
            self._sym_groups = list(by_program.values())

    # -- public entry point ---------------------------------------------------

    def run(self) -> RunResult:
        result = self.result
        try:
            for thread in self.threads:
                self._advance_to_acquire(thread)
            self._loop()
        except SchedulerError:
            raise
        except AbortRun as abort:  # the strategy pruned this run (sleep sets)
            result.outcome = abort.outcome
        except Exception as exc:  # a generated-code bug is a finding, not a crash
            result.outcome = "error"
            result.error = f"{type(exc).__name__}: {exc}"
        result.waiting = {thread.tid: thread.wait_key
                          for thread in self.threads if thread.status == "waiting"}
        return result

    # -- main loop ------------------------------------------------------------

    def _loop(self) -> None:
        result = self.result
        while True:
            if result.steps >= self.max_steps:
                result.outcome = "step-limit"
                return
            contenders = [t for t in self.threads if t.status == "acquiring"]
            if not contenders:
                if all(t.status == "done" for t in self.threads):
                    result.outcome = "completed"
                else:
                    result.outcome = "deadlock"
                return
            # Fingerprinting walks the dirty generator frames — only pay for
            # it when the grant actually branches (single contenders record no
            # decision and need no pre-decision state) and the decision lies
            # past the replayed prefix (the parent run already fingerprinted
            # the prefix states).
            fingerprint = None
            if (self.fingerprints and len(contenders) > 1
                    and len(result.decisions) >= self.fingerprint_after):
                fingerprint = self._fingerprint()
                if self.merge_probe is not None and self.merge_probe(fingerprint):
                    result.outcome = "merged"
                    return
            thread = contenders[self._choose(
                "grant", tuple(t.tid for t in contenders), fingerprint,
                tuple(t.program[t.op_index][0] for t in contenders),
                sym_classes=self._symmetry_classes(contenders),
                op_indices=tuple(t.op_index for t in contenders),
                resumes=tuple(t.resume_key for t in contenders))]
            self.owner = thread
            method_name, method_args = thread.program[thread.op_index]
            if self._observe is not None:
                self._observe(thread.tid, method_name, tuple(method_args))
            result.events.append(TraceEvent("grant", thread.tid, label=method_name,
                                            args=tuple(method_args)))
            self._run_holder(thread)

    def _run_holder(self, thread: _VirtualThread) -> None:
        """Advance *thread* (which holds the lock) until it waits or finishes.

        When the segment ends, the strategy's ``observe_extent`` hook (if
        any) learns whether it was a *pure wait entry* — the thread only
        evaluated a guard and went to sleep (exactly one event, the wait,
        was emitted) — which is what lets the context-sensitive sleep-set
        update keep more deferred transitions asleep.
        """
        result = self.result
        self._frame_cache.pop(thread.tid, None)
        segment_start = len(result.events)
        while True:
            result.steps += 1
            try:
                op = next(thread.frame)
            except StopIteration:
                if self.owner is thread:
                    raise SchedulerError(
                        f"thread {thread.tid} finished an operation while still "
                        f"holding the monitor lock (missing release yield)")
                thread.op_index += 1
                self._advance_to_acquire(thread)
                if self._observe_extent is not None:
                    self._observe_extent(None)
                return
            kind = op[0]
            if kind == "wait":
                key = op[1]
                self.owner = None
                thread.status = "waiting"
                thread.wait_key = key
                result.events.append(TraceEvent("wait", thread.tid, key=key))
                if self._observe_extent is not None:
                    pure = len(result.events) - segment_start == 1
                    self._observe_extent(key if pure else None)
                return
            if kind == "commit":
                result.commits.append((thread.tid, op[1]))
                result.events.append(TraceEvent("commit", thread.tid, label=op[1]))
            elif kind == "signal":
                self._wake(thread, op[1], broadcast=False)
            elif kind == "broadcast":
                self._wake(thread, op[1], broadcast=True)
            elif kind == "release":
                if self.owner is not thread:
                    raise SchedulerError(
                        f"thread {thread.tid} released a lock it does not hold")
                self.owner = None
                result.events.append(TraceEvent("release", thread.tid))
            elif kind == "acquire":
                # A mid-method re-acquire: contend again (not emitted by the
                # current generators, but the protocol allows it).  The
                # thread is no longer resuming from a wake: stale resume
                # metadata would make the refinement evaluate the wrong
                # guard.
                if self.owner is thread:
                    continue
                thread.status = "acquiring"
                thread.resume_key = None
                if self._observe_extent is not None:
                    self._observe_extent(None)
                return
            else:
                raise SchedulerError(f"unknown scheduler op {op!r}")

    # -- helpers --------------------------------------------------------------

    def _choose(self, kind: str, candidates: Tuple[int, ...],
                fingerprint: Optional[tuple],
                methods: Tuple[str, ...] = (),
                sym_classes: Tuple[int, ...] = (),
                op_indices: Tuple[int, ...] = (),
                resumes: Tuple[Optional[str], ...] = ()) -> int:
        """Delegate a choice to the strategy, recording it when it branches."""
        if len(candidates) == 1:
            return 0
        index = self.strategy.choose(kind, candidates)
        if not 0 <= index < len(candidates):
            raise SchedulerError(
                f"strategy chose index {index} among {len(candidates)} candidates")
        self.result.decisions.append(
            Decision(kind, candidates, index, fingerprint, methods,
                     event_index=len(self.result.events),
                     sym_classes=sym_classes, op_indices=op_indices,
                     resumes=resumes))
        return index

    def _symmetry_classes(self, threads) -> Tuple[int, ...]:
        """Partition decision candidates into interchangeability classes.

        Two candidates are symmetric when their suspended frames fingerprint
        identically (same method, arguments, locals and resume point) and
        their remaining programs agree — then swapping the two thread ids is
        an automorphism of the scheduler state and the subtrees rooted at
        either choice produce the same verdict kinds.  Returns () when
        symmetry reduction is off or fewer than two candidates compete.
        """
        if not self.symmetry or len(threads) < 2:
            return ()
        classes: List[int] = []
        keys: Dict[tuple, int] = {}
        for thread in threads:
            # The remaining program starts at the *current* op: frame
            # fingerprints pin locals and resume point but not the method's
            # identity, so the (name, args) of the in-flight op must be part
            # of the key too.
            key = (self._cached_frame_fingerprint(thread),
                   thread.wait_key,
                   self._suffix_key(thread))
            classes.append(keys.setdefault(key, len(keys)))
        return tuple(classes)

    def _suffix_key(self, thread: _VirtualThread) -> tuple:
        cache_key = (thread.tid, thread.op_index)
        suffix = self._suffix_keys.get(cache_key)
        if suffix is None:
            suffix = tuple((name, tuple(args))
                           for name, args in thread.program[thread.op_index:])
            self._suffix_keys[cache_key] = suffix
        return suffix

    def _cached_frame_fingerprint(self, thread: _VirtualThread) -> Optional[tuple]:
        if thread.frame is None:
            return None
        fingerprint = self._frame_cache.get(thread.tid)
        if fingerprint is None:
            fingerprint = _frame_fingerprint(thread.frame)
            self._frame_cache[thread.tid] = fingerprint
            if self._metrics is not None:
                self._metrics.inc("explore.scheduler.frame_walks")
        elif self._metrics is not None:
            self._metrics.inc("explore.scheduler.frame_cache_hits")
        return fingerprint

    def _wake(self, waker: _VirtualThread, key: str, broadcast: bool) -> None:
        sleepers = sorted(
            (t for t in self.threads if t.status == "waiting" and t.wait_key == key),
            key=lambda t: t.tid)
        kind = "broadcast" if broadcast else "signal"
        if not sleepers:
            self.result.events.append(TraceEvent(kind, waker.tid, key=key))
            return
        if broadcast:
            woken = sleepers
        else:
            chosen = self._choose("signal", tuple(t.tid for t in sleepers), None,
                                  sym_classes=self._symmetry_classes(sleepers))
            woken = [sleepers[chosen]]
        for sleeper in woken:
            sleeper.status = "acquiring"
            sleeper.wait_key = None
            sleeper.resume_key = key
        self.result.events.append(
            TraceEvent(kind, waker.tid, key=key,
                       woken=tuple(t.tid for t in woken)))

    def _advance_to_acquire(self, thread: _VirtualThread) -> None:
        """Start *thread*'s next operation, pausing at its first acquire."""
        self._frame_cache.pop(thread.tid, None)
        thread.resume_key = None
        while thread.op_index < len(thread.program):
            method_name, args = thread.program[thread.op_index]
            generator = getattr(self.instance, method_name)(*args)
            try:
                op = next(generator)
            except StopIteration:
                thread.op_index += 1
                continue
            if op != ("acquire",):
                raise SchedulerError(
                    f"{method_name} yielded {op!r} before acquiring the lock")
            thread.frame = generator
            thread.status = "acquiring"
            return
        thread.frame = None
        thread.status = "done"

    def _fingerprint(self) -> tuple:
        """A hashable snapshot of the global state at a grant point.

        Frame snapshots are the expensive part (``f_locals`` materialization
        per suspended generator); they are cached per thread and invalidated
        only when the thread's frame actually advances, so between two grant
        decisions just one thread's frame is re-walked.
        """
        if self._metrics is not None:
            self._metrics.inc("explore.scheduler.fingerprints")
        shared = tuple(sorted(
            (name, _freeze(value))
            for name, value in vars(self.instance).items()
            if not name.startswith("_") and name != "metrics"
        ))
        threads = []
        for t in self.threads:
            frame_fp = self._cached_frame_fingerprint(t)
            threads.append((t.status, t.wait_key, t.op_index, frame_fp))
        if self.symmetry:
            # Canonical order within each identical-program group: entries
            # are heterogeneous tuples (None vs str members), so sort by a
            # deterministic textual key rather than structurally.
            return (shared, tuple(
                tuple(sorted((threads[tid] for tid in group), key=repr))
                for group in self._sym_groups))
        return (shared, tuple(threads))


def run_schedule(instance, programs: Sequence[ThreadProgram], strategy: Strategy,
                 max_steps: int = 20_000, fingerprints: bool = False,
                 fingerprint_after: int = 0,
                 merge_probe: Optional[Callable[[tuple], bool]] = None,
                 symmetry: bool = False) -> RunResult:
    """Convenience wrapper: build a scheduler and run it to completion."""
    return CoopScheduler(instance, programs, strategy, max_steps,
                         fingerprints=fingerprints,
                         fingerprint_after=fingerprint_after,
                         merge_probe=merge_probe, symmetry=symmetry).run()
