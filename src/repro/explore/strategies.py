"""Scheduling strategies for the exploration engine.

A strategy answers one question: *given the sorted candidate list of a
scheduling decision, which index do we take?*  The scheduler records every
answered decision, so any strategy's run can be replayed exactly by wrapping
its recorded choice list in :class:`ScheduleStrategy`.

* :class:`FirstStrategy` — always take candidate 0 (the deterministic
  "round-robin-ish" baseline and the default extension under DFS);
* :class:`RandomStrategy` — a seeded uniform random walk;
* :class:`PCTStrategy` — probabilistic concurrency testing (Burckhardt et
  al., ASPLOS'10 style): random per-thread priorities, always run the
  highest-priority candidate, and demote the running thread at a few
  randomly pre-drawn change points.  Finds deep ordering bugs with far fewer
  schedules than uniform random walks;
* :class:`ScheduleStrategy` — replay a recorded (or delta-debugged) choice
  list, falling back to a base strategy once the list is exhausted;
* :class:`DporStrategy` — the partial-order-reduction extension strategy:
  replay a prefix, then extend with the first candidate *not in the sleep
  set*, maintaining the sleep set as segments execute (a sleeping thread's
  deferred action is removed once a dependent segment runs).

The POR machinery at the bottom of the module defines *when two scheduling
choices commute*: each monitor method gets a static :class:`MethodFootprint`
(shared fields read/written, condition variables waited-on/signalled) and two
enabled grant choices are independent exactly when neither footprint writes
the other's read/write set and their condition-variable signal sets don't
touch (sleepers are kept tid-sorted by the scheduler, so two threads merely
*waiting* on the same condition do not conflict).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Protocol, Sequence, Set, Tuple

from repro import obs


def _session_registry():
    """The active registry, or None outside an observability session.

    Strategies sit on the scheduler's hot path; resolving the registry once
    at construction (and only when a session is open) keeps the common
    untraced case at zero instrumentation cost.
    """
    return obs.registry() if obs.tracer().enabled else None


class AbortRun(Exception):
    """Raised by a strategy to cut a run short (sleep-set redundancy).

    The scheduler catches it and finishes the run with ``outcome`` — the run
    is bookkept by the engine (``por_skipped``) but never judged.
    """

    def __init__(self, outcome: str):
        super().__init__(outcome)
        self.outcome = outcome


class Strategy(Protocol):
    """The decision procedure the scheduler consults."""

    def choose(self, kind: str, candidates: Tuple[int, ...]) -> int:
        """Return an index into *candidates* (sorted thread ids)."""
        ...


class FirstStrategy:
    """Always pick the first (lowest thread id) candidate."""

    def choose(self, kind: str, candidates: Tuple[int, ...]) -> int:
        return 0


class RandomStrategy:
    """Seeded uniform random choices — the workhorse for large state spaces."""

    def __init__(self, seed: int):
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(self, kind: str, candidates: Tuple[int, ...]) -> int:
        return self._rng.randrange(len(candidates))


class PCTStrategy:
    """PCT-style priority scheduling with *depth - 1* priority change points.

    *expected_decisions* should approximate the decision count of one run —
    change points are drawn uniformly from ``[1, expected_decisions]``, so a
    wildly high estimate makes them land past the end of the run and the
    walk degenerates to a static priority order.  The engine passes an
    estimate derived from the workload size.
    """

    def __init__(self, seed: int, depth: int = 3, expected_decisions: int = 32):
        self.seed = seed
        self._rng = random.Random(seed)
        self._priorities: Dict[int, float] = {}
        self._decisions = 0
        self._metrics = _session_registry()
        # _decisions is incremented before the membership test, so the first
        # testable value is 1; draw from [1, expected] to keep every change
        # point reachable.
        self._change_points = frozenset(
            self._rng.randint(1, max(expected_decisions, 1))
            for _ in range(max(depth - 1, 0))
        )

    def choose(self, kind: str, candidates: Tuple[int, ...]) -> int:
        self._decisions += 1
        for tid in candidates:
            if tid not in self._priorities:
                self._priorities[tid] = self._rng.random()
        best = max(candidates, key=lambda tid: self._priorities[tid])
        if self._decisions in self._change_points:
            # Demote the thread that was about to run below everyone else.
            self._priorities[best] = self._rng.random() - 2.0
            best = max(candidates, key=lambda tid: self._priorities[tid])
            if self._metrics is not None:
                self._metrics.inc("explore.strategy.pct_demotions")
        return candidates.index(best)


class ScheduleStrategy:
    """Replay a recorded choice list; out-of-range entries are clamped.

    Clamping (rather than erroring) is what makes delta-debugging possible:
    a shortened schedule is still a valid schedule, it simply steers fewer
    decisions before handing over to the fallback strategy.
    """

    def __init__(self, schedule: Sequence[int], fallback: Optional[Strategy] = None):
        self.schedule = tuple(schedule)
        self.fallback = fallback or FirstStrategy()
        self._position = 0

    def choose(self, kind: str, candidates: Tuple[int, ...]) -> int:
        if self._position < len(self.schedule):
            choice = self.schedule[self._position]
            self._position += 1
            return min(max(choice, 0), len(candidates) - 1)
        return self.fallback.choose(kind, candidates)


# ---------------------------------------------------------------------------
# Partial-order reduction: footprints, independence, sleep sets
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MethodFootprint:
    """The shared-state/condition-variable footprint of one monitor method.

    ``reads``/``writes`` are shared field names (thread-local variables
    cannot conflict across threads); ``waits``/``signals`` are condition-
    variable tokens of the compiled class.  Footprints over-approximate the
    whole method so they stay valid for a thread resuming mid-method after a
    wakeup.
    """

    reads: FrozenSet[str]
    writes: FrozenSet[str]
    waits: FrozenSet[str]
    signals: FrozenSet[str]


def condition_vars_compatible(a: MethodFootprint, b: MethodFootprint,
                              allow_shared_signals: bool = False) -> bool:
    """Neither side signals a condition the other *waits* on.

    A signal aimed at a condition the other segment may sleep on is
    order-observable regardless of how the method bodies relate: running the
    signaller first loses the wake-up.  Two segments that merely *wait* on
    the same condition stay compatible (the scheduler keeps sleeper queues
    tid-sorted, so arrival order is unobservable).

    Two segments *signalling* the same condition are conservatively
    incompatible by default — whether a conditional notification fires
    depends on the state it is evaluated in, which depends on order.  The
    semantic layer may pass ``allow_shared_signals=True`` once the solver
    has proved every conditional notification predicate of each side is
    preserved by the other side's body: then both orders fire the same
    multiset of notifications against the same sleeper queues, and the
    per-signal wake decisions are branched by the explorer either way.
    """
    if a.signals & b.waits:
        return False
    if b.signals & a.waits:
        return False
    if not allow_shared_signals and (a.signals & b.signals):
        return False
    return True


def footprints_independent(a: MethodFootprint, b: MethodFootprint) -> bool:
    """Do two pending segments commute regardless of order (syntactically)?

    Writes may not touch the other side's reads or writes (the shared state
    would differ between orders), and the condition-variable sets must be
    compatible (see :func:`condition_vars_compatible`).
    """
    if a.writes & (b.reads | b.writes):
        return False
    if b.writes & (a.reads | a.writes):
        return False
    return condition_vars_compatible(a, b)


class IndependenceRelation:
    """Pairwise method independence: syntactic footprints plus, when the
    compile side provides one, the SMT-proven semantic matrix.

    Built from a ``{method name: MethodFootprint}`` mapping and an optional
    ``{(name, name): bool}`` *semantic* matrix (both attached to generated
    coop classes).  A pair is independent when its footprints are disjoint
    — or when the solver proved the bodies commute and preserve each
    other's guards, provided the condition-variable sets are still
    compatible (signal interactions are re-checked syntactically because
    notification mutants change them without changing bodies).  Methods
    without a footprint are conservatively dependent on everything.
    """

    def __init__(self, footprints: Optional[Dict[str, MethodFootprint]],
                 semantic: Optional[Dict[Tuple[str, str], bool]] = None):
        self.footprints = footprints or {}
        self.semantic = semantic or {}
        self._table: Dict[Tuple[str, str], bool] = {}
        self.semantic_pairs = 0
        names = sorted(self.footprints)
        for a in names:
            for b in names:
                fp_a, fp_b = self.footprints[a], self.footprints[b]
                independent = footprints_independent(fp_a, fp_b)
                if (not independent and self.semantic.get((a, b))
                        and condition_vars_compatible(
                            fp_a, fp_b, allow_shared_signals=True)):
                    independent = True
                    self.semantic_pairs += 1
                self._table[(a, b)] = independent

    def independent(self, method_a: str, method_b: str) -> bool:
        return self._table.get((method_a, method_b), False)

    def segment_independent(self, method_a: str,
                            refined_a: Optional[MethodFootprint],
                            method_b: str,
                            refined_b: Optional[MethodFootprint]) -> bool:
        """Independence of two *segments*, with optional context refinement.

        ``refined_x`` replaces method ``x``'s whole-method footprint with the
        footprint of the segment it is actually about to run (the engine
        passes the wait-entry footprint when the thread's guard provably
        fails in the decision state).  Refinement only ever adds
        independence: the method-level verdict is consulted first.
        """
        if self.independent(method_a, method_b):
            return True
        if refined_a is None and refined_b is None:
            return False
        fp_a = refined_a if refined_a is not None else self.footprints.get(method_a)
        fp_b = refined_b if refined_b is not None else self.footprints.get(method_b)
        if fp_a is None or fp_b is None:
            return False
        return footprints_independent(fp_a, fp_b)

    @property
    def trivial(self) -> bool:
        """True when no pair commutes (POR degenerates to plain pruning)."""
        return not any(self._table.values())


#: A sleep-set entry: a deferred (thread id, pending method, call args,
#: wait key) transition.  ``args`` lets the value-sensitive independence
#: layer keep a deferred transition asleep past segments its *instantiated*
#: call commutes with even though the methods conflict symbolically;
#: ``wait_key`` is non-None when the deferred transition was proven (from
#: the decision state) to be a pure wait entry on that condition, shrinking
#: its footprint to the guard reads plus the wait.
SleepEntry = Tuple[int, str, tuple, Optional[str]]


class DporStrategy:
    """Prefix replay + sleep-set-aware extension for the DPOR DFS.

    Replays *prefix* verbatim, then extends every fresh grant decision with
    the first candidate whose thread is not in the sleep set.  While the
    fresh suffix executes, the sleep set shrinks: a deferred transition is
    woken (removed) as soon as a *dependent* segment runs, exactly the
    classic sleep-set update.  If every enabled candidate is asleep — or the
    scheduler grants a sleeping thread as sole contender — the whole subtree
    is provably redundant and the run aborts with outcome ``sleep-set``.

    The engine reads ``fresh_sleeps`` afterwards: the sleep set in force at
    each recorded fresh decision, which it needs to seed the sleep sets of
    the sibling prefixes it pushes.
    """

    def __init__(self, prefix: Sequence[int], sleep: FrozenSet[SleepEntry],
                 independence: IndependenceRelation, checker=None):
        self.prefix = tuple(prefix)
        self.sleep: Set[SleepEntry] = set(sleep)
        self.independence = independence
        #: Optional context-sensitive dependence test built by the engine:
        #: ``checker(entry, method, args, extent_key) -> bool`` returns True
        #: when the executed segment (a pure wait entry on *extent_key* when
        #: that is non-None) is independent of the sleeping entry.  Falls
        #: back to the method-level relation when absent.
        self.checker = checker
        self._position = 0
        #: The just-granted segment awaiting its extent: (method, args).
        #: Sleep-set wake-ups are applied *after* the segment runs, when its
        #: actual extent (pure wait entry or full method) is known — the
        #: context-sensitive sleep-set update.
        self._pending_segment: Optional[Tuple[str, tuple]] = None
        #: Sleep set snapshot per recorded decision index >= len(prefix).
        self.fresh_sleeps: List[FrozenSet[SleepEntry]] = []
        self._metrics = _session_registry()

    def choose(self, kind: str, candidates: Tuple[int, ...]) -> int:
        self._flush_segment()
        if self._position < len(self.prefix):
            choice = self.prefix[self._position]
            self._position += 1
            return min(max(choice, 0), len(candidates) - 1)
        self._position += 1
        self.fresh_sleeps.append(frozenset(self.sleep))
        if kind != "grant":
            return 0
        asleep = {entry[0] for entry in self.sleep}
        for index, tid in enumerate(candidates):
            if tid not in asleep:
                return index
        raise AbortRun("sleep-set")

    def observe_grant(self, tid: int, method: str, args: tuple = ()) -> None:
        """A segment by *tid*/*method* is about to run."""
        self._flush_segment()
        if self._position < len(self.prefix):
            # Replayed prefix segments were already reflected in the sleep
            # set this strategy was seeded with.
            return
        if any(entry[0] == tid for entry in self.sleep):
            # The sole contender is asleep: this continuation re-explores a
            # subtree some sibling already covered.
            raise AbortRun("sleep-set")
        self._pending_segment = (method, tuple(args))

    def observe_extent(self, wait_key: Optional[str]) -> None:
        """The granted segment finished; *wait_key* is non-None when it was a
        pure wait entry (guard evaluation + sleep, nothing else).  Apply the
        delayed sleep-set wake-up with the segment's actual extent."""
        self._flush_segment(wait_key)

    def _flush_segment(self, wait_key: Optional[str] = None) -> None:
        pending = self._pending_segment
        self._pending_segment = None
        if pending is None:
            return
        method, args = pending
        independent = self.independence.independent
        checker = self.checker
        kept = {
            entry for entry in self.sleep
            if independent(entry[1], method)
            or (checker is not None and checker(entry, method, args, wait_key))
        }
        if self._metrics is not None and len(kept) != len(self.sleep):
            self._metrics.inc("explore.strategy.sleep_wakeups",
                              len(self.sleep) - len(kept))
        self.sleep = kept


def make_strategy(name: str, seed: int, depth: int = 3,
                  expected_decisions: int = 32) -> Strategy:
    """Build a fresh strategy instance by CLI name."""
    if name == "first":
        return FirstStrategy()
    if name == "random":
        return RandomStrategy(seed)
    if name == "pct":
        return PCTStrategy(seed, depth=depth, expected_decisions=expected_decisions)
    raise ValueError(f"unknown strategy {name!r} (expected first/random/pct)")
