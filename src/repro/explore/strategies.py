"""Scheduling strategies for the exploration engine.

A strategy answers one question: *given the sorted candidate list of a
scheduling decision, which index do we take?*  The scheduler records every
answered decision, so any strategy's run can be replayed exactly by wrapping
its recorded choice list in :class:`ScheduleStrategy`.

* :class:`FirstStrategy` — always take candidate 0 (the deterministic
  "round-robin-ish" baseline and the default extension under DFS);
* :class:`RandomStrategy` — a seeded uniform random walk;
* :class:`PCTStrategy` — probabilistic concurrency testing (Burckhardt et
  al., ASPLOS'10 style): random per-thread priorities, always run the
  highest-priority candidate, and demote the running thread at a few
  randomly pre-drawn change points.  Finds deep ordering bugs with far fewer
  schedules than uniform random walks;
* :class:`ScheduleStrategy` — replay a recorded (or delta-debugged) choice
  list, falling back to a base strategy once the list is exhausted.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Protocol, Sequence, Tuple


class Strategy(Protocol):
    """The decision procedure the scheduler consults."""

    def choose(self, kind: str, candidates: Tuple[int, ...]) -> int:
        """Return an index into *candidates* (sorted thread ids)."""
        ...


class FirstStrategy:
    """Always pick the first (lowest thread id) candidate."""

    def choose(self, kind: str, candidates: Tuple[int, ...]) -> int:
        return 0


class RandomStrategy:
    """Seeded uniform random choices — the workhorse for large state spaces."""

    def __init__(self, seed: int):
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(self, kind: str, candidates: Tuple[int, ...]) -> int:
        return self._rng.randrange(len(candidates))


class PCTStrategy:
    """PCT-style priority scheduling with *depth - 1* priority change points.

    *expected_decisions* should approximate the decision count of one run —
    change points are drawn uniformly from ``[1, expected_decisions]``, so a
    wildly high estimate makes them land past the end of the run and the
    walk degenerates to a static priority order.  The engine passes an
    estimate derived from the workload size.
    """

    def __init__(self, seed: int, depth: int = 3, expected_decisions: int = 32):
        self.seed = seed
        self._rng = random.Random(seed)
        self._priorities: Dict[int, float] = {}
        self._decisions = 0
        # _decisions is incremented before the membership test, so the first
        # testable value is 1; draw from [1, expected] to keep every change
        # point reachable.
        self._change_points = frozenset(
            self._rng.randint(1, max(expected_decisions, 1))
            for _ in range(max(depth - 1, 0))
        )

    def choose(self, kind: str, candidates: Tuple[int, ...]) -> int:
        self._decisions += 1
        for tid in candidates:
            if tid not in self._priorities:
                self._priorities[tid] = self._rng.random()
        best = max(candidates, key=lambda tid: self._priorities[tid])
        if self._decisions in self._change_points:
            # Demote the thread that was about to run below everyone else.
            self._priorities[best] = self._rng.random() - 2.0
            best = max(candidates, key=lambda tid: self._priorities[tid])
        return candidates.index(best)


class ScheduleStrategy:
    """Replay a recorded choice list; out-of-range entries are clamped.

    Clamping (rather than erroring) is what makes delta-debugging possible:
    a shortened schedule is still a valid schedule, it simply steers fewer
    decisions before handing over to the fallback strategy.
    """

    def __init__(self, schedule: Sequence[int], fallback: Optional[Strategy] = None):
        self.schedule = tuple(schedule)
        self.fallback = fallback or FirstStrategy()
        self._position = 0

    def choose(self, kind: str, candidates: Tuple[int, ...]) -> int:
        if self._position < len(self.schedule):
            choice = self.schedule[self._position]
            self._position += 1
            return min(max(choice, 0), len(candidates) - 1)
        return self.fallback.choose(kind, candidates)


def make_strategy(name: str, seed: int, depth: int = 3,
                  expected_decisions: int = 32) -> Strategy:
    """Build a fresh strategy instance by CLI name."""
    if name == "first":
        return FirstStrategy()
    if name == "random":
        return RandomStrategy(seed)
    if name == "pct":
        return PCTStrategy(seed, depth=depth, expected_decisions=expected_decisions)
    raise ValueError(f"unknown strategy {name!r} (expected first/random/pct)")
