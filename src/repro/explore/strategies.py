"""Scheduling strategies for the exploration engine.

A strategy answers one question: *given the sorted candidate list of a
scheduling decision, which index do we take?*  The scheduler records every
answered decision, so any strategy's run can be replayed exactly by wrapping
its recorded choice list in :class:`ScheduleStrategy`.

* :class:`FirstStrategy` — always take candidate 0 (the deterministic
  "round-robin-ish" baseline and the default extension under DFS);
* :class:`RandomStrategy` — a seeded uniform random walk;
* :class:`PCTStrategy` — probabilistic concurrency testing (Burckhardt et
  al., ASPLOS'10 style): random per-thread priorities, always run the
  highest-priority candidate, and demote the running thread at a few
  randomly pre-drawn change points.  Finds deep ordering bugs with far fewer
  schedules than uniform random walks;
* :class:`ScheduleStrategy` — replay a recorded (or delta-debugged) choice
  list, falling back to a base strategy once the list is exhausted;
* :class:`DporStrategy` — the partial-order-reduction extension strategy:
  replay a prefix, then extend with the first candidate *not in the sleep
  set*, maintaining the sleep set as segments execute (a sleeping thread's
  deferred action is removed once a dependent segment runs).

The POR machinery at the bottom of the module defines *when two scheduling
choices commute*: each monitor method gets a static :class:`MethodFootprint`
(shared fields read/written, condition variables waited-on/signalled) and two
enabled grant choices are independent exactly when neither footprint writes
the other's read/write set and their condition-variable signal sets don't
touch (sleepers are kept tid-sorted by the scheduler, so two threads merely
*waiting* on the same condition do not conflict).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Protocol, Sequence, Set, Tuple


class AbortRun(Exception):
    """Raised by a strategy to cut a run short (sleep-set redundancy).

    The scheduler catches it and finishes the run with ``outcome`` — the run
    is bookkept by the engine (``por_skipped``) but never judged.
    """

    def __init__(self, outcome: str):
        super().__init__(outcome)
        self.outcome = outcome


class Strategy(Protocol):
    """The decision procedure the scheduler consults."""

    def choose(self, kind: str, candidates: Tuple[int, ...]) -> int:
        """Return an index into *candidates* (sorted thread ids)."""
        ...


class FirstStrategy:
    """Always pick the first (lowest thread id) candidate."""

    def choose(self, kind: str, candidates: Tuple[int, ...]) -> int:
        return 0


class RandomStrategy:
    """Seeded uniform random choices — the workhorse for large state spaces."""

    def __init__(self, seed: int):
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(self, kind: str, candidates: Tuple[int, ...]) -> int:
        return self._rng.randrange(len(candidates))


class PCTStrategy:
    """PCT-style priority scheduling with *depth - 1* priority change points.

    *expected_decisions* should approximate the decision count of one run —
    change points are drawn uniformly from ``[1, expected_decisions]``, so a
    wildly high estimate makes them land past the end of the run and the
    walk degenerates to a static priority order.  The engine passes an
    estimate derived from the workload size.
    """

    def __init__(self, seed: int, depth: int = 3, expected_decisions: int = 32):
        self.seed = seed
        self._rng = random.Random(seed)
        self._priorities: Dict[int, float] = {}
        self._decisions = 0
        # _decisions is incremented before the membership test, so the first
        # testable value is 1; draw from [1, expected] to keep every change
        # point reachable.
        self._change_points = frozenset(
            self._rng.randint(1, max(expected_decisions, 1))
            for _ in range(max(depth - 1, 0))
        )

    def choose(self, kind: str, candidates: Tuple[int, ...]) -> int:
        self._decisions += 1
        for tid in candidates:
            if tid not in self._priorities:
                self._priorities[tid] = self._rng.random()
        best = max(candidates, key=lambda tid: self._priorities[tid])
        if self._decisions in self._change_points:
            # Demote the thread that was about to run below everyone else.
            self._priorities[best] = self._rng.random() - 2.0
            best = max(candidates, key=lambda tid: self._priorities[tid])
        return candidates.index(best)


class ScheduleStrategy:
    """Replay a recorded choice list; out-of-range entries are clamped.

    Clamping (rather than erroring) is what makes delta-debugging possible:
    a shortened schedule is still a valid schedule, it simply steers fewer
    decisions before handing over to the fallback strategy.
    """

    def __init__(self, schedule: Sequence[int], fallback: Optional[Strategy] = None):
        self.schedule = tuple(schedule)
        self.fallback = fallback or FirstStrategy()
        self._position = 0

    def choose(self, kind: str, candidates: Tuple[int, ...]) -> int:
        if self._position < len(self.schedule):
            choice = self.schedule[self._position]
            self._position += 1
            return min(max(choice, 0), len(candidates) - 1)
        return self.fallback.choose(kind, candidates)


# ---------------------------------------------------------------------------
# Partial-order reduction: footprints, independence, sleep sets
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MethodFootprint:
    """The shared-state/condition-variable footprint of one monitor method.

    ``reads``/``writes`` are shared field names (thread-local variables
    cannot conflict across threads); ``waits``/``signals`` are condition-
    variable tokens of the compiled class.  Footprints over-approximate the
    whole method so they stay valid for a thread resuming mid-method after a
    wakeup.
    """

    reads: FrozenSet[str]
    writes: FrozenSet[str]
    waits: FrozenSet[str]
    signals: FrozenSet[str]


def footprints_independent(a: MethodFootprint, b: MethodFootprint) -> bool:
    """Do two pending segments commute regardless of order?

    Writes may not touch the other side's reads or writes (the shared state
    would differ between orders), and neither side may signal a condition the
    other waits on or signals (a signal's woken-set depends on who is already
    asleep / which signal fires first).  Two segments that merely *wait* on
    the same condition stay independent: the scheduler keeps sleeper queues
    tid-sorted, so arrival order is unobservable.
    """
    if a.writes & (b.reads | b.writes):
        return False
    if b.writes & (a.reads | a.writes):
        return False
    if a.signals & (b.waits | b.signals):
        return False
    if b.signals & (a.waits | a.signals):
        return False
    return True


class IndependenceRelation:
    """Pairwise method independence, precomputed from per-method footprints.

    Built from a ``{method name: MethodFootprint}`` mapping (attached to
    generated coop classes by the engine).  Methods without a footprint are
    conservatively dependent on everything.
    """

    def __init__(self, footprints: Optional[Dict[str, MethodFootprint]]):
        self.footprints = footprints or {}
        self._table: Dict[Tuple[str, str], bool] = {}
        names = sorted(self.footprints)
        for a in names:
            for b in names:
                self._table[(a, b)] = footprints_independent(
                    self.footprints[a], self.footprints[b])

    def independent(self, method_a: str, method_b: str) -> bool:
        return self._table.get((method_a, method_b), False)

    @property
    def trivial(self) -> bool:
        """True when no pair commutes (POR degenerates to plain pruning)."""
        return not any(self._table.values())


#: A sleep-set entry: a deferred (thread id, pending method) transition.
SleepEntry = Tuple[int, str]


class DporStrategy:
    """Prefix replay + sleep-set-aware extension for the DPOR DFS.

    Replays *prefix* verbatim, then extends every fresh grant decision with
    the first candidate whose thread is not in the sleep set.  While the
    fresh suffix executes, the sleep set shrinks: a deferred transition is
    woken (removed) as soon as a *dependent* segment runs, exactly the
    classic sleep-set update.  If every enabled candidate is asleep — or the
    scheduler grants a sleeping thread as sole contender — the whole subtree
    is provably redundant and the run aborts with outcome ``sleep-set``.

    The engine reads ``fresh_sleeps`` afterwards: the sleep set in force at
    each recorded fresh decision, which it needs to seed the sleep sets of
    the sibling prefixes it pushes.
    """

    def __init__(self, prefix: Sequence[int], sleep: FrozenSet[SleepEntry],
                 independence: IndependenceRelation):
        self.prefix = tuple(prefix)
        self.sleep: Set[SleepEntry] = set(sleep)
        self.independence = independence
        self._position = 0
        #: Sleep set snapshot per recorded decision index >= len(prefix).
        self.fresh_sleeps: List[FrozenSet[SleepEntry]] = []

    def choose(self, kind: str, candidates: Tuple[int, ...]) -> int:
        if self._position < len(self.prefix):
            choice = self.prefix[self._position]
            self._position += 1
            return min(max(choice, 0), len(candidates) - 1)
        self._position += 1
        self.fresh_sleeps.append(frozenset(self.sleep))
        if kind != "grant":
            return 0
        asleep = {tid for tid, _method in self.sleep}
        for index, tid in enumerate(candidates):
            if tid not in asleep:
                return index
        raise AbortRun("sleep-set")

    def observe_grant(self, tid: int, method: str) -> None:
        """A segment by *tid*/*method* is about to run: update the sleep set."""
        if self._position < len(self.prefix):
            # Replayed prefix segments were already reflected in the sleep
            # set this strategy was seeded with.
            return
        if any(entry_tid == tid for entry_tid, _m in self.sleep):
            # The sole contender is asleep: this continuation re-explores a
            # subtree some sibling already covered.
            raise AbortRun("sleep-set")
        independent = self.independence.independent
        self.sleep = {entry for entry in self.sleep
                      if independent(entry[1], method)}


def make_strategy(name: str, seed: int, depth: int = 3,
                  expected_decisions: int = 32) -> Strategy:
    """Build a fresh strategy instance by CLI name."""
    if name == "first":
        return FirstStrategy()
    if name == "random":
        return RandomStrategy(seed)
    if name == "pct":
        return PCTStrategy(seed, depth=depth, expected_decisions=expected_decisions)
    raise ValueError(f"unknown strategy {name!r} (expected first/random/pct)")
