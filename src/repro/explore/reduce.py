"""Counterexample reduction: delta-debugging failing schedules.

A failing schedule is a list of choice indices.  Any sub-list is still a
valid schedule (the replay strategy clamps out-of-range indices and falls
back to first-choice once the list runs out), so the classic ddmin algorithm
(Zeller & Hildebrandt, TSE'02) applies directly: find a 1-minimal
subsequence that still reproduces the failure.  Minimal schedules turn a
10⁴-step random walk into a handful of decisive scheduling choices, which the
trace renderer then prints as a short readable interleaving.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple


def ddmin(failing: Sequence[int],
          reproduces: Callable[[Tuple[int, ...]], bool],
          max_probes: int = 2000) -> Tuple[int, ...]:
    """Minimize *failing* to a 1-minimal subsequence under *reproduces*.

    ``reproduces(schedule)`` must return True when the candidate schedule
    still triggers the original failure.  The input is assumed to reproduce;
    if it does not, it is returned unchanged.  *max_probes* bounds the number
    of candidate executions (reduction is best-effort under the bound).
    """
    schedule: List[int] = list(failing)
    if not reproduces(tuple(schedule)):
        return tuple(schedule)
    probes = 0
    granularity = 2
    while len(schedule) >= 2:
        chunk = max(len(schedule) // granularity, 1)
        subsets = [schedule[start:start + chunk]
                   for start in range(0, len(schedule), chunk)]
        reduced = False
        # Try each subset alone, then each complement.
        for index in range(len(subsets)):
            if probes >= max_probes:
                return tuple(schedule)
            candidate = subsets[index]
            probes += 1
            if len(candidate) < len(schedule) and reproduces(tuple(candidate)):
                schedule = list(candidate)
                granularity = 2
                reduced = True
                break
        if not reduced:
            for index in range(len(subsets)):
                if probes >= max_probes:
                    return tuple(schedule)
                complement = [item for j, subset in enumerate(subsets)
                              for item in subset if j != index]
                probes += 1
                if len(complement) < len(schedule) and reproduces(tuple(complement)):
                    schedule = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if granularity >= len(schedule):
                break
            granularity = min(granularity * 2, len(schedule))
    # Final single-element polishing pass (1-minimality for small lists).
    index = 0
    while index < len(schedule) and probes < max_probes:
        candidate = schedule[:index] + schedule[index + 1:]
        probes += 1
        if reproduces(tuple(candidate)):
            schedule = candidate
        else:
            index += 1
    return tuple(schedule)
