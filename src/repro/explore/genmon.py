"""Seeded random monitor generation: fuzzing the whole pipeline end to end.

``random_monitor`` composes a DSL monitor from a few *progress-friendly*
synchronization families (bounded counters, toggled flags, ticket locks with
thread-local guards, gates, conditional-body counters) with randomized caps,
field counts and body shapes, plus a balanced workload whose roles keep the
monitor live.  ``fuzz_pipeline`` then pushes each generated source through
the full stack — parser, invariant inference, signal placement,
instrumentation, coop code generation — and hands the result to the
exploration engine, so a single seed exercises every layer against the
differential oracle.

Families are chosen so that blocked states are either reachable-and-released
(the interesting case for signal placement) or benign stalls the oracle
already classifies; anything else a random schedule digs up is a real
finding.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.benchmarks_lib.spec import ThreadOps, Workload
from repro.explore.engine import ExplorationResult, explore_explicit

#: One family role: (method calls for a producer-ish thread, for a consumer-ish one).
_Role = Callable[[int, int], ThreadOps]


@dataclass(frozen=True)
class GeneratedMonitor:
    """A randomly generated monitor plus its balanced workload."""

    name: str
    source: str
    families: Tuple[str, ...]
    roles: Tuple[_Role, ...] = field(compare=False, repr=False, default=())

    def workload(self, threads: int, ops: int) -> Workload:
        """A balanced workload: every role gets the same number of threads.

        Balancing (plus idle leftovers) keeps complementary roles — producer
        and consumer, raise and lower — in matching op counts, so schedules
        can run to completion; when *threads* < number of roles the workload
        degrades to benign stalls, which the oracle classifies as such.
        """
        per_role = threads // len(self.roles)
        if per_role == 0:
            return [self.roles[index](index, ops) for index in range(threads)]
        workload: Workload = []
        for index in range(threads):
            role = index // per_role
            if role < len(self.roles):
                workload.append(self.roles[role](index, ops))
            else:
                workload.append([])
        return workload


# ---------------------------------------------------------------------------
# Families
# ---------------------------------------------------------------------------


def _counter_family(rng: random.Random, tag: int):
    cap = rng.randint(1, 4)
    fname = f"c{tag}"
    lines = [
        f"    unsigned int {fname} = 0;",
        f"    atomic void put{tag}() {{ waituntil ({fname} < {cap}) {{ {fname}++; }} }}",
        f"    atomic void take{tag}() {{ waituntil ({fname} > 0) {{ {fname}--; }} }}",
    ]
    roles = (lambda tid, ops: [(f"put{tag}", ())] * ops,
             lambda tid, ops: [(f"take{tag}", ())] * ops)
    return f"counter(cap={cap})", lines, roles


def _flag_family(rng: random.Random, tag: int):
    fname = f"flag{tag}"
    lines = [
        f"    boolean {fname} = false;",
        f"    atomic void raise{tag}() {{ waituntil (!{fname}) {{ {fname} = true; }} }}",
        f"    atomic void lower{tag}() {{ waituntil ({fname}) {{ {fname} = false; }} }}",
    ]
    roles = (lambda tid, ops: [(f"raise{tag}", ())] * ops,
             lambda tid, ops: [(f"lower{tag}", ())] * ops)
    return "flag", lines, roles


def _ticket_family(rng: random.Random, tag: int):
    # Thread-local guard (serving == t) + a two-CCR method: exercises the §6
    # waiter-snapshot tables and cross-CCR locals through the whole pipeline.
    lines = [
        f"    int next{tag} = 0;",
        f"    int serving{tag} = 0;",
        f"    atomic void ticket{tag}() {{",
        f"        int t = next{tag};",
        f"        next{tag}++;",
        f"        waituntil (serving{tag} == t) {{ serving{tag}++; }}",
        f"    }}",
    ]
    roles = (lambda tid, ops: [(f"ticket{tag}", ())] * ops,)
    return "ticket", lines, roles


def _gate_family(rng: random.Random, tag: int):
    lines = [
        f"    boolean open{tag} = false;",
        f"    int entered{tag} = 0;",
        f"    atomic void open{tag}_() {{ open{tag} = true; }}",
        f"    atomic void enter{tag}() {{ waituntil (open{tag}) {{ entered{tag}++; }} }}",
    ]
    roles = (lambda tid, ops: [(f"open{tag}_", ())] + [(f"enter{tag}", ())] * ops,
             lambda tid, ops: [(f"enter{tag}", ())] * ops)
    return "gate", lines, roles


def _branchy_family(rng: random.Random, tag: int):
    # Conditional body over an auxiliary unguarded field: exercises If
    # statements through wp/placement/codegen.
    cap = rng.randint(2, 4)
    pivot = rng.randint(1, cap - 1)
    lines = [
        f"    unsigned int b{tag} = 0;",
        f"    int aux{tag} = 0;",
        f"    atomic void push{tag}() {{",
        f"        waituntil (b{tag} < {cap}) {{",
        f"            b{tag}++;",
        f"            if (b{tag} > {pivot}) {{ aux{tag} = aux{tag} + 1; }} else {{ aux{tag} = 0; }}",
        f"        }}",
        f"    }}",
        f"    atomic void pop{tag}() {{ waituntil (b{tag} > 0) {{ b{tag}--; }} }}",
    ]
    roles = (lambda tid, ops: [(f"push{tag}", ())] * ops,
             lambda tid, ops: [(f"pop{tag}", ())] * ops)
    return f"branchy(cap={cap},pivot={pivot})", lines, roles


_FAMILIES = (_counter_family, _flag_family, _ticket_family, _gate_family,
             _branchy_family)


# ---------------------------------------------------------------------------
# Generation and fuzzing
# ---------------------------------------------------------------------------


def random_monitor(seed: int, index: int = 0) -> GeneratedMonitor:
    """Generate monitor *index* of the corpus seeded by *seed*."""
    rng = random.Random(f"{seed}:{index}")
    count = rng.randint(1, 3)
    picks = [rng.choice(_FAMILIES) for _ in range(count)]
    names: List[str] = []
    body_lines: List[str] = []
    roles: List[_Role] = []
    for tag, family in enumerate(picks):
        name, lines, family_roles = family(rng, tag)
        names.append(name)
        body_lines.extend(lines)
        roles.extend(family_roles)
    # Negative seeds are legal CLI input; '-' is not a legal identifier char.
    monitor_name = f"Fuzz{seed}x{index}".replace("-", "n")
    source = "\n".join([f"monitor {monitor_name} {{", *body_lines, "}"])
    return GeneratedMonitor(monitor_name, source, tuple(names), tuple(roles))


@dataclass
class FuzzReport:
    """Outcome of a fuzzing campaign over a generated corpus."""

    seed: int
    monitors: int = 0
    compile_errors: List[Tuple[str, str]] = field(default_factory=list)
    results: List[ExplorationResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.compile_errors and all(r.ok for r in self.results)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "monitors": self.monitors,
            "ok": self.ok,
            "compile_errors": [{"monitor": name, "error": error}
                               for name, error in self.compile_errors],
            "results": [result.to_dict() for result in self.results],
        }


def fuzz_pipeline(count: int = 10, seed: int = 0, threads: int = 3, ops: int = 2,
                  strategy: str = "random", budget: int = 100,
                  max_steps: int = 20_000, pipeline=None,
                  stop_on_failure: bool = True) -> FuzzReport:
    """Compile and explore *count* random monitors; collect every finding."""
    from repro.placement.pipeline import ExpressoPipeline

    pipeline = pipeline if pipeline is not None else ExpressoPipeline()
    report = FuzzReport(seed=seed)
    for index in range(count):
        generated = random_monitor(seed, index)
        report.monitors += 1
        try:
            compiled = pipeline.compile(generated.source)
        except Exception as exc:
            report.compile_errors.append(
                (generated.name, f"{type(exc).__name__}: {exc}"))
            if stop_on_failure:
                break
            continue
        result = explore_explicit(
            compiled.explicit, compiled.monitor,
            generated.workload(threads, ops),
            strategy=strategy, budget=budget, seed=seed + index,
            max_steps=max_steps, stop_on_failure=stop_on_failure,
            benchmark=generated.name, discipline="expresso")
        report.results.append(result)
        if not result.ok and stop_on_failure:
            break
    return report
