"""Backward-compat shim: the monitor generators moved to :mod:`repro.fuzz`.

The seeded generators (and the blind generate-and-explore baseline they
feed) now live in :mod:`repro.fuzz.generate`, where the coverage-guided
campaign (:mod:`repro.fuzz.campaign`) bootstraps its corpus from them.  This
module re-exports the public names so existing imports keep working.
"""

from repro.fuzz.generate import (  # noqa: F401
    FuzzReport,
    GeneratedMonitor,
    balanced_workload,
    derive_seed,
    expand_role,
    fuzz_pipeline,
    random_monitor,
)

__all__ = [
    "FuzzReport", "GeneratedMonitor", "balanced_workload", "derive_seed",
    "expand_role", "fuzz_pipeline", "random_monitor",
]
