"""Statement translation to Python source lines (shared by the generators)."""

from __future__ import annotations

from typing import Callable, FrozenSet, List

from repro.codegen.pyexpr import python_identifier, to_python
from repro.lang.ast import (
    ArrayAssign,
    Assign,
    If,
    LocalDecl,
    Seq,
    Skip,
    Stmt,
    While,
)


def stmt_to_python(stmt: Stmt, field_names: FrozenSet[str], indent: int,
                   receiver: str = "self") -> List[str]:
    """Render *stmt* as a list of indented Python source lines."""
    pad = "    " * indent

    def expr(e) -> str:
        return to_python(e, field_names, receiver)

    def target(name: str) -> str:
        mangled = python_identifier(name)
        return f"{receiver}.{mangled}" if name in field_names else mangled

    if isinstance(stmt, Skip):
        return [f"{pad}pass"]
    if isinstance(stmt, Assign):
        return [f"{pad}{target(stmt.target)} = {expr(stmt.value)}"]
    if isinstance(stmt, LocalDecl):
        return [f"{pad}{python_identifier(stmt.name)} = {expr(stmt.init)}"]
    if isinstance(stmt, ArrayAssign):
        raise ValueError("array assignments must be scalarized before code generation")
    if isinstance(stmt, Seq):
        lines: List[str] = []
        for child in stmt.stmts:
            lines.extend(stmt_to_python(child, field_names, indent, receiver))
        return lines or [f"{pad}pass"]
    if isinstance(stmt, If):
        lines = [f"{pad}if {expr(stmt.cond)}:"]
        lines.extend(stmt_to_python(stmt.then, field_names, indent + 1, receiver))
        if not isinstance(stmt.orelse, Skip):
            lines.append(f"{pad}else:")
            lines.extend(stmt_to_python(stmt.orelse, field_names, indent + 1, receiver))
        return lines
    if isinstance(stmt, While):
        lines = [f"{pad}while {expr(stmt.cond)}:"]
        lines.extend(stmt_to_python(stmt.body, field_names, indent + 1, receiver))
        return lines
    raise TypeError(f"cannot translate statement {type(stmt).__name__}")
