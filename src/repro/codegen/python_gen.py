"""Executable Python code generation for the three signalling disciplines.

Given an :class:`~repro.placement.target.ExplicitMonitor` (for the explicit
discipline) or a plain :class:`~repro.lang.ast.Monitor` (for the automatic
ones), the generators emit a self-contained Python class whose methods take
the monitor's parameters and perform real ``threading`` synchronization:

* :func:`generate_python_explicit` — condition variable per waited-on guard,
  statically placed (conditional/unconditional, signal/broadcast)
  notifications; guards with thread-local variables use the §6 waiter-snapshot
  table (:class:`repro.runtime.explicit_support.GuardWaiters`);
* :func:`generate_python_implicit` — the naive broadcast-everything runtime;
* :func:`generate_python_autosynch` — the AutoSynch-style predicate-tagging
  runtime.

Every generated class exposes ``metrics`` (a
:class:`~repro.runtime.explicit_support.MonitorMetrics`) so the harness can
report wake-ups, spurious wake-ups and run-time predicate evaluations in
addition to wall-clock time.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.codegen.pyexpr import python_identifier, to_python
from repro.codegen.pystmt import stmt_to_python
from repro.logic.free_vars import free_vars
from repro.logic.terms import BOOL, Expr, INT
from repro.lang.ast import Monitor, Skip
from repro.placement.target import ExplicitCCR, ExplicitMonitor, Notification


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _field_names(fields) -> FrozenSet[str]:
    return frozenset(decl.name for decl in fields)


def _field_init_lines(fields, field_names: FrozenSet[str], indent: int) -> List[str]:
    pad = "    " * indent
    lines = []
    for decl in fields:
        value = to_python(decl.init, field_names)
        lines.append(f"{pad}self.{python_identifier(decl.name)} = {value}")
    return lines


def _guard_locals(guard: Expr, field_names: FrozenSet[str]) -> List[str]:
    return sorted(var.name for var in free_vars(guard) if var.name not in field_names)


def _snapshot_expr(local_names: List[str]) -> str:
    entries = ", ".join(f"'{name}': {python_identifier(name)}" for name in local_names)
    return "{" + entries + "}"


def _waiter_predicate_lambda(guard: Expr, field_names: FrozenSet[str]) -> str:
    """A lambda evaluating *guard* against a waiter snapshot dict ``_w``."""
    def var(name: str) -> str:
        if name in field_names:
            return f"self.{python_identifier(name)}"
        return f"_w[{name!r}]"

    from repro.codegen.pyexpr import _render

    return "lambda _w: " + _render(guard, var, python=True)


def materialize_class(source: str, class_name: str):
    """Execute generated source and return the class object."""
    namespace: Dict[str, object] = {}
    exec(compile(source, f"<generated {class_name}>", "exec"), namespace)
    return namespace[class_name]


_MODULE_PREAMBLE = [
    '"""Auto-generated monitor code — do not edit by hand."""',
    "import threading",
    "",
    "from repro.runtime.explicit_support import GuardWaiters, MonitorMetrics",
    "from repro.runtime.implicit import ImplicitRuntime",
    "from repro.runtime.autosynch import AutoSynchRuntime",
    "from repro.runtime.coop import CoopAutoSynchRuntime, CoopImplicitRuntime",
    "",
    "",
]


# ---------------------------------------------------------------------------
# Explicit-signal generation (Expresso output and hand-written placements)
# ---------------------------------------------------------------------------


def _frozenset_literal(values) -> str:
    if not values:
        return "frozenset()"
    return "frozenset({" + ", ".join(repr(v) for v in sorted(values)) + "})"


def _footprints_literal(footprints: Dict) -> List[str]:
    """Source lines for a ``_coop_footprints`` class attribute (sorted, stable)."""
    lines = ["    _coop_footprints = {"]
    for name in sorted(footprints):
        fp = footprints[name]
        lines.append(
            f"        {name!r}: MethodFootprint("
            f"{_frozenset_literal(fp.reads)}, {_frozenset_literal(fp.writes)}, "
            f"{_frozenset_literal(fp.waits)}, {_frozenset_literal(fp.signals)}),")
    lines.append("    }")
    return lines


def _semantic_literal(semantic: Dict) -> List[str]:
    """Source lines for a ``_coop_semantic`` class attribute (sorted, stable)."""
    lines = ["    _coop_semantic = {"]
    for pair in sorted(semantic):
        lines.append(f"        {pair!r}: {semantic[pair]!r},")
    lines.append("    }")
    return lines


def placement_signature(placement) -> Tuple[Tuple, ...]:
    """The decision tuple of a :class:`~repro.placement.algorithm.PlacementResult`.

    One ``(ccr label, needs notification, conditional, broadcast,
    used §4.3)`` row per placement decision, in decision order — the shape
    the fuzzing campaign's placement coverage axis fingerprints, attached to
    coop classes so workers see the decisions without re-running placement.
    """
    return tuple(
        (decision.ccr_label, decision.needs_notification,
         decision.conditional, decision.broadcast,
         decision.used_commutativity)
        for decision in placement.decisions)


def _placement_literal(signature: Tuple[Tuple, ...]) -> List[str]:
    """Source lines for a ``_coop_placement`` class attribute."""
    lines = ["    _coop_placement = ("]
    for row in signature:
        lines.append(f"        {row!r},")
    lines.append("    )")
    return lines


def generate_python_explicit(explicit: ExplicitMonitor, class_name: Optional[str] = None,
                             coop: bool = False, footprints: Optional[Dict] = None,
                             semantic: Optional[Dict] = None,
                             placement: Optional[Tuple[Tuple, ...]] = None) -> str:
    """Generate an explicit-signal monitor class from a placed monitor.

    With ``coop=True`` the emitted methods are *generator functions* targeting
    the cooperative scheduler (:mod:`repro.explore.scheduler`) instead of real
    ``threading`` primitives: they yield ``("acquire",)`` / ``("wait", cond)``
    / ``("signal", cond)`` / ``("broadcast", cond)`` / ``("release",)`` at
    every synchronization point plus ``("commit", label)`` right before each
    CCR body, so the exploration engine controls every interleaving and the
    differential oracle can replay the commit order.

    *footprints* (``{method: MethodFootprint}``) and *semantic* (the
    SMT-proven method-pair independence matrix) are emitted as class
    attributes of coop classes, so parallel workers that rebuild the class
    from shipped source inherit the partial-order-reduction metadata without
    re-running any analysis.
    """
    class_name = class_name or f"{explicit.name}Explicit"
    field_names = _field_names(explicit.fields)
    guard_vars = {guard: name for guard, name in explicit.condition_vars}

    lines: List[str] = list(_MODULE_PREAMBLE)
    if coop and footprints is not None:
        lines.insert(-2, "from repro.explore.strategies import MethodFootprint")
    lines.append(f"class {class_name}:")
    flavour = "cooperative explicit-signal" if coop else "explicit-signal"
    lines.append(f'    """{flavour.capitalize()} monitor for {explicit.name} (generated)."""')
    lines.append("")
    if coop and footprints is not None:
        lines.extend(_footprints_literal(footprints))
    if coop and semantic is not None:
        lines.extend(_semantic_literal(semantic))
    if coop and placement is not None:
        lines.extend(_placement_literal(placement))
    if coop and (footprints is not None or semantic is not None
                 or placement is not None):
        lines.append("")
    lines.append("    def __init__(self):")
    if not coop:
        lines.append("        self._lock = threading.Lock()")
    lines.append("        self.metrics = MonitorMetrics()")
    lines.extend(_field_init_lines(explicit.fields, field_names, 2))
    for guard, cond_name in explicit.condition_vars:
        if not coop:
            lines.append(f"        self._{cond_name} = threading.Condition(self._lock)")
        if _guard_locals(guard, field_names):
            lines.append(f"        self._{cond_name}_waiters = GuardWaiters()")
    lines.append("")

    for method in explicit.methods:
        params = ", ".join(python_identifier(p.name) for p in method.params)
        signature = f"    def {method.name}(self{', ' + params if params else ''}):"
        lines.append(signature)
        if coop:
            lines.append("        yield (\"acquire\",)")
            lines.append("        self.metrics.operations += 1")
        else:
            lines.append("        with self._lock:")
            lines.append("            self.metrics.operations += 1")
        for ccr in method.ccrs:
            lines.extend(_explicit_ccr_lines(ccr, field_names, guard_vars, coop))
        if coop:
            lines.append("        yield (\"release\",)")
        lines.append("")
    return "\n".join(lines) + "\n"


def _explicit_ccr_lines(ccr: ExplicitCCR, field_names: FrozenSet[str],
                        guard_vars: Dict[Expr, str], coop: bool = False) -> List[str]:
    lines: List[str] = []
    # Coop methods run at method-body level; threaded ones inside `with self._lock:`.
    pad = "        " if coop else "            "
    body_indent = 2 if coop else 3
    if not ccr.guard == _TRUE:
        cond_name = guard_vars[ccr.guard]
        guard_py = to_python(ccr.guard, field_names)
        locals_in_guard = _guard_locals(ccr.guard, field_names)
        if locals_in_guard:
            lines.append(f"{pad}_snapshot = {_snapshot_expr(locals_in_guard)}")
            lines.append(f"{pad}self._{cond_name}_waiters.register(_snapshot)")
        lines.append(f"{pad}self.metrics.predicate_evaluations += 1")
        lines.append(f"{pad}while not {guard_py}:")
        lines.append(f"{pad}    self.metrics.waits += 1")
        if coop:
            lines.append(f"{pad}    yield (\"wait\", \"{cond_name}\")")
        else:
            lines.append(f"{pad}    self._{cond_name}.wait()")
        lines.append(f"{pad}    self.metrics.wakeups += 1")
        lines.append(f"{pad}    self.metrics.predicate_evaluations += 1")
        lines.append(f"{pad}    if not {guard_py}:")
        lines.append(f"{pad}        self.metrics.spurious_wakeups += 1")
        if locals_in_guard:
            lines.append(f"{pad}self._{cond_name}_waiters.deregister(_snapshot)")
    if coop:
        lines.append(f"{pad}yield (\"commit\", \"{ccr.label}\")")
    if not isinstance(ccr.body, Skip):
        lines.extend(stmt_to_python(ccr.body, field_names, indent=body_indent))
    for notification in ccr.notifications:
        lines.extend(_notification_lines(notification, field_names, guard_vars, pad, coop))
    return lines


def _notification_lines(notification: Notification, field_names: FrozenSet[str],
                        guard_vars: Dict[Expr, str], pad: str,
                        coop: bool = False) -> List[str]:
    cond_name = guard_vars.get(notification.predicate)
    if cond_name is None:
        return []
    locals_in_pred = _guard_locals(notification.predicate, field_names)
    counter = "broadcasts" if notification.broadcast else "signals"
    if coop:
        kind = "broadcast" if notification.broadcast else "signal"
        notify_line = f"yield (\"{kind}\", \"{cond_name}\")"
        broadcast_line = f"yield (\"broadcast\", \"{cond_name}\")"
    else:
        notify = "notify_all" if notification.broadcast else "notify"
        notify_line = f"self._{cond_name}.{notify}()"
        broadcast_line = f"self._{cond_name}.notify_all()"
    lines: List[str] = []
    if not notification.conditional:
        lines.append(f"{pad}self.metrics.{counter} += 1")
        lines.append(f"{pad}{notify_line}")
        return lines
    if locals_in_pred:
        # §6: consult the waiter-snapshot table to evaluate a predicate that
        # mentions another thread's locals; wake the whole queue (the woken
        # threads re-check their own guards), which is the fixed conservative
        # strategy the paper describes for local-variable predicates.
        predicate_lambda = _waiter_predicate_lambda(notification.predicate, field_names)
        lines.append(
            f"{pad}if self._{cond_name}_waiters.any_satisfied({predicate_lambda}, self.metrics):"
        )
        lines.append(f"{pad}    self.metrics.broadcasts += 1")
        lines.append(f"{pad}    {broadcast_line}")
        return lines
    predicate_py = to_python(notification.predicate, field_names)
    lines.append(f"{pad}self.metrics.predicate_evaluations += 1")
    lines.append(f"{pad}if {predicate_py}:")
    lines.append(f"{pad}    self.metrics.{counter} += 1")
    lines.append(f"{pad}    {notify_line}")
    return lines


# ---------------------------------------------------------------------------
# Automatic-signal generation (naive implicit and AutoSynch baselines)
# ---------------------------------------------------------------------------


def _method_local_names(monitor: Monitor, method) -> List[str]:
    """Non-parameter thread-local names assigned anywhere in *method*."""
    from repro.lang.ast import stmt_assigned_vars

    field_names = set(monitor.field_names())
    params = set(method.param_names())
    names: List[str] = []
    for ccr in method.ccrs:
        for name in sorted(stmt_assigned_vars(ccr.body)):
            if name not in field_names and name not in params and name not in names:
                names.append(name)
    return names


def _generate_runtime_class(monitor: Monitor, runtime_class: str, class_name: str,
                            coop: bool = False) -> str:
    field_names = _field_names(monitor.fields)
    lines: List[str] = list(_MODULE_PREAMBLE)
    lines.append(f"class {class_name}:")
    lines.append(f'    """{runtime_class}-backed automatic monitor for {monitor.name}."""')
    lines.append("")
    lines.append("    def __init__(self):")
    lines.append(f"        self._rt = {runtime_class}()")
    lines.append("        self.metrics = self._rt.metrics")
    lines.extend(_field_init_lines(monitor.fields, field_names, 2))
    lines.append("")
    for method in monitor.methods:
        params = ", ".join(python_identifier(p.name) for p in method.params)
        lines.append(f"    def {method.name}(self{', ' + params if params else ''}):")
        # Locals may be set in one CCR and read in a later CCR's guard (e.g. a
        # ticket number), so they live at method scope and the per-CCR body
        # closures update them via ``nonlocal``.
        local_names = _method_local_names(monitor, method)
        for name in local_names:
            lines.append(f"        {python_identifier(name)} = 0")
        emitted = False
        for index, ccr in enumerate(method.ccrs):
            guard_py = to_python(ccr.guard, field_names)
            body_fn = f"_body_{index}"
            lines.append(f"        def {body_fn}():")
            if local_names:
                joined = ", ".join(python_identifier(name) for name in local_names)
                lines.append(f"            nonlocal {joined}")
            body_lines = stmt_to_python(ccr.body, field_names, indent=3)
            lines.extend(body_lines)
            if coop:
                lines.append(f"        yield from self._rt.execute("
                             f"lambda: {guard_py}, {body_fn}, \"{ccr.label}\")")
            else:
                lines.append(f"        self._rt.execute(lambda: {guard_py}, {body_fn})")
            emitted = True
        if not emitted:
            # Keep zero-CCR methods generators in coop mode (the scheduler
            # treats an immediately-exhausted frame as a completed operation).
            lines.append("        yield from ()" if coop else "        pass")
        lines.append("")
    return "\n".join(lines) + "\n"


def generate_python_implicit(monitor: Monitor, class_name: Optional[str] = None,
                             coop: bool = False) -> str:
    """Generate the broadcast-everything automatic monitor."""
    return _generate_runtime_class(monitor,
                                   "CoopImplicitRuntime" if coop else "ImplicitRuntime",
                                   class_name or f"{monitor.name}Implicit", coop)


def generate_python_autosynch(monitor: Monitor, class_name: Optional[str] = None,
                              coop: bool = False) -> str:
    """Generate the AutoSynch-style automatic monitor."""
    return _generate_runtime_class(monitor,
                                   "CoopAutoSynchRuntime" if coop else "AutoSynchRuntime",
                                   class_name or f"{monitor.name}AutoSynch", coop)


from repro.logic import TRUE as _TRUE  # noqa: E402  (import placed to avoid cycle noise)
