"""Expression translation used by the code generators.

Guards and statement expressions are :mod:`repro.logic` terms; code
generation needs them as Python expressions (over ``self.<field>`` and plain
locals) and as Java expressions.  Both renderings are purely syntactic.
"""

from __future__ import annotations

from typing import Callable, FrozenSet

from repro.logic.terms import (
    Add,
    And,
    BoolConst,
    Eq,
    Expr,
    Ge,
    Gt,
    Iff,
    Implies,
    IntConst,
    Ite,
    Le,
    Lt,
    Mul,
    Ne,
    Neg,
    Not,
    Or,
    Sub,
    Var,
)


def _render(expr: Expr, var: Callable[[str], str], *, python: bool) -> str:
    rec = lambda e: _render(e, var, python=python)  # noqa: E731 - local shorthand
    if isinstance(expr, Var):
        return var(expr.name)
    if isinstance(expr, IntConst):
        return str(expr.value)
    if isinstance(expr, BoolConst):
        if python:
            return "True" if expr.value else "False"
        return "true" if expr.value else "false"
    if isinstance(expr, Add):
        return "(" + " + ".join(rec(arg) for arg in expr.args) + ")"
    if isinstance(expr, Sub):
        return f"({rec(expr.left)} - {rec(expr.right)})"
    if isinstance(expr, Neg):
        return f"(-{rec(expr.operand)})"
    if isinstance(expr, Mul):
        return f"({rec(expr.left)} * {rec(expr.right)})"
    if isinstance(expr, Ite):
        if python:
            return f"({rec(expr.then)} if {rec(expr.cond)} else {rec(expr.orelse)})"
        return f"({rec(expr.cond)} ? {rec(expr.then)} : {rec(expr.orelse)})"
    comparison = {Eq: "==", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">="}
    for cls, symbol in comparison.items():
        if isinstance(expr, cls):
            return f"({rec(expr.left)} {symbol} {rec(expr.right)})"
    if isinstance(expr, Not):
        return f"(not {rec(expr.operand)})" if python else f"(!{rec(expr.operand)})"
    if isinstance(expr, And):
        joiner = " and " if python else " && "
        return "(" + joiner.join(rec(arg) for arg in expr.args) + ")"
    if isinstance(expr, Or):
        joiner = " or " if python else " || "
        return "(" + joiner.join(rec(arg) for arg in expr.args) + ")"
    if isinstance(expr, Implies):
        if python:
            return f"((not {rec(expr.antecedent)}) or {rec(expr.consequent)})"
        return f"((!{rec(expr.antecedent)}) || {rec(expr.consequent)})"
    if isinstance(expr, Iff):
        return f"({rec(expr.left)} == {rec(expr.right)})"
    raise TypeError(f"cannot translate node {type(expr).__name__}")


def to_python(expr: Expr, field_names: FrozenSet[str], receiver: str = "self") -> str:
    """Render *expr* as a Python expression; fields become ``<receiver>.<name>``."""
    def var(name: str) -> str:
        mangled = name.replace(".", "_")
        if name in field_names:
            return f"{receiver}.{mangled}"
        return mangled

    return _render(expr, var, python=True)


def to_java(expr: Expr, field_names: FrozenSet[str]) -> str:
    """Render *expr* as a Java expression; field paths are kept verbatim."""
    return _render(expr, lambda name: name, python=False)


def python_identifier(name: str) -> str:
    """Mangle a (possibly dotted) DSL name into a valid Python identifier."""
    return name.replace(".", "_")
