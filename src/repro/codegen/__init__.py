"""Code generation from placed monitors (paper §6).

* :mod:`repro.codegen.pyexpr` — expression translation to Python/Java text;
* :mod:`repro.codegen.java_gen` — Java-like explicit-signal source emission
  (ReentrantLock + per-guard Condition objects, exactly the §6 scheme);
* :mod:`repro.codegen.python_gen` — executable Python classes for three
  signalling disciplines (Expresso placement, naive implicit broadcast,
  AutoSynch-style runtime), used by the performance harness.
"""

from repro.codegen.java_gen import generate_java
from repro.codegen.python_gen import (
    generate_python_explicit,
    generate_python_implicit,
    generate_python_autosynch,
    materialize_class,
)

__all__ = [
    "generate_java",
    "generate_python_explicit",
    "generate_python_implicit",
    "generate_python_autosynch",
    "materialize_class",
]
