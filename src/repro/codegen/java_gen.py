"""Java source emission for explicit-signal monitors (paper §6).

The generated code follows the paper's scheme exactly: a ``ReentrantLock``,
one ``Condition`` per waited-on guard, ``while (!p) c.await();`` wait loops,
``if (p) c.signal()`` for conditional notifications, plain ``c.signal()`` /
``c.signalAll()`` for unconditional ones, and an optional *lazy broadcast*
mode that relays ``if (p) c.signal()`` after every waituntil with guard ``p``
instead of emitting ``signalAll``.

The output is meant for inspection and for golden tests; the executable
evaluation uses the Python generators.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from repro.codegen.pyexpr import to_java
from repro.logic import TRUE
from repro.logic.free_vars import free_vars
from repro.logic.terms import BOOL, Expr
from repro.lang.ast import (
    Assign,
    If,
    LocalDecl,
    Seq,
    Skip,
    Stmt,
    While,
)
from repro.placement.target import ExplicitCCR, ExplicitMonitor, Notification


def _java_type(sort) -> str:
    return "boolean" if sort is BOOL else "int"


def _stmt_to_java(stmt: Stmt, indent: int) -> List[str]:
    pad = "    " * indent
    if isinstance(stmt, Skip):
        return []
    if isinstance(stmt, Assign):
        return [f"{pad}{stmt.target} = {to_java(stmt.value, frozenset())};"]
    if isinstance(stmt, LocalDecl):
        return [f"{pad}{_java_type(stmt.sort)} {stmt.name} = {to_java(stmt.init, frozenset())};"]
    if isinstance(stmt, Seq):
        lines: List[str] = []
        for child in stmt.stmts:
            lines.extend(_stmt_to_java(child, indent))
        return lines
    if isinstance(stmt, If):
        lines = [f"{pad}if ({to_java(stmt.cond, frozenset())}) {{"]
        lines.extend(_stmt_to_java(stmt.then, indent + 1))
        if isinstance(stmt.orelse, Skip):
            lines.append(f"{pad}}}")
        else:
            lines.append(f"{pad}}} else {{")
            lines.extend(_stmt_to_java(stmt.orelse, indent + 1))
            lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, While):
        lines = [f"{pad}while ({to_java(stmt.cond, frozenset())}) {{"]
        lines.extend(_stmt_to_java(stmt.body, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    raise TypeError(f"cannot translate statement {type(stmt).__name__}")


def _notification_to_java(notification: Notification, cond_name: str,
                          indent: int, lazy_broadcast: bool) -> List[str]:
    pad = "    " * indent
    call = "signalAll" if (notification.broadcast and not lazy_broadcast) else "signal"
    if notification.conditional:
        predicate = to_java(notification.predicate, frozenset())
        return [f"{pad}if ({predicate}) {cond_name}.{call}();"]
    return [f"{pad}{cond_name}.{call}();"]


def _relay_lines(guard: Expr, cond_name: str, indent: int) -> List[str]:
    pad = "    " * indent
    predicate = to_java(guard, frozenset())
    return [f"{pad}if ({predicate}) {cond_name}.signal();  // lazy broadcast relay"]


def generate_java(explicit: ExplicitMonitor, lazy_broadcast: bool = False) -> str:
    """Render an explicit-signal monitor as Java source text."""
    guard_vars: Dict[Expr, str] = dict(explicit.condition_vars)
    broadcast_guards = {
        note.predicate
        for method in explicit.methods for ccr in method.ccrs
        for note in ccr.broadcasts
    } if lazy_broadcast else set()

    lines: List[str] = []
    lines.append("import java.util.concurrent.locks.Condition;")
    lines.append("import java.util.concurrent.locks.ReentrantLock;")
    lines.append("")
    lines.append(f"class {explicit.name} {{")
    for decl in explicit.fields:
        init = to_java(decl.init, frozenset())
        lines.append(f"    {_java_type(decl.sort)} {decl.name} = {init};")
    lines.append("    final ReentrantLock lock = new ReentrantLock();")
    for _guard, cond_name in explicit.condition_vars:
        lines.append(f"    final Condition {cond_name} = lock.newCondition();")
    lines.append("")

    for method in explicit.methods:
        params = ", ".join(f"{_java_type(p.sort)} {p.name}" for p in method.params)
        lines.append(f"    void {method.name}({params}) {{")
        lines.append("        lock.lock();")
        lines.append("        try {")
        for ccr in method.ccrs:
            if ccr.guard != TRUE:
                cond_name = guard_vars[ccr.guard]
                guard_java = to_java(ccr.guard, frozenset())
                lines.append(f"            while (!{guard_java}) {cond_name}.await();")
                if lazy_broadcast and ccr.guard in broadcast_guards:
                    lines.extend(_relay_lines(ccr.guard, cond_name, 3))
            lines.extend(_stmt_to_java(ccr.body, 3))
            for note in ccr.notifications:
                cond_name = guard_vars.get(note.predicate)
                if cond_name is None:
                    continue
                lines.extend(_notification_to_java(note, cond_name, 3, lazy_broadcast))
        lines.append("        } finally {")
        lines.append("            lock.unlock();")
        lines.append("        }")
        lines.append("    }")
        lines.append("")
    lines.append("}")
    return "\n".join(lines) + "\n"
