"""Benchmark specification objects.

A :class:`BenchmarkSpec` packages everything the evaluation harness needs for
one benchmark:

* the implicit-signal DSL source (the input to Expresso);
* a *hand-written* explicit-signal placement, expressed as notifications per
  CCR (this is the "Explicit" series of Figures 8/9 — the near-optimal code a
  programmer would write);
* a saturation-workload generator producing balanced per-thread operation
  sequences (so every run terminates);
* the thread ladder over which the figure sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.lang import load_monitor
from repro.lang.ast import Monitor
from repro.placement.algorithm import PlacementResult
from repro.placement.instrument import instrument
from repro.placement.target import ExplicitMonitor, Notification

#: One thread's operation sequence: a list of (method name, positional args).
ThreadOps = List[Tuple[str, tuple]]
#: A workload: one operation sequence per thread.
Workload = List[ThreadOps]


@dataclass(frozen=True)
class HandPlacement:
    """A hand-written notification: emitted by *ccr_label*, waking the threads
    blocked on the guard of *wait_method*'s first waituntil."""

    ccr_label: str
    wait_method: str
    conditional: bool
    broadcast: bool


@dataclass
class BenchmarkSpec:
    """One paper benchmark (source, hand-written placement, workload)."""

    name: str
    figure: str                       # "8" or "9"
    origin: str                       # where the paper took it from
    source: str
    hand_placements: Tuple[HandPlacement, ...]
    make_workload: Callable[[int, int], Workload]
    thread_ladder: Tuple[int, ...] = (2, 4, 8, 16, 32, 64, 128)
    default_ops_per_thread: int = 40

    _monitor_cache: Optional[Monitor] = field(default=None, repr=False, compare=False)

    # -- derived artifacts ----------------------------------------------------

    def monitor(self) -> Monitor:
        """The parsed and checked implicit-signal monitor."""
        if self._monitor_cache is None:
            self._monitor_cache = load_monitor(self.source)
        return self._monitor_cache

    def guard_of_method(self, method_name: str):
        """The guard of *method_name*'s first non-trivial CCR."""
        method = self.monitor().method(method_name)
        for ccr in method.ccrs:
            if not ccr.is_trivial():
                return ccr.guard
        raise ValueError(f"{method_name!r} has no waituntil in benchmark {self.name!r}")

    def handwritten_explicit(self) -> ExplicitMonitor:
        """The hand-written explicit-signal monitor as an ExplicitMonitor."""
        monitor = self.monitor()
        notifications: Dict[str, List[Notification]] = {
            ccr.label: [] for _m, ccr in monitor.ccrs()
        }
        for placement in self.hand_placements:
            guard = self.guard_of_method(placement.wait_method)
            notifications[placement.ccr_label].append(
                Notification(guard, placement.conditional, placement.broadcast)
            )
        result = PlacementResult(
            monitor=monitor,
            invariant=_true(),
            notifications={label: tuple(notes) for label, notes in notifications.items()},
            decisions=(),
        )
        return instrument(monitor, result)

    def workload(self, threads: int, ops_per_thread: Optional[int] = None) -> Workload:
        """A balanced workload for *threads* threads."""
        return self.make_workload(threads, ops_per_thread or self.default_ops_per_thread)


def _true():
    from repro.logic import TRUE

    return TRUE


def shuffle_workload(workload: Workload, seed: int) -> Workload:
    """Reproducibly permute which thread runs which op sequence (``bench --seed``).

    Only the *assignment* of operation sequences to threads is shuffled;
    every sequence keeps its internal order.  That matters: workload roles
    carry ordering dependencies (enterWriter must precede its exitWriter, a
    gate must open before the entries), so permuting *within* a thread could
    self-deadlock the workload.  Permuting across threads preserves balance
    and termination while making thread start-up/contention order
    seed-dependent.
    """
    import random

    rng = random.Random(str(seed))
    shuffled = [list(ops) for ops in workload]
    rng.shuffle(shuffled)
    return shuffled


def round_robin_roles(threads: int, ops: int,
                      roles: Sequence[Callable[[int, int], ThreadOps]]) -> Workload:
    """Assign roles to threads round-robin; each role builds its own op list."""
    workload: Workload = []
    for index in range(threads):
        role = roles[index % len(roles)]
        workload.append(role(index, ops))
    return workload
