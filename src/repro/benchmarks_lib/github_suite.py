"""The GitHub-mined benchmark suite (Figure 9).

The six monitors below reproduce the synchronization logic of the modules the
paper extracted from popular open-source projects (Spring, EventBus, Gradle,
ExoPlayer, greenDAO).  Only the monitor-relevant state and methods are
transcribed — exactly what the paper's manual extraction did when inserting
the modules into a stress-testing harness.
"""

from __future__ import annotations

from typing import List

from repro.benchmarks_lib.spec import BenchmarkSpec, HandPlacement, Workload


# ---------------------------------------------------------------------------
# ConcurrencyThrottle (Spring framework)
# ---------------------------------------------------------------------------

CONCURRENCY_THROTTLE_SOURCE = """
monitor ConcurrencyThrottle {
    const int THREAD_LIMIT = 8;
    unsigned int threadCount = 0;

    atomic void beforeAccess() {
        waituntil (threadCount < THREAD_LIMIT) { threadCount++; }
    }
    atomic void afterAccess() {
        threadCount--;
    }
}
"""


def _throttle_workload(threads: int, ops: int) -> Workload:
    return [[("beforeAccess", ()), ("afterAccess", ())] * ops for _ in range(threads)]


CONCURRENCY_THROTTLE = BenchmarkSpec(
    name="ConcurrencyThrottle",
    figure="9",
    origin="Spring framework",
    source=CONCURRENCY_THROTTLE_SOURCE,
    hand_placements=(
        HandPlacement("afterAccess#0", "beforeAccess", conditional=False, broadcast=False),
    ),
    make_workload=_throttle_workload,
)


# ---------------------------------------------------------------------------
# PendingPostQueue (greenrobot EventBus)
# ---------------------------------------------------------------------------

PENDING_POST_QUEUE_SOURCE = """
monitor PendingPostQueue {
    unsigned int queueSize = 0;

    atomic void enqueue() {
        queueSize++;
    }
    atomic void poll() {
        waituntil (queueSize > 0) { queueSize--; }
    }
}
"""


def _pending_post_workload(threads: int, ops: int) -> Workload:
    workload: Workload = []
    pairs = max(threads // 2, 1)
    for index in range(threads):
        if index < pairs:
            workload.append([("enqueue", ())] * ops)
        elif index < 2 * pairs:
            workload.append([("poll", ())] * ops)
        else:
            workload.append([])
    return workload


PENDING_POST_QUEUE = BenchmarkSpec(
    name="PendingPostQueue",
    figure="9",
    origin="EventBus",
    source=PENDING_POST_QUEUE_SOURCE,
    hand_placements=(
        HandPlacement("enqueue#0", "poll", conditional=False, broadcast=False),
    ),
    make_workload=_pending_post_workload,
    thread_ladder=(3, 6, 9, 18, 33, 66, 129),
)


# ---------------------------------------------------------------------------
# AsyncDispatch (Gradle)
# ---------------------------------------------------------------------------

ASYNC_DISPATCH_SOURCE = """
monitor AsyncDispatch {
    const int MAX_QUEUE_SIZE = 16;
    const int STOPPED = 2;
    unsigned int queueSize = 0;
    int state = 0;

    atomic void dispatch() {
        waituntil (queueSize < MAX_QUEUE_SIZE || state == STOPPED) {
            if (state != STOPPED) { queueSize++; }
        }
    }
    atomic void run() {
        waituntil (queueSize > 0 || state == STOPPED) {
            if (queueSize > 0) { queueSize--; }
        }
    }
    atomic void stop() {
        state = STOPPED;
    }
}
"""


def _async_dispatch_workload(threads: int, ops: int) -> Workload:
    workload: Workload = []
    pairs = max(threads // 2, 1)
    for index in range(threads):
        if index < pairs:
            producer = [("dispatch", ())] * ops
            if index == 0:
                producer.append(("stop", ()))
            workload.append(producer)
        elif index < 2 * pairs:
            workload.append([("run", ())] * ops)
        else:
            workload.append([])
    return workload


ASYNC_DISPATCH = BenchmarkSpec(
    name="AsyncDispatch",
    figure="9",
    origin="Gradle",
    source=ASYNC_DISPATCH_SOURCE,
    hand_placements=(
        HandPlacement("dispatch#0", "run", conditional=True, broadcast=False),
        HandPlacement("run#0", "dispatch", conditional=True, broadcast=False),
        HandPlacement("stop#0", "run", conditional=False, broadcast=True),
        HandPlacement("stop#0", "dispatch", conditional=False, broadcast=True),
    ),
    make_workload=_async_dispatch_workload,
)


# ---------------------------------------------------------------------------
# SimpleBlockingDeployment (Gradle)
# ---------------------------------------------------------------------------

SIMPLE_BLOCKING_DEPLOYMENT_SOURCE = """
monitor SimpleBlockingDeployment {
    boolean blocked = false;
    unsigned int deployments = 0;

    atomic void block() {
        blocked = true;
    }
    atomic void unblock() {
        blocked = false;
    }
    atomic void deploy() {
        waituntil (!blocked) { deployments++; }
    }
}
"""


def _blocking_deployment_workload(threads: int, ops: int) -> Workload:
    workload: Workload = []
    for index in range(threads):
        if index == 0:
            workload.append([("block", ()), ("unblock", ())] * ops)
        else:
            workload.append([("deploy", ())] * ops)
    return workload


SIMPLE_BLOCKING_DEPLOYMENT = BenchmarkSpec(
    name="SimpleBlockingDeployment",
    figure="9",
    origin="Gradle",
    source=SIMPLE_BLOCKING_DEPLOYMENT_SOURCE,
    hand_placements=(
        HandPlacement("unblock#0", "deploy", conditional=False, broadcast=True),
    ),
    make_workload=_blocking_deployment_workload,
)


# ---------------------------------------------------------------------------
# SimpleDecoder (ExoPlayer)
# ---------------------------------------------------------------------------

SIMPLE_DECODER_SOURCE = """
monitor SimpleDecoder {
    unsigned int availableInputBuffers = 4;
    unsigned int queuedInputBuffers = 0;
    unsigned int availableOutputBuffers = 0;
    boolean released = false;

    atomic void dequeueInputBuffer() {
        waituntil (availableInputBuffers > 0 || released) {
            if (!released) { availableInputBuffers--; }
        }
    }
    atomic void queueInputBuffer() {
        queuedInputBuffers++;
    }
    atomic void decode() {
        waituntil (queuedInputBuffers > 0 || released) {
            if (queuedInputBuffers > 0) {
                queuedInputBuffers--;
                availableOutputBuffers++;
            }
        }
    }
    atomic void dequeueOutputBuffer() {
        waituntil (availableOutputBuffers > 0 || released) {
            if (availableOutputBuffers > 0) { availableOutputBuffers--; }
        }
    }
    atomic void releaseOutputBuffer() {
        availableInputBuffers++;
    }
    atomic void release() {
        released = true;
    }
}
"""


def _simple_decoder_workload(threads: int, ops: int) -> Workload:
    workload: Workload = []
    pairs = max(threads // 2, 1)
    client_ops = [("dequeueInputBuffer", ()), ("queueInputBuffer", ()),
                  ("dequeueOutputBuffer", ()), ("releaseOutputBuffer", ())]
    for index in range(threads):
        if index < pairs:
            workload.append(client_ops * ops)
        elif index < 2 * pairs:
            workload.append([("decode", ())] * ops)
        else:
            workload.append([])
    return workload


SIMPLE_DECODER = BenchmarkSpec(
    name="SimpleDecoder",
    figure="9",
    origin="ExoPlayer",
    source=SIMPLE_DECODER_SOURCE,
    hand_placements=(
        HandPlacement("queueInputBuffer#0", "decode", conditional=False, broadcast=False),
        HandPlacement("decode#0", "dequeueOutputBuffer", conditional=True, broadcast=False),
        HandPlacement("releaseOutputBuffer#0", "dequeueInputBuffer",
                      conditional=False, broadcast=False),
        HandPlacement("release#0", "dequeueInputBuffer", conditional=False, broadcast=True),
        HandPlacement("release#0", "decode", conditional=False, broadcast=True),
        HandPlacement("release#0", "dequeueOutputBuffer", conditional=False, broadcast=True),
    ),
    make_workload=_simple_decoder_workload,
    thread_ladder=(3, 6, 9, 18, 33, 66, 129),
    default_ops_per_thread=25,
)


# ---------------------------------------------------------------------------
# AsyncOperationExecutor (greenDAO)
# ---------------------------------------------------------------------------

ASYNC_OPERATION_EXECUTOR_SOURCE = """
monitor AsyncOperationExecutor {
    unsigned int enqueuedCount = 0;
    unsigned int completedCount = 0;

    atomic void enqueueOperation() {
        enqueuedCount++;
    }
    atomic void completeOperation() {
        completedCount++;
    }
    atomic void waitForCompletion() {
        waituntil (completedCount == enqueuedCount && enqueuedCount > 0);
    }
}
"""


def _async_executor_workload(threads: int, ops: int) -> Workload:
    workload: Workload = []
    for index in range(threads):
        if index % 4 == 3:
            workload.append([("waitForCompletion", ())] * ops)
        else:
            workload.append([("enqueueOperation", ()), ("completeOperation", ())] * ops)
    return workload


ASYNC_OPERATION_EXECUTOR = BenchmarkSpec(
    name="AsyncOperationExecutor",
    figure="9",
    origin="greenDAO",
    source=ASYNC_OPERATION_EXECUTOR_SOURCE,
    hand_placements=(
        HandPlacement("completeOperation#0", "waitForCompletion",
                      conditional=True, broadcast=True),
    ),
    make_workload=_async_executor_workload,
    default_ops_per_thread=30,
)


FIGURE9: List[BenchmarkSpec] = [
    CONCURRENCY_THROTTLE,
    PENDING_POST_QUEUE,
    ASYNC_DISPATCH,
    SIMPLE_BLOCKING_DEPLOYMENT,
    SIMPLE_DECODER,
    ASYNC_OPERATION_EXECUTOR,
]
