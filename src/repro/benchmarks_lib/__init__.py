"""The paper's 14 evaluation benchmarks, transcribed into the monitor DSL.

Figure 8 benchmarks (the AutoSynch suite plus the §2 readers-writers):
BoundedBuffer, H2O Barrier, Sleeping Barber, Round Robin, Ticketed
Readers-Writers, Parameterized Bounded Buffer, Dining Philosophers,
Readers-Writers.

Figure 9 benchmarks (monitors mined from GitHub projects): ConcurrencyThrottle
(Spring), PendingPostQueue (EventBus), AsyncDispatch (Gradle),
SimpleBlockingDeployment (Gradle), SimpleDecoder (ExoPlayer),
AsyncOperationExecutor (greenDAO).

Each benchmark bundles the implicit-signal DSL source, a hand-written
explicit-signal placement (the "Explicit" series of the paper's plots), and a
saturation workload generator.
"""

from repro.benchmarks_lib.spec import BenchmarkSpec, HandPlacement, Workload
from repro.benchmarks_lib.registry import (
    ALL_BENCHMARKS,
    FIGURE8_BENCHMARKS,
    FIGURE9_BENCHMARKS,
    get_benchmark,
)

__all__ = [
    "BenchmarkSpec", "HandPlacement", "Workload",
    "ALL_BENCHMARKS", "FIGURE8_BENCHMARKS", "FIGURE9_BENCHMARKS", "get_benchmark",
]
