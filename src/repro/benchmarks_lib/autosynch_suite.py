"""The AutoSynch benchmark suite + the §2 readers-writers monitor (Figure 8).

Each benchmark is transcribed from its description in the AutoSynch paper /
the Expresso paper into the monitor DSL, together with the explicit-signal
placement a careful programmer would write by hand (the "Explicit" series)
and a balanced saturation workload.
"""

from __future__ import annotations

from typing import List

from repro.benchmarks_lib.spec import BenchmarkSpec, HandPlacement, ThreadOps, Workload


# ---------------------------------------------------------------------------
# Bounded buffer
# ---------------------------------------------------------------------------

BOUNDED_BUFFER_SOURCE = """
monitor BoundedBuffer {
    const int CAPACITY = 16;
    unsigned int count = 0;

    atomic void put() {
        waituntil (count < CAPACITY) { count++; }
    }
    atomic void take() {
        waituntil (count > 0) { count--; }
    }
}
"""


def _bounded_buffer_workload(threads: int, ops: int) -> Workload:
    workload: Workload = []
    pairs = max(threads // 2, 1)
    for index in range(threads):
        if index < pairs:
            workload.append([("put", ())] * ops)
        elif index < 2 * pairs:
            workload.append([("take", ())] * ops)
        else:
            workload.append([])
    return workload


BOUNDED_BUFFER = BenchmarkSpec(
    name="BoundedBuffer",
    figure="8",
    origin="AutoSynch benchmark suite",
    source=BOUNDED_BUFFER_SOURCE,
    hand_placements=(
        HandPlacement("put#0", "take", conditional=False, broadcast=False),
        HandPlacement("take#0", "put", conditional=False, broadcast=False),
    ),
    make_workload=_bounded_buffer_workload,
)


# ---------------------------------------------------------------------------
# Readers-writers (the paper's §2 running example)
# ---------------------------------------------------------------------------

READERS_WRITERS_SOURCE = """
monitor RWLock {
    int readers = 0;
    boolean writerIn = false;

    atomic void enterReader() {
        waituntil (!writerIn) { readers++; }
    }
    atomic void exitReader() {
        if (readers > 0) { readers--; }
    }
    atomic void enterWriter() {
        waituntil (readers == 0 && !writerIn) { writerIn = true; }
    }
    atomic void exitWriter() {
        writerIn = false;
    }
}
"""


def _readers_writers_workload(threads: int, ops: int) -> Workload:
    workload: Workload = []
    for index in range(threads):
        if index % 5 == 0:
            workload.append([("enterWriter", ()), ("exitWriter", ())] * ops)
        else:
            workload.append([("enterReader", ()), ("exitReader", ())] * ops)
    return workload


READERS_WRITERS = BenchmarkSpec(
    name="Readers-Writers",
    figure="8",
    origin="paper §2 motivating example",
    source=READERS_WRITERS_SOURCE,
    hand_placements=(
        HandPlacement("exitReader#0", "enterWriter", conditional=True, broadcast=False),
        HandPlacement("exitWriter#0", "enterWriter", conditional=True, broadcast=False),
        HandPlacement("exitWriter#0", "enterReader", conditional=False, broadcast=True),
    ),
    make_workload=_readers_writers_workload,
)


# ---------------------------------------------------------------------------
# Ticketed readers-writers (fair FIFO admission via tickets)
# ---------------------------------------------------------------------------

TICKETED_RW_SOURCE = """
monitor TicketedRWLock {
    int nextTicket = 0;
    int serving = 0;
    unsigned int readers = 0;
    boolean writerIn = false;

    atomic void enterReader() {
        int ticket = nextTicket;
        nextTicket++;
        waituntil (serving == ticket && !writerIn) { readers++; serving++; }
    }
    atomic void exitReader() {
        if (readers > 0) { readers--; }
    }
    atomic void enterWriter() {
        int ticket = nextTicket;
        nextTicket++;
        waituntil (serving == ticket && readers == 0 && !writerIn) {
            writerIn = true;
            serving++;
        }
    }
    atomic void exitWriter() {
        writerIn = false;
    }
}
"""


def _ticketed_rw_workload(threads: int, ops: int) -> Workload:
    workload: Workload = []
    for index in range(threads):
        if index % 3 == 2:
            workload.append([("enterWriter", ()), ("exitWriter", ())] * ops)
        else:
            workload.append([("enterReader", ()), ("exitReader", ())] * ops)
    return workload


TICKETED_READERS_WRITERS = BenchmarkSpec(
    name="Ticketed Readers-Writers",
    figure="8",
    origin="AutoSynch benchmark suite",
    source=TICKETED_RW_SOURCE,
    hand_placements=(
        # Ticket admission order means every state change may admit the next
        # ticket holder, whose identity (ticket value) is thread-local: the
        # hand-written monitor broadcasts on both conditions.
        HandPlacement("enterReader#1", "enterReader", conditional=True, broadcast=True),
        HandPlacement("enterReader#1", "enterWriter", conditional=True, broadcast=True),
        HandPlacement("exitReader#0", "enterWriter", conditional=True, broadcast=True),
        HandPlacement("enterWriter#1", "enterReader", conditional=True, broadcast=True),
        HandPlacement("exitWriter#0", "enterReader", conditional=True, broadcast=True),
        HandPlacement("exitWriter#0", "enterWriter", conditional=True, broadcast=True),
    ),
    make_workload=_ticketed_rw_workload,
    default_ops_per_thread=20,
)


# ---------------------------------------------------------------------------
# H2O barrier
# ---------------------------------------------------------------------------

H2O_SOURCE = """
monitor H2OBarrier {
    unsigned int hydrogenReady = 0;
    unsigned int molecules = 0;

    atomic void hydrogen() {
        hydrogenReady++;
    }
    atomic void oxygen() {
        waituntil (hydrogenReady >= 2) {
            hydrogenReady = hydrogenReady - 2;
            molecules++;
        }
    }
}
"""


def _h2o_workload(threads: int, ops: int) -> Workload:
    # Roles repeat H, H, O so hydrogen calls are exactly twice the oxygen calls.
    workload: Workload = []
    groups = threads // 3
    for index in range(threads):
        if index < 2 * groups:
            workload.append([("hydrogen", ())] * ops)
        elif index < 3 * groups:
            workload.append([("oxygen", ())] * ops)
        else:
            workload.append([])
    return workload


H2O_BARRIER = BenchmarkSpec(
    name="H2O Barrier",
    figure="8",
    origin="AutoSynch benchmark suite",
    source=H2O_SOURCE,
    hand_placements=(
        HandPlacement("hydrogen#0", "oxygen", conditional=True, broadcast=False),
    ),
    make_workload=_h2o_workload,
    thread_ladder=(3, 6, 9, 18, 33, 66, 129),
    default_ops_per_thread=30,
)


# ---------------------------------------------------------------------------
# Sleeping barber
# ---------------------------------------------------------------------------

SLEEPING_BARBER_SOURCE = """
monitor SleepingBarber {
    unsigned int waiting = 0;
    unsigned int served = 0;

    atomic void customerArrives() {
        waiting++;
    }
    atomic void getHaircut() {
        waituntil (served > 0) { served--; }
    }
    atomic void cutHair() {
        waituntil (waiting > 0) { waiting--; served++; }
    }
}
"""


def _sleeping_barber_workload(threads: int, ops: int) -> Workload:
    customers = max(threads - 1, 1)
    workload: Workload = []
    for index in range(customers):
        workload.append([("customerArrives", ()), ("getHaircut", ())] * ops)
    workload.append([("cutHair", ())] * (customers * ops))
    return workload


SLEEPING_BARBER = BenchmarkSpec(
    name="Sleeping Barber",
    figure="8",
    origin="AutoSynch benchmark suite",
    source=SLEEPING_BARBER_SOURCE,
    hand_placements=(
        HandPlacement("customerArrives#0", "cutHair", conditional=False, broadcast=False),
        HandPlacement("cutHair#0", "getHaircut", conditional=False, broadcast=False),
    ),
    make_workload=_sleeping_barber_workload,
    default_ops_per_thread=30,
)


# ---------------------------------------------------------------------------
# Round robin (turn taking with a thread-local turn id)
# ---------------------------------------------------------------------------

ROUND_ROBIN_SOURCE = """
monitor RoundRobin {
    int turn = 0;

    atomic void takeTurn(int id) {
        waituntil (turn == id) { turn++; }
    }
}
"""


def _round_robin_workload(threads: int, ops: int) -> Workload:
    workload: Workload = []
    for index in range(threads):
        turns: ThreadOps = [("takeTurn", (index + round_number * threads,))
                            for round_number in range(ops)]
        workload.append(turns)
    return workload


ROUND_ROBIN = BenchmarkSpec(
    name="Round Robin",
    figure="8",
    origin="AutoSynch benchmark suite",
    source=ROUND_ROBIN_SOURCE,
    hand_placements=(
        # The next turn holder's identity is thread-local, so the hand-written
        # monitor broadcasts after every turn.
        HandPlacement("takeTurn#0", "takeTurn", conditional=True, broadcast=True),
    ),
    make_workload=_round_robin_workload,
    default_ops_per_thread=15,
)


# ---------------------------------------------------------------------------
# Parameterized bounded buffer (put/take n items at a time)
# ---------------------------------------------------------------------------

PARAM_BOUNDED_BUFFER_SOURCE = """
monitor ParamBoundedBuffer {
    const int CAPACITY = 16;
    unsigned int count = 0;

    atomic void put(int n) {
        waituntil (count + n <= CAPACITY) { count = count + n; }
    }
    atomic void take(int n) {
        waituntil (count >= n) { count = count - n; }
    }
}
"""


def _param_bounded_buffer_workload(threads: int, ops: int) -> Workload:
    sizes = [1, 2, 3]
    workload: Workload = []
    pairs = max(threads // 2, 1)
    for index in range(threads):
        if index < pairs:
            workload.append([("put", (sizes[op % len(sizes)],)) for op in range(ops)])
        elif index < 2 * pairs:
            workload.append([("take", (sizes[op % len(sizes)],)) for op in range(ops)])
        else:
            workload.append([])
    return workload


PARAM_BOUNDED_BUFFER = BenchmarkSpec(
    name="Parameterized Bounded Buffer",
    figure="8",
    origin="AutoSynch benchmark suite",
    source=PARAM_BOUNDED_BUFFER_SOURCE,
    hand_placements=(
        HandPlacement("put#0", "take", conditional=True, broadcast=True),
        HandPlacement("take#0", "put", conditional=True, broadcast=True),
    ),
    make_workload=_param_bounded_buffer_workload,
    default_ops_per_thread=30,
)


# ---------------------------------------------------------------------------
# Dining philosophers (fixed-size fork array, atomic two-fork pickup)
# ---------------------------------------------------------------------------

DINING_PHILOSOPHERS_SOURCE = """
monitor DiningPhilosophers {
    const int N = 3;
    boolean forks[N];

    atomic void pickUp(int leftFork, int rightFork) {
        waituntil (!forks[leftFork] && !forks[rightFork]) {
            forks[leftFork] = true;
            forks[rightFork] = true;
        }
    }
    atomic void putDown(int leftFork, int rightFork) {
        forks[leftFork] = false;
        forks[rightFork] = false;
    }
}
"""


def _dining_philosophers_workload(threads: int, ops: int) -> Workload:
    workload: Workload = []
    table_size = 3
    for index in range(threads):
        philosopher = index % table_size
        left, right = philosopher, (philosopher + 1) % table_size
        workload.append([("pickUp", (left, right)), ("putDown", (left, right))] * ops)
    return workload


DINING_PHILOSOPHERS = BenchmarkSpec(
    name="Dining Philosophers",
    figure="8",
    origin="AutoSynch benchmark suite",
    source=DINING_PHILOSOPHERS_SOURCE,
    hand_placements=(
        # The hand-written monitor knows the problem structure and only wakes
        # the neighbours of the releasing philosopher; at the CCR granularity
        # that is a conditional broadcast on the pickup condition.
        HandPlacement("putDown#0", "pickUp", conditional=True, broadcast=True),
    ),
    make_workload=_dining_philosophers_workload,
    default_ops_per_thread=20,
)


FIGURE8: List[BenchmarkSpec] = [
    BOUNDED_BUFFER,
    H2O_BARRIER,
    SLEEPING_BARBER,
    ROUND_ROBIN,
    TICKETED_READERS_WRITERS,
    PARAM_BOUNDED_BUFFER,
    DINING_PHILOSOPHERS,
    READERS_WRITERS,
]
