"""Registry of all evaluation benchmarks, keyed by name."""

from __future__ import annotations

from typing import Dict, List

from repro.benchmarks_lib.autosynch_suite import FIGURE8
from repro.benchmarks_lib.github_suite import FIGURE9
from repro.benchmarks_lib.spec import BenchmarkSpec

FIGURE8_BENCHMARKS: List[BenchmarkSpec] = list(FIGURE8)
FIGURE9_BENCHMARKS: List[BenchmarkSpec] = list(FIGURE9)

ALL_BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.name: spec for spec in FIGURE8_BENCHMARKS + FIGURE9_BENCHMARKS
}


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark by its paper name (case-insensitive, punctuation-lax)."""
    if name in ALL_BENCHMARKS:
        return ALL_BENCHMARKS[name]
    normalized = name.lower().replace(" ", "").replace("-", "")
    for spec in ALL_BENCHMARKS.values():
        if spec.name.lower().replace(" ", "").replace("-", "") == normalized:
            return spec
    raise KeyError(f"unknown benchmark {name!r}; known: {sorted(ALL_BENCHMARKS)}")
