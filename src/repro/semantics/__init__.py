"""Reference trace semantics for implicit- and explicit-signal monitors (§3).

This package is the executable counterpart of the paper's formal model:

* :mod:`repro.semantics.state` — monitor states (shared + per-thread locals)
  and a concrete statement interpreter;
* :mod:`repro.semantics.traces` — events, traces, and syntactic
  well-formedness (Appendix A);
* :mod:`repro.semantics.implicit` — the implicit-signal transition relation
  (Figure 4) and trace normalization (Definition 3.3);
* :mod:`repro.semantics.explicit` — the explicit-signal transition relation
  (Figures 5 and 6) driven by placed notifications;
* :mod:`repro.semantics.equivalence` — bounded differential checking of
  Definition 3.4, used to cross-validate the placement algorithm on small
  thread/step budgets.
"""

from repro.semantics.state import MonitorState, execute_statement
from repro.semantics.traces import Event, trace_is_well_formed, thread_projection
from repro.semantics.implicit import ImplicitSemantics, TraceOutcome
from repro.semantics.explicit import ExplicitSemantics
from repro.semantics.equivalence import (
    EquivalenceReport,
    check_bounded_equivalence,
    enumerate_feasible_traces,
)

__all__ = [
    "MonitorState", "execute_statement",
    "Event", "trace_is_well_formed", "thread_projection",
    "ImplicitSemantics", "ExplicitSemantics", "TraceOutcome",
    "EquivalenceReport", "check_bounded_equivalence", "enumerate_feasible_traces",
]
