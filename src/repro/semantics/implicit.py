"""The implicit-signal transition relation (paper Figure 4).

Configurations are ``(σ, B, N)`` where ``B`` is the set of blocked
(thread, CCR) pairs and ``N`` the set of notified pairs.  The four rules are:

* (1a) a thread blocks on a false guard it was not blocked on;
* (1b) a notified thread re-checks a still-false guard and goes back to sleep
  (a *spurious* notification — traces avoiding this rule are *normalized*);
* (2a) a non-blocked thread executes a CCR whose guard holds; every blocked
  pair whose guard became true is notified;
* (2b) the minimum notified pair executes its CCR, leaving ``B``/``N``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Sequence, Set, Tuple

from repro.lang.ast import CCR, Monitor
from repro.semantics.state import MonitorState
from repro.semantics.traces import Event

Pair = Tuple[int, str]


@dataclass(frozen=True)
class Configuration:
    """An immutable ``(σ, B, N)`` configuration."""

    state: MonitorState
    blocked: FrozenSet[Pair]
    notified: FrozenSet[Pair]


@dataclass(frozen=True)
class TraceOutcome:
    """Result of replaying a trace from an initial state."""

    feasible: bool
    final: Optional[Configuration] = None
    used_spurious_wakeup: bool = False

    @property
    def normalized(self) -> bool:
        """Whether the replay is a witness of normalization (no rule 1b used)."""
        return self.feasible and not self.used_spurious_wakeup


def _minimum(pairs: FrozenSet[Pair]) -> Optional[Pair]:
    """The paper's ``min`` over the fixed total event order (lexicographic)."""
    return min(pairs) if pairs else None


class ImplicitSemantics:
    """Executable form of the Figure 4 transition relation for one monitor."""

    def __init__(self, monitor: Monitor):
        self.monitor = monitor
        self._ccrs: Dict[str, CCR] = {ccr.label: ccr for _m, ccr in monitor.ccrs()}
        self._shared_names = monitor.field_names()

    def ccr(self, label: str) -> CCR:
        return self._ccrs[label]

    def initial_configuration(self, state: MonitorState) -> Configuration:
        return Configuration(state, frozenset(), frozenset())

    # -- single step ----------------------------------------------------------

    def step(self, config: Configuration, event: Event) -> Optional[Tuple[Configuration, bool]]:
        """Apply one event; returns (new config, used_rule_1b) or None if infeasible."""
        ccr = self._ccrs.get(event.ccr_label)
        if ccr is None:
            return None
        state = config.state
        guard_holds = bool(state.evaluate(ccr.guard, event.thread))
        pair = event.key

        if not event.entered:
            if guard_holds:
                return None
            if pair not in config.blocked:
                # Rule (1a): newly blocked.
                return (Configuration(state, config.blocked | {pair}, config.notified), False)
            if pair in config.notified:
                # Rule (1b): spurious wake-up, go back to sleep.
                return (Configuration(state, config.blocked, config.notified - {pair}), True)
            return None

        if not guard_holds:
            return None
        if pair in config.blocked:
            # Rule (2b): a previously blocked pair may only run once notified.
            # The paper totally orders notified events and runs the minimum;
            # because that order is chosen so that restriction commutes with
            # subsets (§ Appendix B), the executable model lets any notified
            # pair run, which is the standard "some woken thread wins" reading.
            if pair not in config.notified:
                return None
            new_state = state.run(ccr.body, event.thread, self._shared_names)
            newly_notified = self._notify_all_true(config.blocked - {pair}, new_state)
            notified = (config.notified | newly_notified) - {pair}
            return (Configuration(new_state, config.blocked - {pair}, notified), False)
        # Rule (2a): a fresh thread enters and executes.
        new_state = state.run(ccr.body, event.thread, self._shared_names)
        newly_notified = self._notify_all_true(config.blocked, new_state)
        return (Configuration(new_state, config.blocked, config.notified | newly_notified), False)

    def _notify_all_true(self, blocked: FrozenSet[Pair], state: MonitorState) -> Set[Pair]:
        """N′ of rules 2a/2b: blocked pairs whose guards became true."""
        notified: Set[Pair] = set()
        for thread, label in blocked:
            guard = self._ccrs[label].guard
            if bool(state.evaluate(guard, thread)):
                notified.add((thread, label))
        return notified

    # -- whole traces ---------------------------------------------------------

    def successors(self, config: Configuration, event: Event):
        """All successor configurations for *event* (deterministic: 0 or 1)."""
        step = self.step(config, event)
        return [step] if step is not None else []

    def run_trace(self, state: MonitorState, trace: Sequence[Event]) -> TraceOutcome:
        """Replay *trace* from *state*; feasibility follows Figure 4."""
        config = self.initial_configuration(state)
        used_1b = False
        for event in trace:
            step = self.step(config, event)
            if step is None:
                return TraceOutcome(False)
            config, spurious = step
            used_1b = used_1b or spurious
        return TraceOutcome(True, config, used_1b)
