"""The explicit-signal transition relation (paper Figures 5 and 6).

The only difference from the implicit relation is how the notified set grows
after a CCR executes: instead of waking every blocked pair whose guard became
true, the executed CCR's *placed* notifications determine who gets woken —
``GetSignals`` wakes one blocked pair per signalled predicate,
``GetBroadcasts`` wakes all of them, and conditional (``?``) notifications
first evaluate the predicate in the post-state for the candidate thread.

The choice of *which* waiter a single ``signal`` wakes is nondeterministic in
real condition-variable implementations; the paper abstracts it with a total
order chosen to make its proofs go through.  The executable model exposes the
nondeterminism directly: :meth:`ExplicitSemantics.successors` returns one
successor configuration per possible signal target, and a trace is feasible
when *some* resolution of those choices consumes it.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.logic.terms import Expr
from repro.placement.target import ExplicitCCR, ExplicitMonitor
from repro.semantics.implicit import Configuration, Pair, TraceOutcome
from repro.semantics.state import MonitorState
from repro.semantics.traces import Event


class ExplicitSemantics:
    """Executable form of the Figure 5 transition relation for a placed monitor."""

    def __init__(self, explicit: ExplicitMonitor):
        self.explicit = explicit
        self._ccrs: Dict[str, ExplicitCCR] = {
            ccr.label: ccr for method in explicit.methods for ccr in method.ccrs
        }
        self._shared_names = tuple(decl.name for decl in explicit.fields)

    def ccr(self, label: str) -> ExplicitCCR:
        return self._ccrs[label]

    def initial_configuration(self, state: MonitorState) -> Configuration:
        return Configuration(state, frozenset(), frozenset())

    # -- auxiliary functions of Figure 6 --------------------------------------

    def _events_on(self, blocked: FrozenSet[Pair], predicate: Expr) -> Tuple[Pair, ...]:
        """Events(B, p): blocked pairs waiting on exactly the predicate *p*."""
        matches = [pair for pair in blocked if self._ccrs[pair[1]].guard == predicate]
        return tuple(sorted(matches))

    def _signal_choices(self, ccr: ExplicitCCR, state: MonitorState,
                        blocked: FrozenSet[Pair]) -> List[Set[Pair]]:
        """All possible woken-sets produced by Signals(w) (one target per signal)."""
        per_signal: List[List[Optional[Pair]]] = []
        for notification in ccr.signals:
            candidates = [
                pair for pair in self._events_on(blocked, notification.predicate)
                if not notification.conditional
                or bool(state.evaluate(notification.predicate, pair[0]))
            ]
            per_signal.append(candidates if candidates else [None])
        choices: List[Set[Pair]] = []
        for combo in itertools.product(*per_signal) if per_signal else [()]:
            woken = {pair for pair in combo if pair is not None}
            if woken not in choices:
                choices.append(woken)
        return choices or [set()]

    def _get_broadcasts(self, ccr: ExplicitCCR, state: MonitorState,
                        blocked: FrozenSet[Pair]) -> Set[Pair]:
        """GetBroadcasts(w, σ′, B): every matching waiter, subject to the ? check."""
        woken: Set[Pair] = set()
        for notification in ccr.broadcasts:
            for pair in self._events_on(blocked, notification.predicate):
                if notification.conditional:
                    if not bool(state.evaluate(notification.predicate, pair[0])):
                        continue
                woken.add(pair)
        return woken

    # -- transition relation ---------------------------------------------------

    def successors(self, config: Configuration, event: Event) -> List[Tuple[Configuration, bool]]:
        """All successor configurations reachable by *event* (possibly several)."""
        ccr = self._ccrs.get(event.ccr_label)
        if ccr is None:
            return []
        state = config.state
        guard_holds = bool(state.evaluate(ccr.guard, event.thread))
        pair = event.key

        if not event.entered:
            if guard_holds:
                return []
            if pair not in config.blocked:
                return [(Configuration(state, config.blocked | {pair}, config.notified), False)]
            if pair in config.notified:
                return [(Configuration(state, config.blocked, config.notified - {pair}), True)]
            return []

        if not guard_holds:
            return []
        if pair in config.blocked and pair not in config.notified:
            return []
        new_state = state.run(ccr.body, event.thread, self._shared_names)
        remaining_blocked = config.blocked - {pair}
        broadcast_woken = self._get_broadcasts(ccr, new_state, remaining_blocked)
        results: List[Tuple[Configuration, bool]] = []
        for signal_woken in self._signal_choices(ccr, new_state, remaining_blocked):
            woken = signal_woken | broadcast_woken
            if pair in config.blocked:
                notified = (config.notified | woken) - {pair}
                blocked = config.blocked - {pair}
            else:
                notified = config.notified | woken
                blocked = config.blocked
            candidate = (Configuration(new_state, blocked, frozenset(notified)), False)
            if candidate not in results:
                results.append(candidate)
        return results

    def step(self, config: Configuration, event: Event) -> Optional[Tuple[Configuration, bool]]:
        """Deterministic convenience wrapper: the first successor, if any."""
        successors = self.successors(config, event)
        return successors[0] if successors else None

    # -- whole traces ---------------------------------------------------------

    def run_trace(self, state: MonitorState, trace: Sequence[Event]) -> TraceOutcome:
        """Replay *trace*; feasible iff some resolution of signal targets consumes it."""
        frontier: List[Tuple[Configuration, bool]] = [(self.initial_configuration(state), False)]
        for event in trace:
            next_frontier: List[Tuple[Configuration, bool]] = []
            for config, used_1b in frontier:
                for successor, spurious in self.successors(config, event):
                    entry = (successor, used_1b or spurious)
                    if entry not in next_frontier:
                        next_frontier.append(entry)
            if not next_frontier:
                return TraceOutcome(False)
            frontier = next_frontier
        config, used_1b = frontier[0]
        return TraceOutcome(True, config, used_1b)
