"""Concrete monitor states and statement interpretation.

A :class:`MonitorState` is the σ of Definition 3.1: a valuation of shared
variables (identical for every thread) plus per-thread valuations of
thread-local variables.  The interpreter executes loop-free-or-terminating
statements concretely; it is the ⇓ relation of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple, Union

from repro.logic.evaluate import evaluate
from repro.logic.terms import BOOL, Expr, INT
from repro.lang.ast import (
    ArrayAssign,
    Assign,
    If,
    LocalDecl,
    Monitor,
    Seq,
    Skip,
    Stmt,
    While,
)

Value = Union[int, bool]

#: Safety bound on concrete loop iterations (the formal model assumes
#: terminating CCR bodies; a runaway loop indicates a broken benchmark).
_MAX_LOOP_ITERATIONS = 100_000


class InterpretationError(RuntimeError):
    """Raised when a statement cannot be executed concretely."""


@dataclass
class MonitorState:
    """σ: shared-variable valuation plus per-thread local valuations."""

    shared: Dict[str, Value] = field(default_factory=dict)
    locals: Dict[int, Dict[str, Value]] = field(default_factory=dict)

    @staticmethod
    def initial(monitor: Monitor) -> "MonitorState":
        """The state produced by the monitor constructor (all fields initialized)."""
        state = MonitorState()
        ctor_env = execute_statement(monitor.constructor(), {})
        for decl in monitor.fields:
            default: Value = 0 if decl.sort is INT else False
            state.shared[decl.name] = ctor_env.get(decl.name, default)
        return state

    def copy(self) -> "MonitorState":
        return MonitorState(dict(self.shared),
                            {tid: dict(env) for tid, env in self.locals.items()})

    def environment(self, thread: int) -> Dict[str, Value]:
        """The combined valuation a given thread sees (σ(t, ·))."""
        env = dict(self.shared)
        env.update(self.locals.get(thread, {}))
        return env

    def set_locals(self, thread: int, values: Mapping[str, Value]) -> None:
        self.locals.setdefault(thread, {}).update(values)

    def evaluate(self, expr: Expr, thread: int) -> Value:
        """(σ, t) |= p  /  term evaluation for thread *t*."""
        return evaluate(expr, self.environment(thread))

    def run(self, stmt: Stmt, thread: int, shared_names: Tuple[str, ...]) -> "MonitorState":
        """⟨s, t, σ⟩ ⇓ σ′ — execute *stmt* as thread *thread*, returning the new state."""
        env = self.environment(thread)
        result_env = execute_statement(stmt, env)
        new_state = self.copy()
        thread_locals = new_state.locals.setdefault(thread, {})
        for name, value in result_env.items():
            if name in shared_names:
                new_state.shared[name] = value
            else:
                thread_locals[name] = value
        return new_state


def execute_statement(stmt: Stmt, environment: Mapping[str, Value]) -> Dict[str, Value]:
    """Execute *stmt* over a flat environment, returning the updated environment."""
    env: Dict[str, Value] = dict(environment)
    _execute(stmt, env)
    return env


def _execute(stmt: Stmt, env: Dict[str, Value]) -> None:
    if isinstance(stmt, Skip):
        return
    if isinstance(stmt, Assign):
        env[stmt.target] = evaluate(stmt.value, env)
        return
    if isinstance(stmt, LocalDecl):
        env[stmt.name] = evaluate(stmt.init, env)
        return
    if isinstance(stmt, ArrayAssign):
        raise InterpretationError("array assignments must be scalarized before execution")
    if isinstance(stmt, Seq):
        for child in stmt.stmts:
            _execute(child, env)
        return
    if isinstance(stmt, If):
        branch = stmt.then if evaluate(stmt.cond, env) else stmt.orelse
        _execute(branch, env)
        return
    if isinstance(stmt, While):
        iterations = 0
        while evaluate(stmt.cond, env):
            _execute(stmt.body, env)
            iterations += 1
            if iterations > _MAX_LOOP_ITERATIONS:
                raise InterpretationError("loop exceeded the interpreter's iteration bound")
        return
    raise InterpretationError(f"cannot execute statement {type(stmt).__name__}")
