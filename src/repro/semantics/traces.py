"""Monitor traces and syntactic well-formedness (paper §3.2 and Appendix A).

An event ``(t, w, b)`` records that thread *t* attempted the CCR *w* and
either got blocked (``b = False``) or executed it in full (``b = True``).
A trace is *syntactically well-formed* when

1. each thread's projection is a sequence of complete method CCR-sequences
   followed by at most one prefix of a method, and
2. a thread that is not at a method boundary is immediately followed in the
   trace by its own next CCR (threads leave the monitor only by blocking or
   by finishing a method).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.lang.ast import MethodDecl, Monitor


@dataclass(frozen=True)
class Event:
    """A monitor event ``(thread, ccr_label, entered)``."""

    thread: int
    ccr_label: str
    entered: bool

    @property
    def key(self) -> Tuple[int, str]:
        """The paper's ē — the (thread, CCR) pair without the boolean."""
        return (self.thread, self.ccr_label)

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        flag = "T" if self.entered else "F"
        return f"({self.thread},{self.ccr_label},{flag})"


def method_ccr_labels(monitor: Monitor) -> Dict[str, Tuple[str, ...]]:
    """Per-method tuple of CCR labels in program order."""
    return {method.name: tuple(ccr.label for ccr in method.ccrs)
            for method in monitor.methods}


def method_of_label(label: str) -> str:
    """The method name encoded in a CCR label (``"enterReader#0"`` → ``"enterReader"``)."""
    return label.split("#")[0]


def thread_projection(trace: Sequence[Event], thread: int) -> List[str]:
    """τ↓t of Definition 10.1: the labels of the CCRs *thread* fully executed."""
    return [event.ccr_label for event in trace
            if event.thread == thread and event.entered]


def _projection_well_formed(labels: List[str], monitor: Monitor) -> bool:
    """Check Definition 10.2 for one thread's projection."""
    per_method = method_ccr_labels(monitor)
    index = 0
    while index < len(labels):
        method_name = method_of_label(labels[index])
        expected = per_method.get(method_name)
        if expected is None:
            return False
        span = labels[index:index + len(expected)]
        if tuple(span) == expected:
            index += len(expected)
            continue
        # Otherwise this must be a prefix of the method and the trace must end here.
        if tuple(span) == expected[:len(span)] and index + len(span) == len(labels):
            return True
        return False
    return True


def trace_is_well_formed(trace: Sequence[Event], monitor: Monitor) -> bool:
    """Syntactic well-formedness (Definition 10.3)."""
    per_method = method_ccr_labels(monitor)
    threads = {event.thread for event in trace}
    for thread in threads:
        if not _projection_well_formed(thread_projection(trace, thread), monitor):
            return False
    # Condition 2: after a completed CCR that is not the last of its method,
    # the same thread must immediately attempt the successor CCR.
    for position, event in enumerate(trace[:-1]):
        if not event.entered:
            continue
        method_name = method_of_label(event.ccr_label)
        labels = per_method[method_name]
        label_index = labels.index(event.ccr_label)
        if label_index == len(labels) - 1:
            continue
        successor = labels[label_index + 1]
        next_event = trace[position + 1]
        if next_event.thread != event.thread or next_event.ccr_label != successor:
            return False
    # The trace must not end with a thread stuck mid-method (condition (c)):
    # a completed non-final CCR as the last event means the thread "left"
    # the monitor without blocking or finishing.
    if trace:
        last = trace[-1]
        if last.entered:
            labels = per_method[method_of_label(last.ccr_label)]
            if labels.index(last.ccr_label) != len(labels) - 1:
                return False
    return True
