"""Bounded differential checking of Definition 3.4.

The placement algorithm is proven correct in the paper (Theorem 4.1); this
module provides an *executable* cross-check used by the test suite: for a
small thread setup it enumerates every syntactically well-formed trace up to
a bounded number of events and verifies both directions of Definition 3.4:

1. every trace feasible under the explicit semantics is feasible under the
   implicit semantics and reaches the same shared state;
2. every *normalized* trace feasible under the implicit semantics is feasible
   under the explicit semantics and reaches the same shared state.

A violation of (2) would mean the generated monitor can deadlock threads the
implicit monitor would have woken — the bug class signal placement must avoid.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.lang.ast import Monitor
from repro.placement.target import ExplicitMonitor
from repro.semantics.explicit import ExplicitSemantics
from repro.semantics.implicit import Configuration, ImplicitSemantics
from repro.semantics.state import MonitorState, Value
from repro.semantics.traces import Event


@dataclass(frozen=True)
class ThreadPlan:
    """What one thread intends to do: run *methods* in order with given locals."""

    thread: int
    methods: Tuple[str, ...]
    locals: Tuple[Tuple[str, Value], ...] = ()

    def local_map(self) -> Dict[str, Value]:
        return dict(self.locals)


@dataclass
class EquivalenceReport:
    """Outcome of a bounded equivalence check."""

    explored_traces: int = 0
    implicit_only: List[Tuple[Event, ...]] = field(default_factory=list)
    explicit_only: List[Tuple[Event, ...]] = field(default_factory=list)
    state_mismatches: List[Tuple[Event, ...]] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.implicit_only and not self.explicit_only and not self.state_mismatches


def _initial_state(monitor: Monitor, plans: Sequence[ThreadPlan]) -> MonitorState:
    state = MonitorState.initial(monitor)
    for plan in plans:
        if plan.locals:
            state.set_locals(plan.thread, plan.local_map())
    return state


def _candidate_events(monitor: Monitor, plans: Sequence[ThreadPlan],
                      progress: Mapping[int, int]) -> List[Event]:
    """The next event each thread could attempt, in both blocked/entered flavours."""
    labels_per_method = {method.name: [ccr.label for ccr in method.ccrs]
                         for method in monitor.methods}
    flattened: Dict[int, List[str]] = {}
    for plan in plans:
        labels: List[str] = []
        for method_name in plan.methods:
            labels.extend(labels_per_method[method_name])
        flattened[plan.thread] = labels
    events: List[Event] = []
    for plan in plans:
        index = progress[plan.thread]
        labels = flattened[plan.thread]
        if index >= len(labels):
            continue
        label = labels[index]
        events.append(Event(plan.thread, label, True))
        events.append(Event(plan.thread, label, False))
    return events


def enumerate_feasible_traces(monitor: Monitor, semantics, plans: Sequence[ThreadPlan],
                              max_events: int) -> Dict[Tuple[Event, ...], Tuple[Configuration, bool]]:
    """All feasible traces (up to *max_events*) with their final configuration.

    The returned mapping's value is ``(final configuration, used_rule_1b)``.
    Traces are generated respecting per-thread program order, which makes them
    syntactically well-formed by construction; feasibility is decided by the
    supplied semantics (implicit or explicit).
    """
    state = _initial_state(monitor, plans)
    initial = semantics.initial_configuration(state)
    results: Dict[Tuple[Event, ...], Tuple[Configuration, bool]] = {(): (initial, False)}
    frontier: List[Tuple[Tuple[Event, ...], Configuration, Dict[int, int], bool]] = [
        ((), initial, {plan.thread: 0 for plan in plans}, False)
    ]
    while frontier:
        trace, config, progress, used_1b = frontier.pop()
        if len(trace) >= max_events:
            continue
        for event in _candidate_events(monitor, plans, progress):
            for new_config, spurious in semantics.successors(config, event):
                new_progress = dict(progress)
                if event.entered:
                    new_progress[event.thread] += 1
                new_trace = trace + (event,)
                new_used = used_1b or spurious
                existing = results.get(new_trace)
                # Prefer recording a normalized (no rule-1b) derivation when one exists.
                if existing is None or (existing[1] and not new_used):
                    results[new_trace] = (new_config, new_used)
                frontier.append((new_trace, new_config, new_progress, new_used))
    return results


def check_bounded_equivalence(monitor: Monitor, explicit: ExplicitMonitor,
                              plans: Sequence[ThreadPlan],
                              max_events: int = 6) -> EquivalenceReport:
    """Check both directions of Definition 3.4 over all bounded traces."""
    implicit_sem = ImplicitSemantics(monitor)
    explicit_sem = ExplicitSemantics(explicit)
    implicit_traces = enumerate_feasible_traces(monitor, implicit_sem, plans, max_events)
    explicit_traces = enumerate_feasible_traces(monitor, explicit_sem, plans, max_events)

    report = EquivalenceReport(explored_traces=len(implicit_traces) + len(explicit_traces))

    # Direction 1: explicit-feasible ==> implicit-feasible with the same state.
    for trace, (explicit_config, _spurious) in explicit_traces.items():
        implicit_entry = implicit_traces.get(trace)
        if implicit_entry is None:
            report.explicit_only.append(trace)
            continue
        if implicit_entry[0].state.shared != explicit_config.state.shared:
            report.state_mismatches.append(trace)

    # Direction 2: normalized implicit-feasible ==> explicit-feasible, same state.
    for trace, (implicit_config, used_1b) in implicit_traces.items():
        if used_1b:
            continue
        explicit_entry = explicit_traces.get(trace)
        if explicit_entry is None:
            report.implicit_only.append(trace)
            continue
        if explicit_entry[0].state.shared != implicit_config.state.shared:
            report.state_mismatches.append(trace)
    return report
