"""Bounded differential checking of Definition 3.4.

The placement algorithm is proven correct in the paper (Theorem 4.1); this
module provides an *executable* cross-check used by the test suite: for a
small thread setup it enumerates every syntactically well-formed trace up to
a bounded number of events and verifies both directions of Definition 3.4:

1. every trace feasible under the explicit semantics is feasible under the
   implicit semantics and reaches the same shared state;
2. every *normalized* trace feasible under the implicit semantics is feasible
   under the explicit semantics and reaches the same shared state.

A violation of (2) would mean the generated monitor can deadlock threads the
implicit monitor would have woken — the bug class signal placement must avoid.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.lang.ast import Monitor
from repro.placement.target import ExplicitMonitor
from repro.semantics.explicit import ExplicitSemantics
from repro.semantics.implicit import Configuration, ImplicitSemantics, TraceOutcome
from repro.semantics.state import MonitorState, Value
from repro.semantics.traces import Event


@dataclass(frozen=True)
class ThreadPlan:
    """What one thread intends to do: run *methods* in order with given locals."""

    thread: int
    methods: Tuple[str, ...]
    locals: Tuple[Tuple[str, Value], ...] = ()

    def local_map(self) -> Dict[str, Value]:
        return dict(self.locals)


@dataclass
class EquivalenceReport:
    """Outcome of a bounded equivalence check."""

    explored_traces: int = 0
    implicit_only: List[Tuple[Event, ...]] = field(default_factory=list)
    explicit_only: List[Tuple[Event, ...]] = field(default_factory=list)
    state_mismatches: List[Tuple[Event, ...]] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.implicit_only and not self.explicit_only and not self.state_mismatches


def _initial_state(monitor: Monitor, plans: Sequence[ThreadPlan]) -> MonitorState:
    state = MonitorState.initial(monitor)
    for plan in plans:
        if plan.locals:
            state.set_locals(plan.thread, plan.local_map())
    return state


def _candidate_events(monitor: Monitor, plans: Sequence[ThreadPlan],
                      progress: Mapping[int, int]) -> List[Event]:
    """The next event each thread could attempt, in both blocked/entered flavours."""
    labels_per_method = {method.name: [ccr.label for ccr in method.ccrs]
                         for method in monitor.methods}
    flattened: Dict[int, List[str]] = {}
    for plan in plans:
        labels: List[str] = []
        for method_name in plan.methods:
            labels.extend(labels_per_method[method_name])
        flattened[plan.thread] = labels
    events: List[Event] = []
    for plan in plans:
        index = progress[plan.thread]
        labels = flattened[plan.thread]
        if index >= len(labels):
            continue
        label = labels[index]
        events.append(Event(plan.thread, label, True))
        events.append(Event(plan.thread, label, False))
    return events


def enumerate_feasible_traces(monitor: Monitor, semantics, plans: Sequence[ThreadPlan],
                              max_events: int) -> Dict[Tuple[Event, ...], Tuple[Configuration, bool]]:
    """All feasible traces (up to *max_events*) with their final configuration.

    The returned mapping's value is ``(final configuration, used_rule_1b)``.
    Traces are generated respecting per-thread program order, which makes them
    syntactically well-formed by construction; feasibility is decided by the
    supplied semantics (implicit or explicit).
    """
    state = _initial_state(monitor, plans)
    initial = semantics.initial_configuration(state)
    results: Dict[Tuple[Event, ...], Tuple[Configuration, bool]] = {(): (initial, False)}
    frontier: List[Tuple[Tuple[Event, ...], Configuration, Dict[int, int], bool]] = [
        ((), initial, {plan.thread: 0 for plan in plans}, False)
    ]
    while frontier:
        trace, config, progress, used_1b = frontier.pop()
        if len(trace) >= max_events:
            continue
        for event in _candidate_events(monitor, plans, progress):
            for new_config, spurious in semantics.successors(config, event):
                new_progress = dict(progress)
                if event.entered:
                    new_progress[event.thread] += 1
                new_trace = trace + (event,)
                new_used = used_1b or spurious
                existing = results.get(new_trace)
                # Prefer recording a normalized (no rule-1b) derivation when one exists.
                if existing is None or (existing[1] and not new_used):
                    results[new_trace] = (new_config, new_used)
                frontier.append((new_trace, new_config, new_progress, new_used))
    return results


def check_bounded_equivalence(monitor: Monitor, explicit: ExplicitMonitor,
                              plans: Sequence[ThreadPlan],
                              max_events: int = 6) -> EquivalenceReport:
    """Check both directions of Definition 3.4 over all bounded traces."""
    implicit_sem = ImplicitSemantics(monitor)
    explicit_sem = ExplicitSemantics(explicit)
    implicit_traces = enumerate_feasible_traces(monitor, implicit_sem, plans, max_events)
    explicit_traces = enumerate_feasible_traces(monitor, explicit_sem, plans, max_events)

    report = EquivalenceReport(explored_traces=len(implicit_traces) + len(explicit_traces))

    # Direction 1: explicit-feasible ==> implicit-feasible with the same state.
    for trace, (explicit_config, _spurious) in explicit_traces.items():
        implicit_entry = implicit_traces.get(trace)
        if implicit_entry is None:
            report.explicit_only.append(trace)
            continue
        if implicit_entry[0].state.shared != explicit_config.state.shared:
            report.state_mismatches.append(trace)

    # Direction 2: normalized implicit-feasible ==> explicit-feasible, same state.
    for trace, (implicit_config, used_1b) in implicit_traces.items():
        if used_1b:
            continue
        explicit_entry = explicit_traces.get(trace)
        if explicit_entry is None:
            report.implicit_only.append(trace)
            continue
        if explicit_entry[0].state.shared != implicit_config.state.shared:
            report.state_mismatches.append(trace)
    return report


# ---------------------------------------------------------------------------
# Definition 3.4 witnesses for exploration counterexamples
# ---------------------------------------------------------------------------


def _trace_from_run(monitor: Monitor, programs, run) -> List[Event]:
    """Rebuild the §3.2 event trace of a scheduled coop run.

    Commits map to *entered* events.  A ``wait`` scheduler event maps to the
    waiting thread's pending CCR as a *blocked* event — positions are tracked
    exactly as the reference replay does, so multi-CCR methods resolve to the
    CCR the thread actually blocked in.
    """
    positions: Dict[int, Tuple[int, int]] = {tid: (0, 0)
                                             for tid in range(len(programs))}

    def pending_label(tid: int) -> Optional[str]:
        op_index, ccr_index = positions[tid]
        program = programs[tid]
        if op_index >= len(program):
            return None
        method = monitor.method(program[op_index][0])
        return method.ccrs[ccr_index].label

    trace: List[Event] = []
    for event in run.events:
        if event.kind == "commit":
            trace.append(Event(event.thread, event.label, True))
            op_index, ccr_index = positions[event.thread]
            method = monitor.method(programs[event.thread][op_index][0])
            if ccr_index + 1 < len(method.ccrs):
                positions[event.thread] = (op_index, ccr_index + 1)
            else:
                positions[event.thread] = (op_index + 1, 0)
        elif event.kind == "wait":
            label = pending_label(event.thread)
            if label is not None:
                trace.append(Event(event.thread, label, False))
    return trace


def _bind_args(monitor: Monitor,
               programs) -> Optional[Dict[Tuple[int, int], Dict[str, Value]]]:
    """Per-(thread, op) argument environments for a coop workload.

    Maps each call's positional arguments onto the method's parameter names
    so the trace semantics can evaluate parameter-reading guards and bodies.
    Returns ``None`` on an arity mismatch (no trace-level reading exists).
    """
    envs: Dict[Tuple[int, int], Dict[str, Value]] = {}
    for tid, program in enumerate(programs):
        for op_index, (method_name, args) in enumerate(program):
            params = monitor.method(method_name).param_names()
            if len(args) != len(params):
                return None
            if params:
                envs[(tid, op_index)] = dict(zip(params, args))
    return envs


def _run_trace_with_args(semantics, monitor: Monitor, programs,
                         arg_envs: Mapping[Tuple[int, int], Dict[str, Value]],
                         state: MonitorState,
                         trace: Sequence[Event]) -> TraceOutcome:
    """Replay *trace*, binding each call's arguments on method entry.

    Position tracking mirrors :func:`_trace_from_run`: a thread sits at
    ``(op_index, ccr_index)`` and advances on its entered events, so the
    binding for op *k* is installed exactly while the thread is at its first
    CCR.  Binding *replaces* the thread's locals — each call is a fresh
    activation frame, as in the coop runtime — and is idempotent across the
    repeated blocked events a waiting thread emits.

    A frontier of configurations makes this one replay loop serve both the
    deterministic implicit relation and the nondeterministic explicit one
    (feasible iff some resolution of signal targets consumes the trace);
    a rule-1b-free survivor is preferred so ``normalized`` stays meaningful.
    """
    positions: Dict[int, Tuple[int, int]] = {tid: (0, 0)
                                             for tid in range(len(programs))}

    def bind(config: Configuration, event: Event) -> Configuration:
        op_index, ccr_index = positions[event.thread]
        if ccr_index != 0 or op_index >= len(programs[event.thread]):
            return config
        env = arg_envs.get((event.thread, op_index))
        if env is None:
            return config
        new_state = config.state.copy()
        new_state.locals[event.thread] = dict(env)
        return replace(config, state=new_state)

    frontier: List[Tuple[Configuration, bool]] = [
        (semantics.initial_configuration(state), False)
    ]
    for event in trace:
        next_frontier: List[Tuple[Configuration, bool]] = []
        for config, used_1b in frontier:
            for successor, spurious in semantics.successors(bind(config, event), event):
                entry = (successor, used_1b or spurious)
                if entry not in next_frontier:
                    next_frontier.append(entry)
        if not next_frontier:
            return TraceOutcome(False)
        frontier = next_frontier
        if event.entered:
            op_index, ccr_index = positions[event.thread]
            if op_index < len(programs[event.thread]):
                method = monitor.method(programs[event.thread][op_index][0])
                if ccr_index + 1 < len(method.ccrs):
                    positions[event.thread] = (op_index, ccr_index + 1)
                else:
                    positions[event.thread] = (op_index + 1, 0)
    for config, used_1b in frontier:
        if not used_1b:
            return TraceOutcome(True, config, False)
    config, used_1b = frontier[0]
    return TraceOutcome(True, config, used_1b)


def _serialize_trace(trace: Sequence[Event]) -> list:
    return [[event.thread, event.ccr_label, event.entered] for event in trace]


def counterexample_witness(monitor: Monitor, explicit: ExplicitMonitor,
                           programs, run, verdict) -> Optional[dict]:
    """A Definition 3.4 witness (implicit-vs-explicit trace pair) for a finding.

    Exploration findings are scheduler-level (a commit order plus a verdict);
    the definition the placement theorem is stated against talks about
    *traces*.  This bridges the two: the counterexample's own run is replayed
    through both the implicit transition relation (Figure 4) and the placed
    monitor's explicit relation, producing a concrete trace that is feasible
    under exactly one side — the executable content of the ROADMAP's
    "signal-target nondeterminism" item.

    * ``lost-wakeup`` — the witness trace blocks the starved thread where the
      schedule did and appends its entered event: rules 2a/2b make it
      implicit-feasible (the commits turned its guard true, so it was
      notified), while the explicit relation — whose wakeups are exactly the
      placed signals — cannot fire it.
    * ``guard-violation`` — the commits themselves, as entered events, are
      implicit-*infeasible* at the violating commit.
    * ``state-divergence`` — the commit trace is feasible on both sides with
      the same AST-level state; the divergence is against the *compiled*
      instance, so the record carries the implicit final state and the
      oracle's field diff instead of an infeasibility flag.

    Returns ``None`` when no trace-pair form exists for the verdict kind
    (stalls, step limits) or when a call's arity does not match its method
    (nothing for the trace semantics to bind).  Parameterized workloads are
    handled by installing each call's argument environment at method entry
    during replay (:func:`_run_trace_with_args`).
    """
    arg_envs = _bind_args(monitor, programs)
    if arg_envs is None:
        return None
    programs = [list(program) for program in programs]
    implicit_sem = ImplicitSemantics(monitor)
    explicit_sem = ExplicitSemantics(explicit)
    state = MonitorState.initial(monitor)
    base = _trace_from_run(monitor, programs, run)
    kind = verdict.kind

    def outcome_pair(trace):
        try:
            implicit = _run_trace_with_args(
                implicit_sem, monitor, programs, arg_envs, state.copy(), list(trace))
            explicit_out = _run_trace_with_args(
                explicit_sem, monitor, programs, arg_envs, state.copy(), list(trace))
        except Exception:
            return None, None
        return implicit, explicit_out

    def filtered_base(tid: int) -> Optional[Tuple[Event, ...]]:
        """Entered events plus only *tid*'s current blocking event.

        Re-sleep cycles (woken, guard still false, back to sleep) show up as
        extra blocked events the implicit relation only admits as rule-1b
        steps; dropping them leaves a normalized candidate whose single
        blocked event establishes the starved pair before its entered event.
        """
        last_commit = -1
        for index, event in enumerate(base):
            if event.thread == tid and event.entered:
                last_commit = index
        first_wait = None
        for index in range(last_commit + 1, len(base)):
            event = base[index]
            if event.thread == tid and not event.entered:
                first_wait = index
                break
        if first_wait is None:
            return None
        return tuple(event for index, event in enumerate(base)
                     if event.entered or index == first_wait)

    if kind == "lost-wakeup":
        # Candidate completions: each sleeping thread's pending entered event.
        positions: Dict[int, Tuple[int, int]] = {tid: (0, 0)
                                                 for tid in range(len(programs))}
        for event in base:
            if event.entered:
                op_index, ccr_index = positions[event.thread]
                method = monitor.method(programs[event.thread][op_index][0])
                if ccr_index + 1 < len(method.ccrs):
                    positions[event.thread] = (op_index, ccr_index + 1)
                else:
                    positions[event.thread] = (op_index + 1, 0)
        for tid in sorted(run.waiting):
            op_index, ccr_index = positions[tid]
            if op_index >= len(programs[tid]):
                continue
            method = monitor.method(programs[tid][op_index][0])
            label = method.ccrs[ccr_index].label
            candidates = []
            filtered = filtered_base(tid)
            if filtered is not None:
                candidates.append(filtered + (Event(tid, label, True),))
            candidates.append(tuple(base) + (Event(tid, label, True),))
            for trace in candidates:
                implicit, explicit_out = outcome_pair(trace)
                if (implicit is not None and implicit.feasible
                        and not explicit_out.feasible):
                    return {
                        "kind": kind,
                        "trace": _serialize_trace(trace),
                        "implicit_feasible": True,
                        "implicit_normalized": implicit.normalized,
                        "explicit_feasible": False,
                        "starved_thread": tid,
                        "starved_ccr": label,
                    }
        return None

    if kind == "guard-violation" or kind == "commit-mismatch":
        trace = tuple(event for event in base if event.entered)
        implicit, explicit_out = outcome_pair(trace)
        if implicit is None or implicit.feasible:
            return None  # the violation is not visible at trace level
        return {
            "kind": kind,
            "trace": _serialize_trace(trace),
            "implicit_feasible": False,
            "explicit_feasible": explicit_out.feasible,
        }

    if kind == "state-divergence":
        trace = tuple(event for event in base if event.entered)
        implicit, explicit_out = outcome_pair(trace)
        if implicit is None or not implicit.feasible:
            return None
        return {
            "kind": kind,
            "trace": _serialize_trace(trace),
            "implicit_feasible": True,
            "implicit_normalized": implicit.normalized,
            "explicit_feasible": explicit_out.feasible,
            "implicit_state": {name: value for name, value
                               in sorted(implicit.final.state.shared.items())},
            "compiled_divergence": verdict.detail,
        }

    return None
