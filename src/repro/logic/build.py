"""Smart constructors for the logic AST.

The constructors perform light-weight normalization that keeps formulas small
without being a full simplifier:

* ``land`` / ``lor`` flatten nested conjunctions/disjunctions, drop neutral
  elements and short-circuit on absorbing elements;
* ``add`` flattens nested additions and folds adjacent integer constants;
* ``lnot`` cancels double negation and flips comparison operators;
* comparison builders fold constant operands.

Heavier rewriting lives in :mod:`repro.logic.simplify`.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.logic.terms import (
    BOOL,
    INT,
    Add,
    And,
    BoolConst,
    Eq,
    Expr,
    Forall,
    Exists,
    Ge,
    Gt,
    Iff,
    Implies,
    IntConst,
    Ite,
    Le,
    Lt,
    Mul,
    Ne,
    Neg,
    Not,
    Or,
    Sort,
    Sub,
    Var,
)

TRUE = BoolConst(True)
FALSE = BoolConst(False)

ExprLike = Union[Expr, int, bool]


def _coerce(value: ExprLike) -> Expr:
    """Turn a raw Python int/bool into the corresponding constant node."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return BoolConst(value)
    if isinstance(value, int):
        return IntConst(value)
    raise TypeError(f"cannot coerce {value!r} into an expression")


def v(name: str, sort: Sort = INT) -> Var:
    """Create a variable of the given sort (integer by default)."""
    return Var(name, sort)


def bvar(name: str) -> Var:
    """Create a boolean variable."""
    return Var(name, BOOL)


def i(value: int) -> IntConst:
    """Create an integer constant."""
    return IntConst(value)


def b(value: bool) -> BoolConst:
    """Create a boolean constant."""
    return BoolConst(bool(value))


# -- integer builders -------------------------------------------------------


def add(*args: ExprLike) -> Expr:
    """Integer addition; flattens and folds constants."""
    flat: list[Expr] = []
    const = 0
    for arg in args:
        node = _coerce(arg)
        if isinstance(node, IntConst):
            const += node.value
        elif isinstance(node, Add):
            for sub_node in node.args:
                if isinstance(sub_node, IntConst):
                    const += sub_node.value
                else:
                    flat.append(sub_node)
        else:
            flat.append(node)
    if const != 0 or not flat:
        flat.append(IntConst(const))
    if len(flat) == 1:
        return flat[0]
    return Add(tuple(flat))


def sub(left: ExprLike, right: ExprLike) -> Expr:
    """Integer subtraction with constant folding."""
    lhs, rhs = _coerce(left), _coerce(right)
    if isinstance(lhs, IntConst) and isinstance(rhs, IntConst):
        return IntConst(lhs.value - rhs.value)
    if isinstance(rhs, IntConst) and rhs.value == 0:
        return lhs
    return Sub(lhs, rhs)


def neg(operand: ExprLike) -> Expr:
    """Integer negation with constant folding."""
    node = _coerce(operand)
    if isinstance(node, IntConst):
        return IntConst(-node.value)
    if isinstance(node, Neg):
        return node.operand
    return Neg(node)


def mul(left: ExprLike, right: ExprLike) -> Expr:
    """Integer multiplication with constant folding and unit elimination."""
    lhs, rhs = _coerce(left), _coerce(right)
    if isinstance(lhs, IntConst) and isinstance(rhs, IntConst):
        return IntConst(lhs.value * rhs.value)
    for a, other in ((lhs, rhs), (rhs, lhs)):
        if isinstance(a, IntConst):
            if a.value == 0:
                return IntConst(0)
            if a.value == 1:
                return other
            if a.value == -1:
                return neg(other)
    return Mul(lhs, rhs)


def ite(cond: ExprLike, then: ExprLike, orelse: ExprLike) -> Expr:
    """If-then-else with constant-condition folding."""
    cond_e, then_e, else_e = _coerce(cond), _coerce(then), _coerce(orelse)
    if isinstance(cond_e, BoolConst):
        return then_e if cond_e.value else else_e
    if then_e == else_e:
        return then_e
    return Ite(cond_e, then_e, else_e)


# -- comparisons ------------------------------------------------------------


def _fold_cmp(node_cls, left: Expr, right: Expr, op):
    if isinstance(left, IntConst) and isinstance(right, IntConst):
        return BoolConst(op(left.value, right.value))
    if isinstance(left, BoolConst) and isinstance(right, BoolConst):
        return BoolConst(op(left.value, right.value))
    return node_cls(left, right)


def eq(left: ExprLike, right: ExprLike) -> Expr:
    lhs, rhs = _coerce(left), _coerce(right)
    if lhs == rhs:
        return TRUE
    return _fold_cmp(Eq, lhs, rhs, lambda a, c: a == c)


def ne(left: ExprLike, right: ExprLike) -> Expr:
    lhs, rhs = _coerce(left), _coerce(right)
    if lhs == rhs:
        return FALSE
    return _fold_cmp(Ne, lhs, rhs, lambda a, c: a != c)


def lt(left: ExprLike, right: ExprLike) -> Expr:
    return _fold_cmp(Lt, _coerce(left), _coerce(right), lambda a, c: a < c)


def le(left: ExprLike, right: ExprLike) -> Expr:
    return _fold_cmp(Le, _coerce(left), _coerce(right), lambda a, c: a <= c)


def gt(left: ExprLike, right: ExprLike) -> Expr:
    return _fold_cmp(Gt, _coerce(left), _coerce(right), lambda a, c: a > c)


def ge(left: ExprLike, right: ExprLike) -> Expr:
    return _fold_cmp(Ge, _coerce(left), _coerce(right), lambda a, c: a >= c)


# -- boolean builders -------------------------------------------------------

_NEGATED_CMP = {Eq: Ne, Ne: Eq, Lt: Ge, Ge: Lt, Gt: Le, Le: Gt}


def lnot(operand: ExprLike) -> Expr:
    """Logical negation, pushing through constants, double negation and comparisons."""
    node = _coerce(operand)
    if isinstance(node, BoolConst):
        return BoolConst(not node.value)
    if isinstance(node, Not):
        return node.operand
    cls = type(node)
    if cls in _NEGATED_CMP and node.left.sort is INT:
        return _NEGATED_CMP[cls](node.left, node.right)  # type: ignore[attr-defined]
    return Not(node)


def land(*args: ExprLike) -> Expr:
    """N-ary conjunction; flattens, deduplicates, short-circuits on false."""
    flat: list[Expr] = []
    seen: set[Expr] = set()
    for arg in args:
        node = _coerce(arg)
        parts = node.args if isinstance(node, And) else (node,)
        for part in parts:
            if isinstance(part, BoolConst):
                if not part.value:
                    return FALSE
                continue
            if part not in seen:
                seen.add(part)
                flat.append(part)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def lor(*args: ExprLike) -> Expr:
    """N-ary disjunction; flattens, deduplicates, short-circuits on true."""
    flat: list[Expr] = []
    seen: set[Expr] = set()
    for arg in args:
        node = _coerce(arg)
        parts = node.args if isinstance(node, Or) else (node,)
        for part in parts:
            if isinstance(part, BoolConst):
                if part.value:
                    return TRUE
                continue
            if part not in seen:
                seen.add(part)
                flat.append(part)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def implies(antecedent: ExprLike, consequent: ExprLike) -> Expr:
    """Implication with constant short-circuiting."""
    ant, con = _coerce(antecedent), _coerce(consequent)
    if isinstance(ant, BoolConst):
        return con if ant.value else TRUE
    if isinstance(con, BoolConst):
        return TRUE if con.value else lnot(ant)
    if ant == con:
        return TRUE
    return Implies(ant, con)


def iff(left: ExprLike, right: ExprLike) -> Expr:
    """Bi-implication with constant short-circuiting."""
    lhs, rhs = _coerce(left), _coerce(right)
    if lhs == rhs:
        return TRUE
    if isinstance(lhs, BoolConst):
        return rhs if lhs.value else lnot(rhs)
    if isinstance(rhs, BoolConst):
        return lhs if rhs.value else lnot(lhs)
    return Iff(lhs, rhs)


def forall(bound: Sequence[Var], body: ExprLike) -> Expr:
    """Universal quantification; collapses empty binders."""
    body_e = _coerce(body)
    bound = tuple(bound)
    if not bound or isinstance(body_e, BoolConst):
        return body_e
    if isinstance(body_e, Forall):
        return Forall(bound + body_e.bound, body_e.body)
    return Forall(bound, body_e)


def exists(bound: Sequence[Var], body: ExprLike) -> Expr:
    """Existential quantification; collapses empty binders."""
    body_e = _coerce(body)
    bound = tuple(bound)
    if not bound or isinstance(body_e, BoolConst):
        return body_e
    if isinstance(body_e, Exists):
        return Exists(bound + body_e.bound, body_e.body)
    return Exists(bound, body_e)


def conjuncts(expr: Expr) -> tuple[Expr, ...]:
    """Return the top-level conjuncts of *expr* (itself if not a conjunction)."""
    if isinstance(expr, And):
        return expr.args
    if isinstance(expr, BoolConst) and expr.value:
        return ()
    return (expr,)


def disjuncts(expr: Expr) -> tuple[Expr, ...]:
    """Return the top-level disjuncts of *expr* (itself if not a disjunction)."""
    if isinstance(expr, Or):
        return expr.args
    if isinstance(expr, BoolConst) and not expr.value:
        return ()
    return (expr,)
