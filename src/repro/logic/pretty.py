"""Pretty printing of logic expressions.

Two formats are provided:

* :func:`pretty` — compact infix syntax matching the paper's notation and the
  monitor DSL (``readers >= 0 && !writerIn``); it round-trips through
  :func:`repro.logic.parser.parse_formula`.
* :func:`to_smtlib` — SMT-LIB 2 s-expressions, matching the presentation of
  the AsyncDispatch invariant in the paper's Appendix D.
"""

from __future__ import annotations

from repro.logic.terms import (
    Add,
    And,
    BoolConst,
    Eq,
    Exists,
    Expr,
    Forall,
    Ge,
    Gt,
    Iff,
    Implies,
    IntConst,
    Ite,
    Le,
    Lt,
    Mul,
    Ne,
    Neg,
    Not,
    Or,
    Sub,
    Var,
)

# Precedence levels (higher binds tighter).
_PREC_IFF = 1
_PREC_IMPLIES = 2
_PREC_OR = 3
_PREC_AND = 4
_PREC_NOT = 5
_PREC_CMP = 6
_PREC_ADD = 7
_PREC_MUL = 8
_PREC_UNARY = 9
_PREC_ATOM = 10


def pretty(expr: Expr) -> str:
    """Render *expr* in infix notation."""
    return _render(expr, 0)


def _paren(text: str, prec: int, parent_prec: int) -> str:
    return f"({text})" if prec < parent_prec else text


def _render(expr: Expr, parent_prec: int) -> str:
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, IntConst):
        return str(expr.value) if expr.value >= 0 else _paren(str(expr.value), _PREC_UNARY, parent_prec)
    if isinstance(expr, BoolConst):
        return "true" if expr.value else "false"
    if isinstance(expr, Add):
        text = " + ".join(_render(arg, _PREC_ADD) for arg in expr.args)
        return _paren(text, _PREC_ADD, parent_prec)
    if isinstance(expr, Sub):
        text = f"{_render(expr.left, _PREC_ADD)} - {_render(expr.right, _PREC_ADD + 1)}"
        return _paren(text, _PREC_ADD, parent_prec)
    if isinstance(expr, Neg):
        return _paren(f"-{_render(expr.operand, _PREC_UNARY)}", _PREC_UNARY, parent_prec)
    if isinstance(expr, Mul):
        text = f"{_render(expr.left, _PREC_MUL)} * {_render(expr.right, _PREC_MUL)}"
        return _paren(text, _PREC_MUL, parent_prec)
    if isinstance(expr, Ite):
        text = (
            f"ite({_render(expr.cond, 0)}, {_render(expr.then, 0)}, {_render(expr.orelse, 0)})"
        )
        return text
    comparison_ops = {Eq: "==", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">="}
    for cls, symbol in comparison_ops.items():
        if isinstance(expr, cls):
            text = f"{_render(expr.left, _PREC_CMP + 1)} {symbol} {_render(expr.right, _PREC_CMP + 1)}"
            return _paren(text, _PREC_CMP, parent_prec)
    if isinstance(expr, Not):
        return _paren(f"!{_render(expr.operand, _PREC_NOT)}", _PREC_NOT, parent_prec)
    if isinstance(expr, And):
        text = " && ".join(_render(arg, _PREC_AND) for arg in expr.args)
        return _paren(text, _PREC_AND, parent_prec)
    if isinstance(expr, Or):
        text = " || ".join(_render(arg, _PREC_OR) for arg in expr.args)
        return _paren(text, _PREC_OR, parent_prec)
    if isinstance(expr, Implies):
        text = f"{_render(expr.antecedent, _PREC_IMPLIES + 1)} ==> {_render(expr.consequent, _PREC_IMPLIES)}"
        return _paren(text, _PREC_IMPLIES, parent_prec)
    if isinstance(expr, Iff):
        text = f"{_render(expr.left, _PREC_IFF + 1)} <==> {_render(expr.right, _PREC_IFF + 1)}"
        return _paren(text, _PREC_IFF, parent_prec)
    if isinstance(expr, Forall):
        binder = ", ".join(f"{var.name}: {var.var_sort.value}" for var in expr.bound)
        return _paren(f"forall {binder}. {_render(expr.body, 0)}", _PREC_IFF, parent_prec)
    if isinstance(expr, Exists):
        binder = ", ".join(f"{var.name}: {var.var_sort.value}" for var in expr.bound)
        return _paren(f"exists {binder}. {_render(expr.body, 0)}", _PREC_IFF, parent_prec)
    raise TypeError(f"cannot pretty-print node {type(expr).__name__}")


def to_smtlib(expr: Expr) -> str:
    """Render *expr* as an SMT-LIB 2 s-expression."""
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, IntConst):
        return str(expr.value) if expr.value >= 0 else f"(- {-expr.value})"
    if isinstance(expr, BoolConst):
        return "true" if expr.value else "false"
    ops = {
        Add: "+", Sub: "-", Neg: "-", Mul: "*",
        Eq: "=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
        Not: "not", And: "and", Or: "or", Implies: "=>",
    }
    if isinstance(expr, Ne):
        return f"(not (= {to_smtlib(expr.left)} {to_smtlib(expr.right)}))"
    if isinstance(expr, Iff):
        return f"(= {to_smtlib(expr.left)} {to_smtlib(expr.right)})"
    if isinstance(expr, Ite):
        return f"(ite {to_smtlib(expr.cond)} {to_smtlib(expr.then)} {to_smtlib(expr.orelse)})"
    if isinstance(expr, (Forall, Exists)):
        keyword = "forall" if isinstance(expr, Forall) else "exists"
        binder = " ".join(f"({var.name} {var.var_sort.value})" for var in expr.bound)
        return f"({keyword} ({binder}) {to_smtlib(expr.body)})"
    for cls, symbol in ops.items():
        if isinstance(expr, cls):
            parts = " ".join(to_smtlib(child) for child in expr.children())
            return f"({symbol} {parts})"
    raise TypeError(f"cannot render node {type(expr).__name__} as SMT-LIB")
