"""Bottom-up formula simplification.

The simplifier re-applies the smart constructors of :mod:`repro.logic.build`
over the whole tree (constant folding, neutral/absorbing element removal,
flattening, double-negation and comparison-negation elimination), plus a few
linear-arithmetic normalizations:

* comparisons between linear terms are normalized to have a constant-free
  left side when both sides fold to constants on one side;
* syntactically contradictory / tautological conjuncts such as ``x < x`` are
  removed by the constant folding of the builders.

The simplifier is *not* a decision procedure; it preserves logical
equivalence and is safe to call anywhere.
"""

from __future__ import annotations

from repro.logic import build
from repro.logic.terms import (
    Add,
    And,
    BoolConst,
    Eq,
    Exists,
    Expr,
    Forall,
    Ge,
    Gt,
    Iff,
    Implies,
    IntConst,
    Ite,
    Le,
    Lt,
    Mul,
    Ne,
    Neg,
    Not,
    Or,
    Sub,
    Var,
)


def simplify(expr: Expr) -> Expr:
    """Return an equivalent, usually smaller, expression."""
    return _simplify(expr)


def _simplify(expr: Expr) -> Expr:
    if isinstance(expr, (Var, IntConst, BoolConst)):
        return expr
    if isinstance(expr, Add):
        return build.add(*[_simplify(arg) for arg in expr.args])
    if isinstance(expr, Sub):
        return build.sub(_simplify(expr.left), _simplify(expr.right))
    if isinstance(expr, Neg):
        return build.neg(_simplify(expr.operand))
    if isinstance(expr, Mul):
        return build.mul(_simplify(expr.left), _simplify(expr.right))
    if isinstance(expr, Ite):
        return build.ite(_simplify(expr.cond), _simplify(expr.then), _simplify(expr.orelse))
    if isinstance(expr, Eq):
        return build.eq(_simplify(expr.left), _simplify(expr.right))
    if isinstance(expr, Ne):
        return build.ne(_simplify(expr.left), _simplify(expr.right))
    if isinstance(expr, Lt):
        return build.lt(_simplify(expr.left), _simplify(expr.right))
    if isinstance(expr, Le):
        return build.le(_simplify(expr.left), _simplify(expr.right))
    if isinstance(expr, Gt):
        return build.gt(_simplify(expr.left), _simplify(expr.right))
    if isinstance(expr, Ge):
        return build.ge(_simplify(expr.left), _simplify(expr.right))
    if isinstance(expr, Not):
        return build.lnot(_simplify(expr.operand))
    if isinstance(expr, And):
        return _simplify_and(expr)
    if isinstance(expr, Or):
        return _simplify_or(expr)
    if isinstance(expr, Implies):
        return build.implies(_simplify(expr.antecedent), _simplify(expr.consequent))
    if isinstance(expr, Iff):
        return build.iff(_simplify(expr.left), _simplify(expr.right))
    if isinstance(expr, Forall):
        return build.forall(expr.bound, _simplify(expr.body))
    if isinstance(expr, Exists):
        return build.exists(expr.bound, _simplify(expr.body))
    raise TypeError(f"cannot simplify node {type(expr).__name__}")


def _simplify_and(expr: And) -> Expr:
    simplified = build.land(*[_simplify(arg) for arg in expr.args])
    if not isinstance(simplified, And):
        return simplified
    # drop conjuncts whose negation is also present -> false, and detect p & !p
    literals = set(simplified.args)
    for lit in simplified.args:
        if build.lnot(lit) in literals:
            return build.FALSE
    return simplified


def _simplify_or(expr: Or) -> Expr:
    simplified = build.lor(*[_simplify(arg) for arg in expr.args])
    if not isinstance(simplified, Or):
        return simplified
    literals = set(simplified.args)
    for lit in simplified.args:
        if build.lnot(lit) in literals:
            return build.TRUE
    return simplified
