"""Expression AST for quantified linear integer arithmetic with booleans.

Every node is an immutable (frozen) dataclass, so expressions are hashable
and can be used as dictionary keys, cached, and structurally compared.  The
AST deliberately mirrors the fragment used by the Expresso paper: monitor
guards and verification conditions are boolean combinations of linear
integer (in)equalities and boolean variables, occasionally under a
quantifier prefix introduced by abduction.

Two sorts exist, :data:`INT` and :data:`BOOL`.  Sort checking is performed by
the smart constructors in :mod:`repro.logic.build` and by
:func:`sort_of`; constructing ill-sorted nodes directly is considered a
programming error and is caught lazily by :func:`sort_of`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple


class Sort(enum.Enum):
    """The two sorts of the logic: mathematical integers and booleans."""

    INT = "Int"
    BOOL = "Bool"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


INT = Sort.INT
BOOL = Sort.BOOL


class SortError(TypeError):
    """Raised when an expression is ill-sorted."""


@dataclass(frozen=True)
class Expr:
    """Base class for all expression nodes."""


    @property
    def sort(self) -> Sort:
        return sort_of(self)

    def children(self) -> Tuple["Expr", ...]:
        """Return the immediate sub-expressions of this node."""
        return ()

    def __getstate__(self):
        # The memoized hash (see _install_hash_caching) depends on the
        # per-process string hash seed; shipping it to another process —
        # e.g. pickling a benchmark spec to a compile worker — would break
        # dict lookups there.  Recompute on first use instead.
        state = self.__dict__.copy()
        state.pop("_cached_hash", None)
        return state


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Var(Expr):
    """A variable with an explicit sort.

    Variable identity is the *(name, sort)* pair; the analyses never reuse a
    name at two different sorts, but keeping the sort in the node makes the
    AST self-describing.
    """

    name: str
    var_sort: Sort = INT


    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return self.name


@dataclass(frozen=True)
class IntConst(Expr):
    """An integer literal."""

    value: int


    def __str__(self) -> str:  # pragma: no cover
        return str(self.value)


@dataclass(frozen=True)
class BoolConst(Expr):
    """A boolean literal (``true`` / ``false``)."""

    value: bool


    def __str__(self) -> str:  # pragma: no cover
        return "true" if self.value else "false"


# ---------------------------------------------------------------------------
# Integer-valued nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Add(Expr):
    """N-ary integer addition."""

    args: Tuple[Expr, ...]


    def children(self) -> Tuple[Expr, ...]:
        return self.args


@dataclass(frozen=True)
class Sub(Expr):
    """Integer subtraction ``left - right``."""

    left: Expr
    right: Expr


    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Neg(Expr):
    """Integer negation ``-operand``."""

    operand: Expr


    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class Mul(Expr):
    """Integer multiplication.

    The analyses only ever produce *linear* terms (one side a constant); the
    linearizer in :mod:`repro.smt.linear` rejects non-linear products.
    """

    left: Expr
    right: Expr


    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Ite(Expr):
    """If-then-else, polymorphic in the branch sort."""

    cond: Expr
    then: Expr
    orelse: Expr


    def children(self) -> Tuple[Expr, ...]:
        return (self.cond, self.then, self.orelse)


# ---------------------------------------------------------------------------
# Atomic predicates over integers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Comparison(Expr):
    left: Expr
    right: Expr


    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Eq(_Comparison):
    """Equality. Both sides must share a sort (INT = INT or BOOL = BOOL)."""



@dataclass(frozen=True)
class Ne(_Comparison):
    """Disequality."""



@dataclass(frozen=True)
class Lt(_Comparison):
    """Strict less-than over integers."""


@dataclass(frozen=True)
class Le(_Comparison):
    """Less-than-or-equal over integers."""


@dataclass(frozen=True)
class Gt(_Comparison):
    """Strict greater-than over integers."""


@dataclass(frozen=True)
class Ge(_Comparison):
    """Greater-than-or-equal over integers."""


# ---------------------------------------------------------------------------
# Boolean connectives
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr


    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class And(Expr):
    args: Tuple[Expr, ...]


    def children(self) -> Tuple[Expr, ...]:
        return self.args


@dataclass(frozen=True)
class Or(Expr):
    args: Tuple[Expr, ...]


    def children(self) -> Tuple[Expr, ...]:
        return self.args


@dataclass(frozen=True)
class Implies(Expr):
    antecedent: Expr
    consequent: Expr


    def children(self) -> Tuple[Expr, ...]:
        return (self.antecedent, self.consequent)


@dataclass(frozen=True)
class Iff(Expr):
    left: Expr
    right: Expr


    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)


# ---------------------------------------------------------------------------
# Quantifiers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Forall(Expr):
    bound: Tuple[Var, ...]
    body: Expr


    def children(self) -> Tuple[Expr, ...]:
        return (self.body,)


@dataclass(frozen=True)
class Exists(Expr):
    bound: Tuple[Var, ...]
    body: Expr


    def children(self) -> Tuple[Expr, ...]:
        return (self.body,)


# ---------------------------------------------------------------------------
# Sort computation
# ---------------------------------------------------------------------------

_INT_NODES = (Add, Sub, Neg, Mul, IntConst)
_BOOL_NODES = (Not, And, Or, Implies, Iff, Forall, Exists, BoolConst,
               Eq, Ne, Lt, Le, Gt, Ge)


def sort_of(expr: Expr) -> Sort:
    """Compute the sort of *expr*, raising :class:`SortError` when ill-sorted."""
    if isinstance(expr, Var):
        return expr.var_sort
    if isinstance(expr, Ite):
        then_sort = sort_of(expr.then)
        else_sort = sort_of(expr.orelse)
        if then_sort is not else_sort:
            raise SortError(f"ite branches disagree: {then_sort} vs {else_sort}")
        if sort_of(expr.cond) is not BOOL:
            raise SortError("ite condition must be boolean")
        return then_sort
    if isinstance(expr, _INT_NODES):
        return INT
    if isinstance(expr, _BOOL_NODES):
        return BOOL
    raise SortError(f"unknown expression node {type(expr).__name__}")


def is_atom(expr: Expr) -> bool:
    """Return True when *expr* is a theory atom or boolean leaf.

    Atoms are the leaves of the boolean skeleton: comparisons, boolean
    variables, and boolean constants.  ``Not`` is *not* an atom.
    """
    if isinstance(expr, (Eq, Ne, Lt, Le, Gt, Ge, BoolConst)):
        return True
    if isinstance(expr, Var) and expr.var_sort is BOOL:
        return True
    return False


def walk(expr: Expr):
    """Yield *expr* and every sub-expression in pre-order."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))
        if isinstance(node, (Forall, Exists)):
            # children() already yields the body; bound vars are not traversed.
            pass


def expr_size(expr: Expr) -> int:
    """Number of AST nodes in *expr* (used by minimality heuristics)."""
    return sum(1 for _ in walk(expr))


def _install_hash_caching() -> None:
    """Memoize ``__hash__`` on every (immutable) node class.

    Expressions are used as dictionary keys throughout the solver stack —
    atom tables, result caches, substitution maps — and the dataclass-
    generated hash walks the whole subtree on every probe, which profiling
    shows dominating large compiles.  Nodes are frozen, so the hash is
    computed once and pinned on the instance.
    """
    node_classes = (Var, IntConst, BoolConst, Add, Sub, Neg, Mul, Ite,
                    Eq, Ne, Lt, Le, Gt, Ge, Not, And, Or, Implies, Iff,
                    Forall, Exists)
    for cls in node_classes:
        structural_hash = cls.__hash__

        def cached_hash(self, _base=structural_hash):
            value = self.__dict__.get("_cached_hash")
            if value is None:
                value = _base(self)
                object.__setattr__(self, "_cached_hash", value)
            return value

        cls.__hash__ = cached_hash


_install_hash_caching()
