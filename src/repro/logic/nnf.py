"""Negation normal form, DNF clause extraction, and atom collection.

These transformations feed both the SMT solver (which searches over the
boolean skeleton of a formula's atoms) and the abduction engine (which mines
candidate predicates from clauses of the weakest precondition).
"""

from __future__ import annotations

from typing import FrozenSet, List, Tuple

from repro.logic import build
from repro.logic.terms import (
    And,
    BoolConst,
    Eq,
    Exists,
    Expr,
    Forall,
    Ge,
    Gt,
    Iff,
    Implies,
    IntConst,
    Ite,
    Le,
    Lt,
    Ne,
    Not,
    Or,
    Var,
    is_atom,
)


def eliminate_bool_ite(expr: Expr) -> Expr:
    """Rewrite boolean-sorted ``Ite`` nodes into pure boolean structure.

    Integer-sorted ``Ite`` nodes are left alone; they are handled by the
    solver's linearizer through case splitting.
    """
    if isinstance(expr, Ite) and expr.then.sort.name == "BOOL":
        cond = eliminate_bool_ite(expr.cond)
        then = eliminate_bool_ite(expr.then)
        orelse = eliminate_bool_ite(expr.orelse)
        return build.lor(build.land(cond, then), build.land(build.lnot(cond), orelse))
    if isinstance(expr, (Var, IntConst, BoolConst)):
        return expr
    children = tuple(eliminate_bool_ite(child) for child in expr.children())
    return _rebuild(expr, children)


def to_nnf(expr: Expr) -> Expr:
    """Convert *expr* to negation normal form.

    Implications and bi-implications are expanded, and negations are pushed
    down to atoms (comparisons get flipped; boolean variables keep a ``Not``
    wrapper).  Quantifiers are preserved with dualization under negation.
    """
    return _nnf(eliminate_bool_ite(expr), positive=True)


def _nnf(expr: Expr, positive: bool) -> Expr:
    if isinstance(expr, BoolConst):
        return BoolConst(expr.value if positive else not expr.value)
    if is_atom(expr):
        return expr if positive else build.lnot(expr)
    if isinstance(expr, Not):
        return _nnf(expr.operand, not positive)
    if isinstance(expr, And):
        parts = [_nnf(arg, positive) for arg in expr.args]
        return build.land(*parts) if positive else build.lor(*parts)
    if isinstance(expr, Or):
        parts = [_nnf(arg, positive) for arg in expr.args]
        return build.lor(*parts) if positive else build.land(*parts)
    if isinstance(expr, Implies):
        return _nnf(build.lor(build.lnot(expr.antecedent), expr.consequent), positive)
    if isinstance(expr, Iff):
        expanded = build.lor(
            build.land(expr.left, expr.right),
            build.land(build.lnot(expr.left), build.lnot(expr.right)),
        )
        return _nnf(expanded, positive)
    if isinstance(expr, Forall):
        body = _nnf(expr.body, positive)
        return build.forall(expr.bound, body) if positive else build.exists(expr.bound, body)
    if isinstance(expr, Exists):
        body = _nnf(expr.body, positive)
        return build.exists(expr.bound, body) if positive else build.forall(expr.bound, body)
    raise TypeError(f"cannot convert node {type(expr).__name__} to NNF")


def to_dnf_clauses(expr: Expr, max_clauses: int = 4096) -> List[Tuple[Expr, ...]]:
    """Return the DNF of *expr* as a list of literal tuples (cubes).

    The input must be quantifier free.  A :class:`ValueError` is raised when
    the expansion would exceed *max_clauses* cubes, protecting the abduction
    engine from exponential blow-up on pathological inputs.
    """
    nnf = to_nnf(expr)
    cubes = _dnf(nnf, max_clauses)
    return [tuple(cube) for cube in cubes]


def _dnf(expr: Expr, max_clauses: int) -> List[List[Expr]]:
    if isinstance(expr, BoolConst):
        return [[]] if expr.value else []
    if is_atom(expr) or isinstance(expr, Not):
        return [[expr]]
    if isinstance(expr, Or):
        cubes: List[List[Expr]] = []
        for arg in expr.args:
            cubes.extend(_dnf(arg, max_clauses))
            if len(cubes) > max_clauses:
                raise ValueError("DNF expansion exceeded clause budget")
        return cubes
    if isinstance(expr, And):
        cubes = [[]]
        for arg in expr.args:
            arg_cubes = _dnf(arg, max_clauses)
            cubes = [left + right for left in cubes for right in arg_cubes]
            if len(cubes) > max_clauses:
                raise ValueError("DNF expansion exceeded clause budget")
        return cubes
    if isinstance(expr, (Forall, Exists)):
        raise ValueError("DNF conversion requires a quantifier-free formula")
    raise TypeError(f"unexpected node in NNF formula: {type(expr).__name__}")


def to_cnf_clauses(expr: Expr, max_clauses: int = 4096) -> List[Tuple[Expr, ...]]:
    """Return the CNF of *expr* as a list of literal tuples (clauses)."""
    negated_cubes = to_dnf_clauses(build.lnot(expr), max_clauses)
    clauses = []
    for cube in negated_cubes:
        clauses.append(tuple(build.lnot(lit) for lit in cube))
    return clauses


def atoms_of(expr: Expr) -> FrozenSet[Expr]:
    """Collect the theory atoms / boolean variables occurring in *expr*."""
    atoms: set[Expr] = set()
    _atoms(expr, atoms)
    return frozenset(atoms)


def _atoms(expr: Expr, out: set[Expr]) -> None:
    if isinstance(expr, BoolConst):
        return
    if is_atom(expr):
        out.add(expr)
        return
    for child in expr.children():
        _atoms(child, out)


def literal_atom(literal: Expr) -> Expr:
    """Return the atom underlying a literal (stripping an outer negation)."""
    if isinstance(literal, Not):
        return literal.operand
    return literal


def literal_polarity(literal: Expr) -> bool:
    """True for a positive literal, False for a negated one."""
    return not isinstance(literal, Not)


def _rebuild(expr: Expr, children) -> Expr:
    from repro.logic.substitute import _rebuild as rebuild_impl

    if isinstance(expr, (Forall, Exists)):
        return type(expr)(expr.bound, children[0])
    return rebuild_impl(expr, children)
