"""A small recursive-descent parser for formula text.

The concrete syntax matches :func:`repro.logic.pretty.pretty` and the guard
syntax of the monitor DSL::

    readers >= 0 && !writerIn
    forall x: Int. x + 1 > x
    queue.size < maxQueueSize ==> !stopped

Identifiers may contain dots (field paths such as ``queue.size`` are plain
variables at the logic level).  Sorts are taken from the optional ``sorts``
mapping; identifiers that are used in boolean positions but not declared are
inferred to be boolean, everything else defaults to integer.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional, Tuple

from repro.logic import build
from repro.logic.terms import BOOL, INT, Expr, Sort, Var


class FormulaParseError(ValueError):
    """Raised on malformed formula text."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)*)
  | (?P<op><==>|==>|==|!=|<=|>=|&&|\|\||[()<>+\-*!,.:])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"true", "false", "forall", "exists", "ite"}


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise FormulaParseError(f"unexpected character {text[pos]!r} at offset {pos}")
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        kind = match.lastgroup or "op"
        tokens.append((kind, match.group()))
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]], sorts: Mapping[str, Sort]):
        self._tokens = tokens
        self._index = 0
        self._sorts: Dict[str, Sort] = dict(sorts)
        self._bound: List[Dict[str, Sort]] = []

    # -- token helpers ------------------------------------------------------

    def _peek(self) -> Tuple[str, str]:
        return self._tokens[self._index]

    def _advance(self) -> Tuple[str, str]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, value: str) -> None:
        kind, text = self._advance()
        if text != value:
            raise FormulaParseError(f"expected {value!r} but found {text!r}")

    def _at(self, value: str) -> bool:
        return self._peek()[1] == value

    def _accept(self, value: str) -> bool:
        if self._at(value):
            self._advance()
            return True
        return False

    # -- grammar ------------------------------------------------------------

    def parse(self) -> Expr:
        expr = self.parse_iff()
        kind, text = self._peek()
        if kind != "eof":
            raise FormulaParseError(f"trailing input starting at {text!r}")
        return expr

    def parse_iff(self) -> Expr:
        left = self.parse_implies()
        while self._accept("<==>"):
            right = self.parse_implies()
            left = build.iff(self._as_bool(left), self._as_bool(right))
        return left

    def parse_implies(self) -> Expr:
        left = self.parse_or()
        if self._accept("==>"):
            right = self.parse_implies()
            return build.implies(self._as_bool(left), self._as_bool(right))
        return left

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self._accept("||"):
            left = build.lor(self._as_bool(left), self._as_bool(self.parse_and()))
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self._accept("&&"):
            left = build.land(self._as_bool(left), self._as_bool(self.parse_not()))
        return left

    def parse_not(self) -> Expr:
        if self._accept("!"):
            operand = self.parse_not()
            return build.lnot(self._as_bool(operand))
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_additive()
        ops = {"==": build.eq, "!=": build.ne, "<": build.lt, "<=": build.le,
               ">": build.gt, ">=": build.ge}
        for symbol, builder in ops.items():
            if self._at(symbol):
                self._advance()
                right = self.parse_additive()
                return builder(left, right)
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while True:
            if self._accept("+"):
                left = build.add(left, self.parse_multiplicative())
            elif self._accept("-"):
                left = build.sub(left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while self._accept("*"):
            left = build.mul(left, self.parse_unary())
        return left

    def parse_unary(self) -> Expr:
        if self._accept("-"):
            return build.neg(self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        kind, text = self._peek()
        if kind == "int":
            self._advance()
            return build.i(int(text))
        if text == "(":
            self._advance()
            inner = self.parse_iff()
            self._expect(")")
            return inner
        if kind == "ident":
            self._advance()
            if text == "true":
                return build.TRUE
            if text == "false":
                return build.FALSE
            if text in ("forall", "exists"):
                return self._parse_quantifier(text)
            if text == "ite":
                return self._parse_ite()
            return self._make_var(text)
        raise FormulaParseError(f"unexpected token {text!r}")

    def _parse_ite(self) -> Expr:
        self._expect("(")
        cond = self.parse_iff()
        self._expect(",")
        then = self.parse_iff()
        self._expect(",")
        orelse = self.parse_iff()
        self._expect(")")
        return build.ite(self._as_bool(cond), then, orelse)

    def _parse_quantifier(self, keyword: str) -> Expr:
        binder: Dict[str, Sort] = {}
        bound_vars: List[Var] = []
        while True:
            kind, name = self._advance()
            if kind != "ident":
                raise FormulaParseError(f"expected bound variable name, got {name!r}")
            sort = INT
            if self._accept(":"):
                kind, sort_name = self._advance()
                if sort_name not in ("Int", "Bool"):
                    raise FormulaParseError(f"unknown sort {sort_name!r}")
                sort = INT if sort_name == "Int" else BOOL
            binder[name] = sort
            bound_vars.append(Var(name, sort))
            if not self._accept(","):
                break
        self._expect(".")
        self._bound.append(binder)
        try:
            body = self._as_bool(self.parse_iff())
        finally:
            self._bound.pop()
        builder = build.forall if keyword == "forall" else build.exists
        return builder(bound_vars, body)

    def _make_var(self, name: str) -> Var:
        for scope in reversed(self._bound):
            if name in scope:
                return Var(name, scope[name])
        return Var(name, self._sorts.get(name, INT))

    @staticmethod
    def _as_bool(expr: Expr) -> Expr:
        """Coerce a bare integer-sorted variable appearing in a boolean position."""
        if isinstance(expr, Var) and expr.var_sort is INT:
            return Var(expr.name, BOOL)
        return expr


def parse_formula(text: str, sorts: Optional[Mapping[str, Sort]] = None) -> Expr:
    """Parse a boolean formula, coercing a bare top-level variable to boolean."""
    expr = _Parser(_tokenize(text), sorts or {}).parse()
    return _Parser._as_bool(expr)


def parse_term(text: str, sorts: Optional[Mapping[str, Sort]] = None) -> Expr:
    """Parse an (integer- or boolean-sorted) term without boolean coercion."""
    return _Parser(_tokenize(text), sorts or {}).parse()
