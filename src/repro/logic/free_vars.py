"""Free-variable computation for logic expressions."""

from __future__ import annotations

from typing import FrozenSet

from repro.logic.terms import BOOL, INT, Exists, Expr, Forall, Var


def free_vars(expr: Expr) -> FrozenSet[Var]:
    """Return the set of free variables of *expr*.

    Quantifier binders are respected: variables bound by an enclosing
    ``Forall``/``Exists`` are not reported.
    """
    result: set[Var] = set()
    _collect(expr, frozenset(), result)
    return frozenset(result)


def _collect(expr: Expr, bound: FrozenSet[Var], out: set[Var]) -> None:
    if isinstance(expr, Var):
        if expr not in bound:
            out.add(expr)
        return
    if isinstance(expr, (Forall, Exists)):
        _collect(expr.body, bound | set(expr.bound), out)
        return
    for child in expr.children():
        _collect(child, bound, out)


def free_int_vars(expr: Expr) -> FrozenSet[Var]:
    """Free variables of integer sort."""
    return frozenset(var for var in free_vars(expr) if var.var_sort is INT)


def free_bool_vars(expr: Expr) -> FrozenSet[Var]:
    """Free variables of boolean sort."""
    return frozenset(var for var in free_vars(expr) if var.var_sort is BOOL)


def free_var_names(expr: Expr) -> FrozenSet[str]:
    """Names of the free variables of *expr*."""
    return frozenset(var.name for var in free_vars(expr))
