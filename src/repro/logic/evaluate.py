"""Concrete evaluation of expressions under a variable assignment.

Evaluation is used in three places: the reference trace semantics
(:mod:`repro.semantics`) evaluates guards against monitor states, the SMT
solver's tests cross-check models against formulas, and the AutoSynch-style
runtime evaluates waiting predicates at signal time.
"""

from __future__ import annotations

from typing import Mapping, Union

from repro.logic.terms import (
    Add,
    And,
    BoolConst,
    Eq,
    Exists,
    Expr,
    Forall,
    Ge,
    Gt,
    Iff,
    Implies,
    IntConst,
    Ite,
    Le,
    Lt,
    Mul,
    Ne,
    Neg,
    Not,
    Or,
    Sub,
    Var,
)

Value = Union[int, bool]
Assignment = Mapping[str, Value]


class EvaluationError(KeyError):
    """Raised when an expression mentions a variable missing from the assignment."""


def evaluate(expr: Expr, assignment: Assignment) -> Value:
    """Evaluate *expr* under *assignment* (a mapping from variable name to value)."""
    if isinstance(expr, IntConst):
        return expr.value
    if isinstance(expr, BoolConst):
        return expr.value
    if isinstance(expr, Var):
        try:
            return assignment[expr.name]
        except KeyError as exc:
            raise EvaluationError(f"unassigned variable {expr.name!r}") from exc
    if isinstance(expr, Add):
        return sum(int(evaluate(arg, assignment)) for arg in expr.args)
    if isinstance(expr, Sub):
        return int(evaluate(expr.left, assignment)) - int(evaluate(expr.right, assignment))
    if isinstance(expr, Neg):
        return -int(evaluate(expr.operand, assignment))
    if isinstance(expr, Mul):
        return int(evaluate(expr.left, assignment)) * int(evaluate(expr.right, assignment))
    if isinstance(expr, Ite):
        branch = expr.then if evaluate(expr.cond, assignment) else expr.orelse
        return evaluate(branch, assignment)
    if isinstance(expr, Eq):
        return evaluate(expr.left, assignment) == evaluate(expr.right, assignment)
    if isinstance(expr, Ne):
        return evaluate(expr.left, assignment) != evaluate(expr.right, assignment)
    if isinstance(expr, Lt):
        return evaluate(expr.left, assignment) < evaluate(expr.right, assignment)
    if isinstance(expr, Le):
        return evaluate(expr.left, assignment) <= evaluate(expr.right, assignment)
    if isinstance(expr, Gt):
        return evaluate(expr.left, assignment) > evaluate(expr.right, assignment)
    if isinstance(expr, Ge):
        return evaluate(expr.left, assignment) >= evaluate(expr.right, assignment)
    if isinstance(expr, Not):
        return not evaluate(expr.operand, assignment)
    if isinstance(expr, And):
        return all(evaluate(arg, assignment) for arg in expr.args)
    if isinstance(expr, Or):
        return any(evaluate(arg, assignment) for arg in expr.args)
    if isinstance(expr, Implies):
        return (not evaluate(expr.antecedent, assignment)) or bool(
            evaluate(expr.consequent, assignment)
        )
    if isinstance(expr, Iff):
        return bool(evaluate(expr.left, assignment)) == bool(evaluate(expr.right, assignment))
    if isinstance(expr, (Forall, Exists)):
        raise EvaluationError("cannot concretely evaluate a quantified formula")
    raise TypeError(f"cannot evaluate node {type(expr).__name__}")
