"""Capture-avoiding substitution and variable renaming."""

from __future__ import annotations

import itertools
from typing import Dict, Mapping

from repro.logic.free_vars import free_vars
from repro.logic.terms import (
    Add,
    And,
    BoolConst,
    Eq,
    Exists,
    Expr,
    Forall,
    Ge,
    Gt,
    Iff,
    Implies,
    IntConst,
    Ite,
    Le,
    Lt,
    Mul,
    Ne,
    Neg,
    Not,
    Or,
    Sub,
    Var,
)


def substitute(expr: Expr, mapping: Mapping[Var, Expr]) -> Expr:
    """Simultaneously replace free occurrences of variables in *expr*.

    The substitution is capture-avoiding: if a replacement expression
    mentions a variable that a quantifier in *expr* binds, the bound variable
    is renamed to a fresh name first.
    """
    if not mapping:
        return expr
    return _subst(expr, dict(mapping))


def rename_vars(expr: Expr, renaming: Mapping[str, str]) -> Expr:
    """Rename free variables by name, preserving sorts."""
    mapping: Dict[Var, Expr] = {}
    for var in free_vars(expr):
        if var.name in renaming:
            mapping[var] = Var(renaming[var.name], var.var_sort)
    return substitute(expr, mapping)


_FRESH_COUNTER = itertools.count()


def fresh_var(base: Var, avoid: set[str]) -> Var:
    """Return a variable with a new name derived from *base* avoiding *avoid*."""
    while True:
        candidate = f"{base.name}#{next(_FRESH_COUNTER)}"
        if candidate not in avoid:
            return Var(candidate, base.var_sort)


def _subst(expr: Expr, mapping: Dict[Var, Expr]) -> Expr:
    if isinstance(expr, Var):
        return mapping.get(expr, expr)
    if isinstance(expr, (IntConst, BoolConst)):
        return expr
    if isinstance(expr, (Forall, Exists)):
        return _subst_quantifier(expr, mapping)
    return _rebuild(expr, tuple(_subst(child, mapping) for child in expr.children()))


def _subst_quantifier(expr, mapping: Dict[Var, Expr]) -> Expr:
    live = {var: rep for var, rep in mapping.items() if var not in expr.bound}
    if not live:
        return expr
    replacement_vars = {v.name for rep in live.values() for v in free_vars(rep)}
    bound = list(expr.bound)
    body = expr.body
    rename: Dict[Var, Expr] = {}
    for idx, bvar in enumerate(bound):
        if bvar.name in replacement_vars:
            avoid = replacement_vars | {v.name for v in free_vars(body)}
            fresh = fresh_var(bvar, avoid)
            rename[bvar] = fresh
            bound[idx] = fresh
    if rename:
        body = _subst(body, rename)
    body = _subst(body, live)
    cls = type(expr)
    return cls(tuple(bound), body)


def _rebuild(expr: Expr, new_children) -> Expr:
    """Reconstruct *expr* with *new_children* in place of its children."""
    if isinstance(expr, (Add, And, Or)):
        return type(expr)(tuple(new_children))
    if isinstance(expr, (Sub, Mul, Eq, Ne, Lt, Le, Gt, Ge, Iff)):
        return type(expr)(new_children[0], new_children[1])
    if isinstance(expr, Implies):
        return Implies(new_children[0], new_children[1])
    if isinstance(expr, (Neg, Not)):
        return type(expr)(new_children[0])
    if isinstance(expr, Ite):
        return Ite(new_children[0], new_children[1], new_children[2])
    raise TypeError(f"cannot rebuild node {type(expr).__name__}")
