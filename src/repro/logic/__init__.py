"""First-order logic over linear integer arithmetic and booleans.

This package is the logical substrate used by every analysis in the
reproduction: weakest preconditions, Hoare-triple checking, abduction,
invariant inference and the SMT solver all operate on the expression AST
defined in :mod:`repro.logic.terms`.

The public surface re-exports the node classes plus the smart constructors
from :mod:`repro.logic.build` so that callers can write
``land(ge(v("readers"), i(0)), lnot(v("writerIn", BOOL)))`` style formulas.
"""

from repro.logic.terms import (
    BOOL,
    INT,
    Add,
    And,
    BoolConst,
    Eq,
    Exists,
    Expr,
    Forall,
    Ge,
    Gt,
    Iff,
    Implies,
    IntConst,
    Ite,
    Le,
    Lt,
    Mul,
    Ne,
    Neg,
    Not,
    Or,
    Sort,
    Sub,
    Var,
)
from repro.logic.build import (
    FALSE,
    TRUE,
    add,
    eq,
    ge,
    gt,
    i,
    iff,
    implies,
    ite,
    land,
    le,
    lnot,
    lor,
    lt,
    mul,
    ne,
    neg,
    sub,
    v,
)
from repro.logic.free_vars import free_vars, free_int_vars, free_bool_vars
from repro.logic.substitute import substitute, rename_vars
from repro.logic.evaluate import evaluate, Assignment, EvaluationError
from repro.logic.simplify import simplify
from repro.logic.nnf import to_nnf, to_dnf_clauses, atoms_of
from repro.logic.parser import parse_formula, parse_term, FormulaParseError
from repro.logic.pretty import pretty, to_smtlib

__all__ = [
    # sorts and nodes
    "Sort", "INT", "BOOL", "Expr", "Var", "IntConst", "BoolConst",
    "Add", "Sub", "Neg", "Mul", "Ite",
    "Eq", "Ne", "Lt", "Le", "Gt", "Ge",
    "Not", "And", "Or", "Implies", "Iff", "Forall", "Exists",
    # builders
    "v", "i", "TRUE", "FALSE", "add", "sub", "neg", "mul", "ite",
    "eq", "ne", "lt", "le", "gt", "ge",
    "lnot", "land", "lor", "implies", "iff",
    # operations
    "free_vars", "free_int_vars", "free_bool_vars",
    "substitute", "rename_vars",
    "evaluate", "Assignment", "EvaluationError",
    "simplify", "to_nnf", "to_dnf_clauses", "atoms_of",
    "parse_formula", "parse_term", "FormulaParseError",
    "pretty", "to_smtlib",
]
