"""The lazy DPLL(T) solver tying together SAT search and integer arithmetic.

:class:`Solver` answers satisfiability and validity queries for
quantifier-free formulas over linear integer arithmetic and booleans.  The
design is the standard offline lazy-SMT loop:

1. preprocess the formula into NNF with canonical ``t <= 0`` atoms;
2. Tseitin-encode the boolean skeleton and enumerate propositionally
   satisfying assignments with the CDCL core;
3. for each assignment, check the implied conjunction of integer constraints
   with branch-and-bound over the rational simplex;
4. on a theory conflict, add a blocking clause built from the Farkas
   certificate of the simplex (shrunk by deletion probes) and continue.

Instances are *reusable* across queries and designed to be shared by a whole
compilation pipeline:

* the :class:`~repro.smt.cnf.AtomTable` persists, so the same atom maps to
  the same SAT variable in every query;
* theory-conflict blocking clauses are valid lemmas over those persistent
  atom variables, so they are replayed into every later query's SAT instance
  — near-duplicate verification conditions stop rediscovering the same
  arithmetic conflicts;
* an optional :class:`~repro.smt.cache.FormulaCache` memoizes whole query
  results (see that module for the canonicalization story);
* conjunction-level theory verdicts are memoized as well, so re-enumerated
  constraint sets skip branch-and-bound.

Unknown results (budget exhaustion) are reported explicitly so that callers
can degrade conservatively; they never occur on the pipeline's own VCs.
Besides the iteration budget, ``timeout_seconds`` imposes a per-query
wall-clock budget on the DPLL(T) loop: a pathological query then costs one
UNKNOWN (counted under ``smt.timeouts``/``smt.unknown`` and flagged via
:meth:`Solver.consume_unknown`) instead of hanging the pipeline.  The
``solver.query`` fault site lets tests inject that outcome
deterministically.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro import obs
from repro.logic import build
from repro.obs.metrics import LegacyStatsView, MetricsRegistry, SOLVER_METRIC_NAMES
from repro.logic.free_vars import free_vars
from repro.logic.terms import (
    BOOL, BoolConst, Exists, Expr, Forall, INT, Var, is_atom, walk,
)
from repro.smt.cache import CachedResult, FormulaCache
from repro.smt.cnf import AtomTable, encode
from repro.smt.intfeas import IntegerFeasibilityUnknown, integer_feasible
from repro.smt.linear import Constraint
from repro.resilience.faults import fault_check
from repro.smt.preprocess import atom_constraint, preprocess
from repro.smt.sat import SatSolver
from repro.smt.simplex import rational_feasible, rational_infeasible_subset

Value = Union[int, bool]
Model = Dict[str, Value]

#: Cap on memoized theory-conjunction verdicts per solver.
_THEORY_CACHE_LIMIT = 50_000
#: Cap on retained theory lemmas (oldest half dropped past this point).
_LEMMA_LIMIT = 5_000
#: Sentinel distinguishing "theory said infeasible" from "not memoized".
_INFEASIBLE = object()


class SatStatus(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class SatResult:
    """Outcome of a satisfiability query."""

    status: SatStatus
    model: Optional[Model] = None

    @property
    def is_sat(self) -> bool:
        return self.status is SatStatus.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is SatStatus.UNSAT


class SolverError(RuntimeError):
    """Raised on malformed queries (e.g. quantified input to check_sat)."""


class Solver:
    """Decision procedure for QF-LIA + booleans.

    Instances carry configuration (iteration budget, result cache), the
    statistics the evaluation harness reports (query/theory-check/cache
    counters), and reusable solver state (persistent atom table, learned
    theory lemmas).  All state besides the statistics is semantically
    transparent: a fresh solver answers every query identically, just more
    slowly.
    """

    def __init__(self, max_theory_iterations: int = 2000,
                 cache: Optional[FormulaCache] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 timeout_seconds: Optional[float] = None):
        self.max_theory_iterations = max_theory_iterations
        self.timeout_seconds = timeout_seconds
        self.cache = cache
        #: Reason the most recent query returned UNKNOWN (``"timeout"``,
        #: ``"iterations"``, ``"theory"``, ``"injected"``) — ``None`` after
        #: a decided query.  Callers that only see a boolean surface
        #: (:meth:`check_valid`) read it via :meth:`consume_unknown` to
        #: drive their degradation paths.
        self.last_unknown: Optional[str] = None
        # The counters live in a (per-solver by default, injectable) metrics
        # registry under hierarchical names; ``statistics`` is the legacy
        # flat-dict view over the same storage, so both surfaces agree.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.statistics: LegacyStatsView = LegacyStatsView(
            self.metrics, names=SOLVER_METRIC_NAMES)
        self._atom_table = AtomTable()
        self._theory_lemmas: List[Tuple[int, ...]] = []
        self._theory_verdicts: Dict[frozenset, object] = {}

    # -- public API ---------------------------------------------------------

    def check_sat(self, formula: Expr) -> SatResult:
        """Decide satisfiability of a quantifier-free formula.

        When an SMT profiler is active (``expresso profile``, or any
        ``repro.obs.observe(profile=True)`` session) the query's wall time,
        cache outcome, and status are reported to it, attributed to the
        tracer's current phase and the calling site.
        """
        profiler = obs.active_profiler()
        if profiler is None:
            return self._check_sat(formula)
        hits_before = self.metrics.value("smt.cache.hits")
        start = time.perf_counter()
        result = self._check_sat(formula)
        elapsed = time.perf_counter() - start
        profiler.record(
            formula, elapsed,
            cached=self.metrics.value("smt.cache.hits") > hits_before,
            status=result.status.value,
            phase=obs.tracer().phase_path(),
        )
        return result

    def _check_sat(self, formula: Expr) -> SatResult:
        self.statistics["sat_queries"] += 1
        self.last_unknown = None
        if _contains_quantifier(formula):
            raise SolverError("check_sat expects a quantifier-free formula; "
                              "use repro.smt.qe to eliminate quantifiers first")
        if fault_check("solver.query") == "unknown":
            # Injected budget expiry: behaves exactly like a wall-clock
            # timeout (uncached, counted, flagged), but deterministically.
            return self._unknown("injected")
        if self.cache is not None:
            entry = self.cache.lookup_raw(formula)
            if entry is not None:
                self.statistics["cache_hits"] += 1
                return self._result_from_cache(formula, entry)
        processed = preprocess(formula)
        if self.cache is not None:
            entry = self.cache.lookup_canonical(formula, processed)
            if entry is not None:
                self.statistics["cache_hits"] += 1
                return self._result_from_cache(formula, entry)
            self.statistics["cache_misses"] += 1
        result, entry = self._solve_processed(formula, processed)
        if self.cache is not None and entry is not None:
            self.cache.store(formula, processed, entry)
        return result

    def _unknown(self, reason: str) -> SatResult:
        """Account one UNKNOWN outcome (never cached: budgets are not
        semantic verdicts, and a later, larger-budget query must re-try)."""
        self.last_unknown = reason
        self.statistics["unknowns"] += 1
        if reason in ("timeout", "injected"):
            self.statistics["timeouts"] += 1
        obs.tracer().instant("smt.unknown", cat="smt", reason=reason)
        return SatResult(SatStatus.UNKNOWN)

    def consume_unknown(self) -> Optional[str]:
        """Return-and-clear the last query's UNKNOWN reason.

        The degradation idiom for boolean surfaces::

            proved = solver.check_valid(vc)
            if not proved and solver.consume_unknown():
                ...  # degraded, not refuted: take the conservative branch
        """
        reason, self.last_unknown = self.last_unknown, None
        return reason

    def check_valid(self, formula: Expr) -> bool:
        """Return True iff *formula* is valid (its negation is unsatisfiable).

        UNKNOWN results are treated as "not proven" — the conservative answer
        for every use in the signal-placement pipeline.
        """
        self.statistics["validity_queries"] += 1
        result = self.check_sat(build.lnot(formula))
        return result.status is SatStatus.UNSAT

    def check_implies(self, antecedent: Expr, consequent: Expr) -> bool:
        """Validity of ``antecedent ==> consequent``."""
        return self.check_valid(build.implies(antecedent, consequent))

    def check_equivalent(self, left: Expr, right: Expr) -> bool:
        """Validity of ``left <==> right``."""
        return self.check_valid(build.iff(left, right))

    def get_model(self, formula: Expr) -> Optional[Model]:
        """Return a model of *formula* or None when unsatisfiable/unknown."""
        result = self.check_sat(formula)
        return result.model if result.is_sat else None

    def snapshot_statistics(self) -> Dict[str, int]:
        """A point-in-time copy of the counters (for delta reporting)."""
        return dict(self.statistics)

    # -- internals ----------------------------------------------------------

    def _solve_processed(
        self, formula: Expr, processed: Expr
    ) -> Tuple[SatResult, Optional[CachedResult]]:
        """Run the DPLL(T) loop; return the result and its cacheable form."""
        if isinstance(processed, BoolConst):
            if processed.value:
                return SatResult(SatStatus.SAT, _default_model(formula)), \
                    CachedResult(True, {}, {})
            return SatResult(SatStatus.UNSAT), CachedResult(False)

        table = self._atom_table
        sat_solver = SatSolver()
        sat_solver.add_clauses(encode(processed, table))
        # Only atoms of *this* query feed the theory check: the persistent
        # table also holds atoms of earlier queries, whose (arbitrary) SAT
        # values must not be turned into constraints here.
        query_atoms: Dict[Expr, int] = {}
        for node in walk(processed):
            if is_atom(node) and not isinstance(node, BoolConst):
                query_atoms[node] = table.var_for(node)
        # Replay only lemmas entirely over this query's atoms: a lemma
        # mentioning foreign atoms can never block an assignment here, it
        # would only bloat the instance (and, over a long session, make each
        # query pay for every conflict ever seen).
        atom_ids = set(query_atoms.values())
        sat_solver.add_clauses(
            lemma for lemma in self._theory_lemmas
            if all(abs(literal) in atom_ids for literal in lemma)
        )

        deadline = (time.monotonic() + self.timeout_seconds
                    if self.timeout_seconds is not None else None)
        for _ in range(self.max_theory_iterations):
            if deadline is not None and time.monotonic() > deadline:
                return self._unknown("timeout"), None
            assignment = sat_solver.solve()
            if assignment is None:
                return SatResult(SatStatus.UNSAT), CachedResult(False)
            constraints: List[Tuple[int, Constraint]] = []
            bool_values: Dict[str, bool] = {}
            for atom, var_id in query_atoms.items():
                value = assignment.get(var_id, False)
                constraint = atom_constraint(atom)
                if constraint is not None:
                    constraints.append((var_id if value else -var_id,
                                        constraint if value else constraint.negate()))
                elif isinstance(atom, Var) and atom.var_sort is BOOL:
                    bool_values[atom.name] = value
            self.statistics["theory_checks"] += 1
            try:
                theory_model = self._theory_feasible([c for _, c in constraints])
            except IntegerFeasibilityUnknown:
                return self._unknown("theory"), None
            if theory_model is not None:
                model = _build_model(formula, theory_model, bool_values)
                return SatResult(SatStatus.SAT, model), \
                    CachedResult(True, dict(theory_model), dict(bool_values))
            core = self._minimize_core(constraints)
            lemma = tuple(-literal for literal, _ in core)
            sat_solver.add_clause(lemma)
            if len(self._theory_lemmas) >= _LEMMA_LIMIT:
                del self._theory_lemmas[:_LEMMA_LIMIT // 2]
            self._theory_lemmas.append(lemma)
            self.statistics["theory_lemmas"] += 1
        return self._unknown("iterations"), None

    def _theory_feasible(
        self, constraints: List[Constraint]
    ) -> Optional[Dict[str, int]]:
        """Memoized integer feasibility of a constraint conjunction."""
        key = frozenset(constraints)
        verdict = self._theory_verdicts.get(key)
        if verdict is _INFEASIBLE:
            return None
        if verdict is not None:
            return verdict  # a cached model
        model = integer_feasible(constraints)
        if len(self._theory_verdicts) >= _THEORY_CACHE_LIMIT:
            self._theory_verdicts.clear()
        self._theory_verdicts[key] = _INFEASIBLE if model is None else model
        return model

    def _result_from_cache(self, formula: Expr, entry: CachedResult) -> SatResult:
        if not entry.status_sat:
            return SatResult(SatStatus.UNSAT)
        model = _build_model(formula, entry.theory_model or {},
                             entry.bool_values or {})
        return SatResult(SatStatus.SAT, model)

    def _minimize_core(
        self, constraints: List[Tuple[int, Constraint]]
    ) -> List[Tuple[int, Constraint]]:
        """Extract a small infeasible subset to use as a blocking clause.

        The Farkas certificate of the Phase-1 simplex pins down the (usually
        2–4) constraints that witness rational infeasibility; greedy deletion
        then shrinks that support to an irreducible core.  Probing only the
        certificate support instead of the full constraint set is the
        difference between O(|core|) and O(n) simplex runs per conflict.  If
        the conflict is integer-only (rationally feasible), the full set is
        used as the core.  Small cores are essential: they block whole
        families of propositional assignments at once (e.g. ``x == 0`` with
        ``x == 1``).
        """
        subset = rational_infeasible_subset([c for _, c in constraints])
        if subset is None:
            return constraints
        core = [constraints[index] for index in subset]
        if rational_feasible([c for _, c in core]) is not None:
            # Certificate support failed verification (defensive; unseen in
            # practice) — fall back to deletion over the full set.
            core = list(constraints)
        index = 0
        while index < len(core) and len(core) > 1:
            candidate = core[:index] + core[index + 1:]
            if rational_feasible([c for _, c in candidate]) is None:
                core = candidate
            else:
                index += 1
        return core


def _contains_quantifier(formula: Expr) -> bool:
    if isinstance(formula, (Forall, Exists)):
        return True
    return any(_contains_quantifier(child) for child in formula.children())


def _default_model(formula: Expr) -> Model:
    model: Model = {}
    for var in free_vars(formula):
        model[var.name] = 0 if var.var_sort is INT else False
    return model


def _build_model(formula: Expr, theory_model: Dict[str, int],
                 bool_values: Dict[str, bool]) -> Model:
    model: Model = {}
    for var in free_vars(formula):
        if var.var_sort is BOOL:
            model[var.name] = bool_values.get(var.name, False)
        else:
            model[var.name] = int(theory_model.get(var.name, 0))
    return model


# -- module-level convenience wrappers --------------------------------------

#: Process-wide result cache shared by the convenience wrappers and any
#: caller that wants cross-pipeline memoization (e.g. batch suite compiles).
SHARED_CACHE = FormulaCache()


def _fresh_solver() -> Solver:
    """A stats-isolated solver for one wrapper call.

    Each call gets its own statistics (no cross-caller contamination — the
    old module-level singleton accumulated query counts across unrelated
    callers) while still sharing the process-wide formula cache.
    """
    return Solver(cache=SHARED_CACHE)


def check_sat(formula: Expr) -> SatResult:
    """Module-level satisfiability check using a fresh stats-isolated solver."""
    return _fresh_solver().check_sat(formula)


def check_valid(formula: Expr) -> bool:
    """Module-level validity check using a fresh stats-isolated solver."""
    return _fresh_solver().check_valid(formula)


def get_model(formula: Expr) -> Optional[Model]:
    """Module-level model query using a fresh stats-isolated solver."""
    return _fresh_solver().get_model(formula)
