"""The lazy DPLL(T) solver tying together SAT search and integer arithmetic.

:class:`Solver` answers satisfiability and validity queries for
quantifier-free formulas over linear integer arithmetic and booleans.  The
design is the standard offline lazy-SMT loop:

1. preprocess the formula into NNF with canonical ``t <= 0`` atoms;
2. Tseitin-encode the boolean skeleton and enumerate propositionally
   satisfying assignments with the DPLL core;
3. for each assignment, check the implied conjunction of integer constraints
   with branch-and-bound over the rational simplex;
4. on a theory conflict, add a blocking clause built from a greedily
   minimized unsatisfiable core and continue.

Unknown results (budget exhaustion) are reported explicitly so that callers
can degrade conservatively; they never occur on the pipeline's own VCs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.logic import build
from repro.logic.free_vars import free_vars
from repro.logic.terms import BOOL, BoolConst, Exists, Expr, Forall, INT, Var
from repro.smt.cnf import AtomTable, encode
from repro.smt.intfeas import IntegerFeasibilityUnknown, integer_feasible
from repro.smt.linear import Constraint
from repro.smt.preprocess import atom_constraint, preprocess
from repro.smt.sat import SatSolver
from repro.smt.simplex import rational_feasible

Value = Union[int, bool]
Model = Dict[str, Value]


class SatStatus(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class SatResult:
    """Outcome of a satisfiability query."""

    status: SatStatus
    model: Optional[Model] = None

    @property
    def is_sat(self) -> bool:
        return self.status is SatStatus.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is SatStatus.UNSAT


class SolverError(RuntimeError):
    """Raised on malformed queries (e.g. quantified input to check_sat)."""


class Solver:
    """Decision procedure for QF-LIA + booleans.

    Instances are stateless between queries; the class exists to carry
    configuration (iteration budget) and statistics that the evaluation
    harness reports (number of SAT/theory calls).
    """

    def __init__(self, max_theory_iterations: int = 2000):
        self.max_theory_iterations = max_theory_iterations
        self.statistics: Dict[str, int] = {
            "sat_queries": 0,
            "theory_checks": 0,
            "validity_queries": 0,
        }

    # -- public API ---------------------------------------------------------

    def check_sat(self, formula: Expr) -> SatResult:
        """Decide satisfiability of a quantifier-free formula."""
        self.statistics["sat_queries"] += 1
        if _contains_quantifier(formula):
            raise SolverError("check_sat expects a quantifier-free formula; "
                              "use repro.smt.qe to eliminate quantifiers first")
        processed = preprocess(formula)
        if isinstance(processed, BoolConst):
            if processed.value:
                return SatResult(SatStatus.SAT, _default_model(formula))
            return SatResult(SatStatus.UNSAT)

        table = AtomTable()
        sat_solver = SatSolver()
        sat_solver.add_clauses(encode(processed, table))
        atom_vars = table.atoms()

        for _ in range(self.max_theory_iterations):
            assignment = sat_solver.solve()
            if assignment is None:
                return SatResult(SatStatus.UNSAT)
            constraints: List[Tuple[int, Constraint]] = []
            bool_values: Dict[str, bool] = {}
            for atom, var_id in atom_vars.items():
                value = assignment.get(var_id, False)
                constraint = atom_constraint(atom)
                if constraint is not None:
                    constraints.append((var_id if value else -var_id,
                                        constraint if value else constraint.negate()))
                elif isinstance(atom, Var) and atom.var_sort is BOOL:
                    bool_values[atom.name] = value
            self.statistics["theory_checks"] += 1
            try:
                theory_model = integer_feasible([c for _, c in constraints])
            except IntegerFeasibilityUnknown:
                return SatResult(SatStatus.UNKNOWN)
            if theory_model is not None:
                model = _build_model(formula, theory_model, bool_values)
                return SatResult(SatStatus.SAT, model)
            core = self._minimize_core(constraints)
            sat_solver.add_clause([-literal for literal, _ in core])
        return SatResult(SatStatus.UNKNOWN)

    def check_valid(self, formula: Expr) -> bool:
        """Return True iff *formula* is valid (its negation is unsatisfiable).

        UNKNOWN results are treated as "not proven" — the conservative answer
        for every use in the signal-placement pipeline.
        """
        self.statistics["validity_queries"] += 1
        result = self.check_sat(build.lnot(formula))
        return result.status is SatStatus.UNSAT

    def check_implies(self, antecedent: Expr, consequent: Expr) -> bool:
        """Validity of ``antecedent ==> consequent``."""
        return self.check_valid(build.implies(antecedent, consequent))

    def check_equivalent(self, left: Expr, right: Expr) -> bool:
        """Validity of ``left <==> right``."""
        return self.check_valid(build.iff(left, right))

    def get_model(self, formula: Expr) -> Optional[Model]:
        """Return a model of *formula* or None when unsatisfiable/unknown."""
        result = self.check_sat(formula)
        return result.model if result.is_sat else None

    # -- internals ----------------------------------------------------------

    def _minimize_core(
        self, constraints: List[Tuple[int, Constraint]]
    ) -> List[Tuple[int, Constraint]]:
        """Greedy deletion-based minimization of an infeasible constraint set.

        Minimization works on the rational relaxation (cheap and sound for
        blocking purposes: any rationally-infeasible subset is also
        integer-infeasible).  If the conflict is integer-only, the full set is
        used as the core.  Small cores are essential: they block whole families
        of propositional assignments at once (e.g. ``x == 0`` with ``x == 1``),
        and the interval fast path in the simplex keeps each deletion probe
        cheap.
        """
        if rational_feasible([c for _, c in constraints]) is not None:
            return constraints
        core = list(constraints)
        index = 0
        while index < len(core):
            candidate = core[:index] + core[index + 1:]
            if rational_feasible([c for _, c in candidate]) is None:
                core = candidate
            else:
                index += 1
        return core


def _contains_quantifier(formula: Expr) -> bool:
    if isinstance(formula, (Forall, Exists)):
        return True
    return any(_contains_quantifier(child) for child in formula.children())


def _default_model(formula: Expr) -> Model:
    model: Model = {}
    for var in free_vars(formula):
        model[var.name] = 0 if var.var_sort is INT else False
    return model


def _build_model(formula: Expr, theory_model: Dict[str, int],
                 bool_values: Dict[str, bool]) -> Model:
    model: Model = {}
    for var in free_vars(formula):
        if var.var_sort is BOOL:
            model[var.name] = bool_values.get(var.name, False)
        else:
            model[var.name] = int(theory_model.get(var.name, 0))
    return model


# -- module-level convenience wrappers --------------------------------------

_DEFAULT_SOLVER = Solver()


def check_sat(formula: Expr) -> SatResult:
    """Module-level satisfiability check using a shared default solver."""
    return _DEFAULT_SOLVER.check_sat(formula)


def check_valid(formula: Expr) -> bool:
    """Module-level validity check using a shared default solver."""
    return _DEFAULT_SOLVER.check_valid(formula)


def get_model(formula: Expr) -> Optional[Model]:
    """Module-level model query using a shared default solver."""
    return _DEFAULT_SOLVER.get_model(formula)
