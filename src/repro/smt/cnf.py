"""CNF conversion of NNF formulas via the Plaisted–Greenbaum encoding.

The solver's boolean engine works on integer literals (DIMACS style: variable
indices start at 1, negative integers denote negation).  :class:`AtomTable`
assigns an index to every distinct atom (canonical arithmetic atom or boolean
variable); :func:`encode` produces clauses that are equisatisfiable with the
input formula and whose satisfying assignments restricted to atom variables
are exactly the satisfying atom assignments of the input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.logic.terms import And, BoolConst, Expr, Not, Or, Var, is_atom


@dataclass
class AtomTable:
    """Bidirectional mapping between atoms and SAT variable indices."""

    _atom_to_var: Dict[Expr, int] = field(default_factory=dict)
    _var_to_atom: Dict[int, Expr] = field(default_factory=dict)
    _next_var: int = 1

    def var_for(self, atom: Expr) -> int:
        if atom not in self._atom_to_var:
            index = self._next_var
            self._next_var += 1
            self._atom_to_var[atom] = index
            self._var_to_atom[index] = atom
        return self._atom_to_var[atom]

    def fresh_var(self) -> int:
        index = self._next_var
        self._next_var += 1
        return index

    def atom_for(self, var: int) -> Expr:
        return self._var_to_atom[var]

    def atoms(self) -> Dict[Expr, int]:
        return dict(self._atom_to_var)

    @property
    def num_vars(self) -> int:
        return self._next_var - 1


Clause = Tuple[int, ...]


class CnfEncodingError(ValueError):
    """Raised when the input formula is not in the expected NNF shape."""


def encode(expr: Expr, table: AtomTable) -> List[Clause]:
    """Encode an NNF formula into CNF clauses over *table*'s variables.

    The returned clause set asserts the formula.  Because the input is in NNF
    only the positive direction of each definition is required
    (Plaisted–Greenbaum), which keeps the encoding small.
    """
    clauses: List[Clause] = []
    root = _encode(expr, table, clauses)
    clauses.append((root,))
    return clauses


def _encode(expr: Expr, table: AtomTable, clauses: List[Clause]) -> int:
    if isinstance(expr, BoolConst):
        # Encode constants with a fresh variable pinned to the right polarity;
        # the variable itself is the literal standing for the constant node.
        var = table.fresh_var()
        clauses.append((var,) if expr.value else (-var,))
        return var
    if is_atom(expr):
        return table.var_for(expr)
    if isinstance(expr, Not):
        operand = expr.operand
        if not is_atom(operand):
            raise CnfEncodingError("negation applied to a non-atom; input must be NNF")
        return -table.var_for(operand)
    if isinstance(expr, (And, Or)):
        literals = [_encode(arg, table, clauses) for arg in expr.args]
        aux = table.fresh_var()
        if isinstance(expr, And):
            # aux -> lit_i  for every conjunct.
            for literal in literals:
                clauses.append((-aux, literal))
        else:
            # aux -> (lit_1 | ... | lit_n)
            clauses.append(tuple([-aux] + literals))
        return aux
    raise CnfEncodingError(f"unexpected node {type(expr).__name__} in NNF formula")
