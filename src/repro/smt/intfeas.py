"""Integer feasibility via branch-and-bound on top of the rational simplex.

Conjunctions of linear integer constraints are decided by solving the
rational relaxation and branching on a variable with a fractional value
(``x <= floor(v)`` vs ``x >= ceil(v)``).  The verification conditions the
Expresso pipeline generates are tiny (a handful of variables, unit
coefficients), so branching depth is small in practice; a depth limit plus
artificial variable bounds act as a completeness backstop, and exceeding the
limit raises :class:`IntegerFeasibilityUnknown` so callers can degrade
conservatively (an unproven Hoare triple only ever costs a signal, never
correctness).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from repro.smt.linear import Constraint, LinExpr
from repro.smt.simplex import rational_feasible

#: Depth after which artificial bounds are imposed on every variable.
_BOUND_DEPTH = 24
#: Hard recursion limit.
_MAX_DEPTH = 80
#: Magnitude of the artificial bounds.
_BIG_BOUND = 10**7


class IntegerFeasibilityUnknown(Exception):
    """Raised when branch-and-bound exceeds its budget without an answer."""


def integer_feasible(constraints: Sequence[Constraint]) -> Optional[Dict[str, int]]:
    """Return an integer model for the conjunction of *constraints*, or None.

    Raises :class:`IntegerFeasibilityUnknown` if the search budget is
    exhausted (practically unreachable for pipeline-generated VCs).
    """
    return _search(list(constraints), depth=0)


def _search(constraints: List[Constraint], depth: int) -> Optional[Dict[str, int]]:
    if depth > _MAX_DEPTH:
        raise IntegerFeasibilityUnknown(
            f"branch-and-bound exceeded depth {_MAX_DEPTH} on {len(constraints)} constraints"
        )
    relaxation = rational_feasible(constraints)
    if relaxation is None:
        return None
    fractional = _first_fractional(relaxation)
    if fractional is None:
        model = {name: int(value) for name, value in relaxation.items()}
        return model
    name, value = fractional
    if depth == _BOUND_DEPTH:
        # Bound every variable to force termination on pathological systems.
        bounded = list(constraints)
        for var_name in relaxation:
            bounded.append(Constraint(LinExpr.var(var_name).shift(-_BIG_BOUND)))
            bounded.append(Constraint(LinExpr.var(var_name, -1).shift(-_BIG_BOUND)))
        constraints = bounded
    floor_val = math.floor(value)
    ceil_val = floor_val + 1
    # Branch x <= floor(v):  x - floor <= 0
    lower_branch = constraints + [Constraint(LinExpr.var(name).shift(-floor_val))]
    result = _search(lower_branch, depth + 1)
    if result is not None:
        return result
    # Branch x >= ceil(v):  ceil - x <= 0
    upper_branch = constraints + [Constraint(LinExpr.var(name, -1).shift(ceil_val))]
    return _search(upper_branch, depth + 1)


def _first_fractional(model: Dict[str, Fraction]) -> Optional[tuple]:
    for name in sorted(model):
        value = model[name]
        if value.denominator != 1:
            return name, value
    return None


def evaluate_constraints(constraints: Sequence[Constraint], model: Dict[str, int]) -> bool:
    """Check that *model* satisfies every constraint (used in tests)."""
    return all(constraint.evaluate(model) for constraint in constraints)
