"""Memoization of satisfiability results across the pipeline's queries.

Every stage of the Expresso pipeline — invariant inference, Algorithm 1
placement, the §4.3 commutativity checks — funnels through
``Solver.check_sat`` / ``check_valid``, and the verification conditions they
generate are heavily repetitive: the same Hoare-triple obligations are
re-proved while abduction probes candidate invariants, and ``check_valid``
re-derives the same negated formulas.  A compile of a single benchmark
already issues ~35% duplicate queries; batch suite compiles repeat whole
families across configurations.

:class:`FormulaCache` removes that redundancy.  It is keyed at two levels:

* the **raw formula** (expression nodes are frozen dataclasses, so structural
  equality and hashing are free) — a hit at this level also skips the
  preprocessing pass entirely;
* the **canonical form** (the preprocessed NNF skeleton with normalized
  ``t <= 0`` atoms) — so syntactically different queries that canonicalize
  identically share one solver run.  On a canonical hit the raw formula is
  back-filled so the next occurrence hits the fast path.

Cached entries store the *ingredients* of a result (status, theory model,
boolean assignment) rather than a finished :class:`SatResult`, because models
must be rebuilt against each caller's free variables: two formulas with the
same canonical form can mention different (simplified-away) variables.

``UNKNOWN`` results are never cached — they depend on the querying solver's
iteration budget, not on the formula.

The cache is shared freely: per-solver, per-pipeline, or process-global (see
:data:`repro.smt.solver.SHARED_CACHE`).  Entries are bounded by ``max_entries``
with FIFO eviction, which is enough for compile-shaped workloads where the
working set is the current benchmark's VC family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional

from repro.logic.terms import Expr
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class CachedResult:
    """The solver-independent ingredients of a satisfiability answer.

    ``status_sat`` is True for SAT, False for UNSAT.  For SAT entries,
    ``theory_model`` maps integer variable names to values and
    ``bool_values`` maps boolean variable names to truth values; callers
    rebuild a full model over their own formula's free variables.
    """

    status_sat: bool
    theory_model: Optional[Dict[str, int]] = None
    bool_values: Optional[Dict[str, bool]] = None


class FormulaCache:
    """Two-level (raw + canonical) cache of satisfiability results."""

    def __init__(self, max_entries: int = 100_000,
                 metrics: Optional[MetricsRegistry] = None):
        self.max_entries = max_entries
        self._raw: Dict[Expr, CachedResult] = {}
        self._canonical: Dict[Expr, CachedResult] = {}
        #: Optional registry mirror: when bound, every hit/miss also lands
        #: under ``smt.formula_cache.*`` so the flight recorder sees shared
        #: (cross-solver) caches that per-solver counters cannot attribute.
        self.metrics = metrics
        self.hits = 0
        self.misses = 0
        # Commutativity verdicts (`bodies_commute` and the exploration-side
        # semantic-independence checks) are whole *procedures* — several
        # validity queries folded into one boolean — so they memoize above
        # the formula level, keyed by the (structurally hashed) statement
        # pair plus the shared-name set the comparison ranged over.
        self._commute: Dict[Hashable, bool] = {}
        self.commute_hits = 0
        self.commute_misses = 0

    # -- lookups -------------------------------------------------------------

    def bind_metrics(self, registry: Optional[MetricsRegistry]) -> None:
        """Attach (or detach, with None) a registry mirror."""
        self.metrics = registry

    def lookup_raw(self, formula: Expr) -> Optional[CachedResult]:
        """Fast-path lookup keyed on the unprocessed formula."""
        entry = self._raw.get(formula)
        if entry is not None:
            self.hits += 1
            if self.metrics is not None:
                self.metrics.inc("smt.formula_cache.hits")
        return entry

    def lookup_canonical(self, raw: Expr, canonical: Expr) -> Optional[CachedResult]:
        """Second-chance lookup keyed on the preprocessed canonical form.

        On a hit the *raw* key is back-filled so the caller's next identical
        query skips preprocessing altogether.
        """
        entry = self._canonical.get(canonical)
        if entry is not None:
            self.hits += 1
            self._store(self._raw, raw, entry)
        else:
            self.misses += 1
        if self.metrics is not None:
            self.metrics.inc("smt.formula_cache.hits" if entry is not None
                             else "smt.formula_cache.misses")
        return entry

    # -- insertion -----------------------------------------------------------

    def store(self, raw: Expr, canonical: Expr, entry: CachedResult) -> None:
        """Record a freshly computed result under both keys."""
        self._store(self._raw, raw, entry)
        self._store(self._canonical, canonical, entry)

    def _store(self, table: Dict[Expr, CachedResult], key: Expr,
               entry: CachedResult) -> None:
        if key in table:
            table[key] = entry
            return
        if len(table) >= self.max_entries:
            # FIFO eviction: drop the oldest insertion (dicts preserve order).
            table.pop(next(iter(table)))
        table[key] = entry

    # -- commutativity verdicts ----------------------------------------------

    def lookup_commute(self, key: Hashable) -> Optional[bool]:
        """Memoized verdict of one commutativity/independence check."""
        verdict = self._commute.get(key)
        if verdict is None:
            self.commute_misses += 1
        else:
            self.commute_hits += 1
        if self.metrics is not None:
            self.metrics.inc("smt.formula_cache.commute_misses" if verdict is None
                             else "smt.formula_cache.commute_hits")
        return verdict

    def store_commute(self, key: Hashable, verdict: bool) -> None:
        if key not in self._commute and len(self._commute) >= self.max_entries:
            self._commute.pop(next(iter(self._commute)))
        self._commute[key] = verdict

    # -- maintenance / reporting ---------------------------------------------

    def clear(self) -> None:
        self._raw.clear()
        self._canonical.clear()
        self._commute.clear()
        self.hits = 0
        self.misses = 0
        self.commute_hits = 0
        self.commute_misses = 0

    def __len__(self) -> int:
        return len(self._canonical)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def statistics(self) -> Dict[str, int]:
        return {
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_entries": len(self._canonical),
            "commute_cache_hits": self.commute_hits,
            "commute_cache_misses": self.commute_misses,
            "commute_cache_entries": len(self._commute),
        }
