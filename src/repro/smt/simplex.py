"""Exact-rational feasibility of linear constraint systems (Phase-1 simplex).

This is the arithmetic core of the SMT solver.  Given a conjunction of
constraints ``t_j <= 0`` over free (unbounded-sign) variables, it either
produces a rational satisfying assignment or reports infeasibility.  All
arithmetic uses :class:`fractions.Fraction`, so the result is exact; Bland's
rule guarantees termination.

The construction is the textbook one:

* each free variable ``x`` is split into ``x = x⁺ - x⁻`` with ``x⁺, x⁻ >= 0``;
* each constraint ``a·x + k <= 0`` becomes ``a·x + s = -k`` with a slack
  ``s >= 0`` (rows are scaled so the right-hand side is non-negative);
* an artificial variable is added per row and the Phase-1 objective
  (sum of artificials) is minimized; feasibility holds iff the optimum is 0.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from repro.smt.linear import Constraint


def _interval_feasible(rows: Sequence[Constraint], variables: Sequence[str],
                       row_indices: Sequence[int]) -> "_Outcome":
    """Decide a system of single-variable constraints by interval intersection."""
    lower: Dict[str, Fraction] = {}
    upper: Dict[str, Fraction] = {}
    lower_source: Dict[str, int] = {}
    upper_source: Dict[str, int] = {}
    for row_pos, constraint in enumerate(rows):
        (name, coefficient), = constraint.expr.coeffs
        bound = Fraction(-constraint.expr.constant, coefficient)
        if coefficient > 0:
            # coefficient * x + k <= 0  ==>  x <= -k / coefficient
            if name not in upper or bound < upper[name]:
                upper[name] = bound
                upper_source[name] = row_indices[row_pos]
        else:
            # coefficient < 0  ==>  x >= -k / coefficient
            if name not in lower or bound > lower[name]:
                lower[name] = bound
                lower_source[name] = row_indices[row_pos]
    model: Dict[str, Fraction] = {}
    for name in variables:
        low = lower.get(name)
        high = upper.get(name)
        if low is not None and high is not None and low > high:
            return _Outcome(None, [lower_source[name], upper_source[name]])
        if low is not None:
            model[name] = low
        elif high is not None:
            model[name] = high
        else:
            model[name] = Fraction(0)
    return _Outcome(model, None)


class _Outcome:
    """Feasibility outcome: a model, or an infeasible subset of row indices."""

    __slots__ = ("model", "core")

    def __init__(self, model: Optional[Dict[str, Fraction]],
                 core: Optional[List[int]]):
        self.model = model
        self.core = core


def rational_feasible(constraints: Sequence[Constraint]) -> Optional[Dict[str, Fraction]]:
    """Return a rational model for the conjunction of *constraints*, or None.

    Constraints whose linear part is empty are checked directly; an empty or
    trivially-true system yields the empty assignment (callers fill defaults).
    Systems in which every constraint mentions a single variable are decided
    by interval intersection (the common case for monitor VCs, and orders of
    magnitude cheaper than the tableau); everything else goes to the simplex.
    """
    return _solve(constraints).model


def rational_infeasible_subset(
        constraints: Sequence[Constraint]) -> Optional[List[int]]:
    """Return indices of an infeasible subset of *constraints*, or None.

    None means the system is rationally feasible.  The subset is the support
    of an infeasibility certificate — the two clashing bounds on the interval
    fast path, or the constraints with a non-zero Farkas multiplier at the
    Phase-1 optimum of the simplex.  It is small but not necessarily minimal;
    callers that need irreducible cores shrink it with deletion probes, which
    is far cheaper than probing the full system.
    """
    return _solve(constraints).core


def _solve(constraints: Sequence[Constraint]) -> _Outcome:
    variables: List[str] = []
    seen = set()
    rows: List[Constraint] = []
    row_indices: List[int] = []
    single_variable_only = True
    for index, constraint in enumerate(constraints):
        if constraint.expr.is_constant():
            if constraint.expr.constant > 0:
                return _Outcome(None, [index])
            continue
        rows.append(constraint)
        row_indices.append(index)
        names = constraint.variables()
        if len(names) > 1:
            single_variable_only = False
        for name in names:
            if name not in seen:
                seen.add(name)
                variables.append(name)
    if not rows:
        return _Outcome({}, None)
    if single_variable_only:
        return _interval_feasible(rows, variables, row_indices)

    num_vars = len(variables)
    num_rows = len(rows)
    var_index = {name: idx for idx, name in enumerate(variables)}

    # Column layout: [x⁺ (n), x⁻ (n), slack (m), artificial (m)].
    total_cols = 2 * num_vars + 2 * num_rows
    tableau: List[List[Fraction]] = []
    rhs: List[Fraction] = []
    basis: List[int] = []

    for row_idx, constraint in enumerate(rows):
        # a·x + k <= 0  ==>  a·x + s = -k
        coeffs = [Fraction(0)] * total_cols
        for name, coef in constraint.expr.coeffs:
            col = var_index[name]
            coeffs[col] += Fraction(coef)
            coeffs[num_vars + col] -= Fraction(coef)
        coeffs[2 * num_vars + row_idx] = Fraction(1)  # slack
        b = Fraction(-constraint.expr.constant)
        if b < 0:
            coeffs = [-c for c in coeffs]
            b = -b
        art_col = 2 * num_vars + num_rows + row_idx
        coeffs[art_col] = Fraction(1)
        tableau.append(coeffs)
        rhs.append(b)
        basis.append(art_col)

    # Phase-1 objective: minimize the sum of artificial variables.
    objective = [Fraction(0)] * total_cols
    obj_value = Fraction(0)
    for row_idx in range(num_rows):
        art_col = 2 * num_vars + num_rows + row_idx
        objective[art_col] = Fraction(1)
    # Make the objective row consistent with the starting basis (price out).
    for row_idx in range(num_rows):
        for col in range(total_cols):
            objective[col] -= tableau[row_idx][col]
        obj_value -= rhs[row_idx]

    def pivot(pivot_row: int, pivot_col: int) -> None:
        nonlocal obj_value
        pivot_val = tableau[pivot_row][pivot_col]
        tableau[pivot_row] = [c / pivot_val for c in tableau[pivot_row]]
        rhs[pivot_row] /= pivot_val
        for row_idx in range(num_rows):
            if row_idx == pivot_row:
                continue
            factor = tableau[row_idx][pivot_col]
            if factor == 0:
                continue
            tableau[row_idx] = [
                tableau[row_idx][col] - factor * tableau[pivot_row][col]
                for col in range(total_cols)
            ]
            rhs[row_idx] -= factor * rhs[pivot_row]
        factor = objective[pivot_col]
        if factor != 0:
            for col in range(total_cols):
                objective[col] -= factor * tableau[pivot_row][col]
            obj_value -= factor * rhs[pivot_row]
        basis[pivot_row] = pivot_col

    # Primal simplex with Bland's rule (anti-cycling).
    while True:
        entering = next((col for col in range(total_cols) if objective[col] < 0), None)
        if entering is None:
            break
        best_row = None
        best_ratio = None
        for row_idx in range(num_rows):
            coef = tableau[row_idx][entering]
            if coef > 0:
                ratio = rhs[row_idx] / coef
                if best_ratio is None or ratio < best_ratio or (
                    ratio == best_ratio and basis[row_idx] < basis[best_row]
                ):
                    best_ratio = ratio
                    best_row = row_idx
        if best_row is None:
            # Phase-1 objective is bounded below by 0, so this cannot happen;
            # guard anyway to avoid an infinite loop on numerical misuse.
            return _Outcome(None, list(row_indices))
        pivot(best_row, entering)

    # Optimum of the Phase-1 objective is -obj_value (we maintained the negated row).
    if -obj_value > 0:
        # Farkas support: the dual multiplier of row i is recovered from the
        # reduced cost of its artificial column (c̄ = 1 - y_i); rows with a
        # non-zero multiplier witness the infeasibility.
        core = [
            row_indices[row_idx]
            for row_idx in range(num_rows)
            if objective[2 * num_vars + num_rows + row_idx] != 1
        ]
        return _Outcome(None, core or list(row_indices))

    values = [Fraction(0)] * total_cols
    for row_idx, col in enumerate(basis):
        values[col] = rhs[row_idx]
    model: Dict[str, Fraction] = {}
    for name, idx in var_index.items():
        model[name] = values[idx] - values[num_vars + idx]
    return _Outcome(model, None)
