"""A from-scratch SMT decision procedure for QF-LIA + booleans.

The paper's Expresso tool discharges verification conditions with Z3; this
environment has no Z3, so the reproduction ships its own solver for exactly
the fragment the pipeline needs:

* boolean structure (arbitrary ``&&``/``||``/``!``/``==>``/``<==>``);
* linear integer arithmetic atoms (``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=``
  over linear terms);
* integer-sorted ``ite`` terms (lifted to boolean case splits);
* quantifier elimination for the abduction engine (Fourier–Motzkin).

Architecture (classic lazy DPLL(T)):

1. :mod:`repro.smt.preprocess` normalizes every arithmetic atom into a
   non-strict ``t <= 0`` constraint (exact over the integers) and removes
   boolean equalities and integer ``ite`` terms;
2. :mod:`repro.smt.cnf` performs a Tseitin encoding of the boolean skeleton;
3. :mod:`repro.smt.sat` is a small DPLL SAT solver with unit propagation;
4. :mod:`repro.smt.simplex` + :mod:`repro.smt.intfeas` decide conjunctions of
   linear integer constraints with an exact-rational simplex and
   branch-and-bound;
5. :mod:`repro.smt.solver` ties these together and exposes
   :class:`~repro.smt.solver.Solver` with ``check_sat`` / ``check_valid``.
"""

from repro.smt.solver import Solver, SatResult, SatStatus, check_valid, check_sat, get_model
from repro.smt.qe import eliminate_exists, eliminate_forall, QuantifierEliminationError

__all__ = [
    "Solver",
    "SatResult",
    "SatStatus",
    "check_valid",
    "check_sat",
    "get_model",
    "eliminate_exists",
    "eliminate_forall",
    "QuantifierEliminationError",
]
