"""Linear integer expressions.

A :class:`LinExpr` is a normalized linear combination ``c0 + c1*x1 + ... +
cn*xn`` with integer coefficients over integer-sorted variables.  It is the
exchange format between the logic AST and the arithmetic core (simplex,
Fourier–Motzkin, branch-and-bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Tuple

from repro.logic import build
from repro.logic.terms import (
    Add,
    Expr,
    INT,
    IntConst,
    Ite,
    Mul,
    Neg,
    Sub,
    Var,
)


class NonLinearError(ValueError):
    """Raised when an integer term is not linear (e.g. a product of variables)."""


@dataclass(frozen=True)
class LinExpr:
    """An immutable linear expression ``constant + sum(coeffs[name] * name)``."""

    coeffs: Tuple[Tuple[str, int], ...]
    constant: int = 0

    @staticmethod
    def of(coeffs: Mapping[str, int], constant: int = 0) -> "LinExpr":
        """Build a LinExpr, dropping zero coefficients and sorting by name."""
        items = tuple(sorted((name, coef) for name, coef in coeffs.items() if coef != 0))
        return LinExpr(items, constant)

    @staticmethod
    def const(value: int) -> "LinExpr":
        return LinExpr((), value)

    @staticmethod
    def var(name: str, coefficient: int = 1) -> "LinExpr":
        if coefficient == 0:
            return LinExpr((), 0)
        return LinExpr(((name, coefficient),), 0)

    # -- accessors ----------------------------------------------------------

    def coeff_map(self) -> Dict[str, int]:
        return dict(self.coeffs)

    def variables(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.coeffs)

    def coefficient(self, name: str) -> int:
        for var_name, coef in self.coeffs:
            if var_name == name:
                return coef
        return 0

    def is_constant(self) -> bool:
        return not self.coeffs

    # -- arithmetic ---------------------------------------------------------

    def add(self, other: "LinExpr") -> "LinExpr":
        coeffs = self.coeff_map()
        for name, coef in other.coeffs:
            coeffs[name] = coeffs.get(name, 0) + coef
        return LinExpr.of(coeffs, self.constant + other.constant)

    def sub(self, other: "LinExpr") -> "LinExpr":
        return self.add(other.scale(-1))

    def scale(self, factor: int) -> "LinExpr":
        if factor == 0:
            return LinExpr((), 0)
        return LinExpr.of({name: coef * factor for name, coef in self.coeffs},
                          self.constant * factor)

    def shift(self, delta: int) -> "LinExpr":
        return LinExpr(self.coeffs, self.constant + delta)

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        total = self.constant
        for name, coef in self.coeffs:
            total += coef * int(assignment.get(name, 0))
        return total

    def substitute_var(self, name: str, replacement: "LinExpr") -> "LinExpr":
        """Replace *name* with *replacement* (used by equality elimination)."""
        coef = self.coefficient(name)
        if coef == 0:
            return self
        remaining = LinExpr.of(
            {n: c for n, c in self.coeffs if n != name}, self.constant
        )
        return remaining.add(replacement.scale(coef))

    # -- conversion ---------------------------------------------------------

    def to_expr(self) -> Expr:
        """Convert back into a logic-AST integer term."""
        parts = []
        for name, coef in self.coeffs:
            var = Var(name, INT)
            if coef == 1:
                parts.append(var)
            else:
                parts.append(build.mul(coef, var))
        if self.constant != 0 or not parts:
            parts.append(build.i(self.constant))
        return build.add(*parts)

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        from repro.logic.pretty import pretty

        return pretty(self.to_expr())


def linearize(expr: Expr) -> LinExpr:
    """Convert an integer-sorted AST term into a :class:`LinExpr`.

    Raises :class:`NonLinearError` for products of two non-constant terms and
    :class:`ValueError` for ``ite`` terms (callers must lift those first via
    :func:`repro.smt.preprocess.lift_int_ite`).
    """
    if isinstance(expr, IntConst):
        return LinExpr.const(expr.value)
    if isinstance(expr, Var):
        if expr.var_sort is not INT:
            raise NonLinearError(f"boolean variable {expr.name!r} in arithmetic position")
        return LinExpr.var(expr.name)
    if isinstance(expr, Add):
        result = LinExpr.const(0)
        for arg in expr.args:
            result = result.add(linearize(arg))
        return result
    if isinstance(expr, Sub):
        return linearize(expr.left).sub(linearize(expr.right))
    if isinstance(expr, Neg):
        return linearize(expr.operand).scale(-1)
    if isinstance(expr, Mul):
        left = linearize(expr.left)
        right = linearize(expr.right)
        if left.is_constant():
            return right.scale(left.constant)
        if right.is_constant():
            return left.scale(right.constant)
        raise NonLinearError(f"non-linear product: {expr}")
    if isinstance(expr, Ite):
        raise ValueError("integer ite must be lifted before linearization")
    raise NonLinearError(f"cannot linearize node {type(expr).__name__}")


@dataclass(frozen=True)
class Constraint:
    """A normalized constraint ``expr <= 0`` (non-strict, integer semantics)."""

    expr: LinExpr

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return self.expr.evaluate(assignment) <= 0

    def variables(self) -> Tuple[str, ...]:
        return self.expr.variables()

    def negate(self) -> "Constraint":
        """Integer negation: not(e <= 0) == (-e + 1 <= 0), i.e. e >= 1."""
        return Constraint(self.expr.scale(-1).shift(1))

    def to_formula(self) -> Expr:
        return build.le(self.expr.to_expr(), build.i(0))

    def __str__(self) -> str:  # pragma: no cover
        return f"{self.expr} <= 0"
