"""Quantifier elimination for the abduction engine.

Existential quantifiers over booleans are eliminated by Shannon expansion;
existential quantifiers over integers by Fourier–Motzkin elimination on the
DNF of the body.  Universal quantification is handled by duality
(``∀x.φ = ¬∃x.¬φ``).

Fourier–Motzkin over the integers is exact whenever the eliminated variable
appears with coefficient ±1 in every constraint (the only case the monitor
analyses produce, since guards and updates use unit coefficients).  When a
larger coefficient appears, the real shadow is returned, which
over-approximates satisfiability; abduction candidates derived from it are
still filtered by Algorithm 2's validity checks, so soundness of the overall
pipeline is preserved.  Callers that need exactness can pass ``strict=True``
to raise instead.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.logic import build
from repro.logic.free_vars import free_vars
from repro.logic.nnf import to_dnf_clauses
from repro.logic.simplify import simplify
from repro.logic.substitute import substitute
from repro.logic.terms import BOOL, BoolConst, Expr, INT, Not, Var
from repro.smt.linear import Constraint, LinExpr
from repro.smt.preprocess import atom_constraint, preprocess


class QuantifierEliminationError(ValueError):
    """Raised in strict mode when elimination would be inexact, or on bad input."""


def eliminate_exists(variables: Sequence[Var], formula: Expr, *, strict: bool = False) -> Expr:
    """Compute a quantifier-free equivalent of ``exists variables. formula``."""
    result = formula
    for var in variables:
        if var.var_sort is BOOL:
            result = _eliminate_bool_exists(var, result)
        else:
            result = _eliminate_int_exists(var, result, strict=strict)
    return simplify(result)


def eliminate_forall(variables: Sequence[Var], formula: Expr, *, strict: bool = False) -> Expr:
    """Compute a quantifier-free equivalent of ``forall variables. formula``."""
    negated = build.lnot(formula)
    eliminated = eliminate_exists(variables, negated, strict=strict)
    return simplify(build.lnot(eliminated))


def _eliminate_bool_exists(var: Var, formula: Expr) -> Expr:
    true_case = substitute(formula, {var: build.TRUE})
    false_case = substitute(formula, {var: build.FALSE})
    return build.lor(simplify(true_case), simplify(false_case))


def _eliminate_int_exists(var: Var, formula: Expr, *, strict: bool) -> Expr:
    if var not in free_vars(formula):
        return formula
    processed = preprocess(formula)
    if isinstance(processed, BoolConst):
        return processed
    cubes = to_dnf_clauses(processed)
    eliminated_cubes: List[Expr] = []
    for cube in cubes:
        eliminated_cubes.append(_eliminate_from_cube(var, cube, strict=strict))
    return build.lor(*eliminated_cubes)


def _eliminate_from_cube(var: Var, cube: Tuple[Expr, ...], *, strict: bool) -> Expr:
    """Fourier–Motzkin elimination of *var* from a conjunction of literals."""
    constraints: List[Constraint] = []
    other_literals: List[Expr] = []
    for literal in cube:
        if isinstance(literal, Not):
            # After preprocessing only boolean variables appear negated.
            other_literals.append(literal)
            continue
        constraint = atom_constraint(literal)
        if constraint is None:
            other_literals.append(literal)
            continue
        constraints.append(constraint)

    lowers: List[Tuple[int, LinExpr]] = []   # a*var >= rest  encoded as (a, rest)
    uppers: List[Tuple[int, LinExpr]] = []   # a*var <= rest
    unrelated: List[Constraint] = []
    for constraint in constraints:
        coef = constraint.expr.coefficient(var.name)
        if coef == 0:
            unrelated.append(constraint)
            continue
        rest = LinExpr.of(
            {n: c for n, c in constraint.expr.coeffs if n != var.name},
            constraint.expr.constant,
        )
        # constraint: coef*var + rest <= 0
        if coef > 0:
            # var <= -rest / coef
            uppers.append((coef, rest.scale(-1)))
        else:
            # var >= rest / (-coef)
            lowers.append((-coef, rest))
        if strict and abs(coef) != 1:
            raise QuantifierEliminationError(
                f"non-unit coefficient {coef} for {var.name}; elimination would be inexact"
            )

    combined: List[Expr] = [c.to_formula() for c in unrelated]
    combined.extend(other_literals)
    for low_coef, low_rest in lowers:
        for up_coef, up_rest in uppers:
            # low_rest / low_coef <= var <= up_rest / up_coef
            # ==> up_coef * low_rest <= low_coef * up_rest
            lhs = low_rest.scale(up_coef)
            rhs = up_rest.scale(low_coef)
            combined.append(Constraint(lhs.sub(rhs)).to_formula())
    return build.land(*combined) if combined else build.TRUE
