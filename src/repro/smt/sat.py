"""A small DPLL SAT solver with unit propagation.

The boolean skeletons produced by the pipeline are tiny (tens of variables),
so a clean recursive DPLL with unit propagation and a most-occurrences
branching heuristic is more than adequate and easy to audit.  The solver is
incremental in the simplest sense: clauses can be added between ``solve``
calls (used by the DPLL(T) loop to add theory-conflict blocking clauses).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

Clause = Tuple[int, ...]
Assignment = Dict[int, bool]


class SatSolver:
    """DPLL solver over integer literals (positive index = true polarity)."""

    def __init__(self, num_vars: int = 0):
        self._clauses: List[Clause] = []
        self._num_vars = num_vars

    def add_clause(self, clause: Sequence[int]) -> None:
        """Add a clause; the empty clause makes the instance trivially unsat."""
        normalized = tuple(dict.fromkeys(clause))
        for literal in normalized:
            self._num_vars = max(self._num_vars, abs(literal))
        self._clauses.append(normalized)

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def solve(self, assumptions: Sequence[int] = ()) -> Optional[Assignment]:
        """Return a satisfying assignment (complete over all variables) or None."""
        assignment: Assignment = {}
        for literal in assumptions:
            var = abs(literal)
            value = literal > 0
            if var in assignment and assignment[var] != value:
                return None
            assignment[var] = value
        result = self._dpll(assignment)
        if result is None:
            return None
        # Complete the assignment for variables untouched by the search.
        for var in range(1, self._num_vars + 1):
            result.setdefault(var, False)
        return result

    # -- internals ----------------------------------------------------------

    def _dpll(self, assignment: Assignment) -> Optional[Assignment]:
        assignment = dict(assignment)
        status = self._propagate(assignment)
        if status is False:
            return None
        branch_var = self._pick_branch_variable(assignment)
        if branch_var is None:
            return assignment
        for value in (True, False):
            assignment[branch_var] = value
            result = self._dpll(assignment)
            if result is not None:
                return result
            del assignment[branch_var]
        return None

    def _propagate(self, assignment: Assignment) -> bool:
        """Unit propagation; returns False on conflict, True otherwise."""
        changed = True
        while changed:
            changed = False
            for clause in self._clauses:
                unassigned = None
                satisfied = False
                unassigned_count = 0
                for literal in clause:
                    var = abs(literal)
                    if var in assignment:
                        if assignment[var] == (literal > 0):
                            satisfied = True
                            break
                    else:
                        unassigned = literal
                        unassigned_count += 1
                if satisfied:
                    continue
                if unassigned_count == 0:
                    return False
                if unassigned_count == 1:
                    assignment[abs(unassigned)] = unassigned > 0
                    changed = True
        return True

    def _pick_branch_variable(self, assignment: Assignment) -> Optional[int]:
        """Pick the unassigned variable occurring in the most unsatisfied clauses."""
        counts: Dict[int, int] = {}
        for clause in self._clauses:
            clause_satisfied = any(
                abs(lit) in assignment and assignment[abs(lit)] == (lit > 0) for lit in clause
            )
            if clause_satisfied:
                continue
            for literal in clause:
                var = abs(literal)
                if var not in assignment:
                    counts[var] = counts.get(var, 0) + 1
        if counts:
            return max(counts, key=lambda var: (counts[var], -var))
        # Any remaining unassigned variable (appearing only in satisfied clauses).
        for var in range(1, self._num_vars + 1):
            if var not in assignment:
                return var
        return None
