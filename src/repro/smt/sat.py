"""An iterative CDCL-style SAT solver with two-watched-literal propagation.

The boolean skeletons the pipeline produces used to be tiny, but reusable
solvers, accumulated theory lemmas, and the deep skeletons of the larger
suites can push instances past a thousand variables — far beyond what the old
recursive DPLL could search without hitting Python's recursion limit, and
expensive under its O(clauses) rescan per propagation pass.  This core keeps
the same external surface (``add_clause`` / ``add_clauses`` / ``solve``) but
searches iteratively over an assignment trail:

* **two-watched-literal propagation** — each clause watches two of its
  literals, so unit propagation only touches clauses whose watched literal
  was just falsified instead of rescanning the whole clause database;
* **conflict-driven blocking** — on a conflict the solver learns the clause
  blocking the current decision sequence and backjumps one level, where the
  learned clause immediately propagates, so no decision prefix is ever
  re-explored;
* **tautology filtering** — clauses containing ``x ∨ ¬x`` are dropped on add:
  they can never propagate or conflict, and keeping them inflated the
  branching heuristic's occurrence counts.

The solver remains incremental in the simplest sense: clauses can be added
between ``solve`` calls (the DPLL(T) loop adds theory-conflict blocking
clauses), and each ``solve`` restarts the search from scratch.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

Clause = Tuple[int, ...]
Assignment = Dict[int, bool]

_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1


class SatSolver:
    """CDCL solver over integer literals (positive index = true polarity)."""

    def __init__(self, num_vars: int = 0):
        self._clauses: List[List[int]] = []
        self._num_vars = num_vars
        self._has_empty_clause = False
        # Static occurrence counts over the input clauses (branching heuristic).
        self._occurrences: Dict[int, int] = {}

    def add_clause(self, clause: Sequence[int]) -> None:
        """Add a clause; the empty clause makes the instance trivially unsat.

        Repeated literals are deduplicated and tautological clauses
        (containing both ``x`` and ``¬x``) are dropped entirely.
        """
        normalized = list(dict.fromkeys(clause))
        literal_set = set(normalized)
        for literal in normalized:
            self._num_vars = max(self._num_vars, abs(literal))
        if any(-literal in literal_set for literal in normalized):
            return  # tautology: satisfied under every assignment
        if not normalized:
            self._has_empty_clause = True
            return
        for literal in normalized:
            var = abs(literal)
            self._occurrences[var] = self._occurrences.get(var, 0) + 1
        self._clauses.append(normalized)

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def solve(self, assumptions: Sequence[int] = ()) -> Optional[Assignment]:
        """Return a satisfying assignment or None.

        The assignment covers every variable occurring in a clause or an
        assumption; look up other variables with ``get(var, False)``.
        """
        if self._has_empty_clause:
            return None
        num_vars = max(self._num_vars,
                       max((abs(lit) for lit in assumptions), default=0))
        search = _Search(self._clauses, num_vars, self._occurrences)
        return search.run(assumptions)


class _Search:
    """One iterative trail-based search over a snapshot of the clause database.

    A fresh instance per ``solve`` call keeps the watch lists consistent with
    clauses added between calls without any incremental bookkeeping.
    """

    def __init__(self, clauses: List[List[int]], num_vars: int,
                 occurrences: Dict[int, int]):
        self._clauses = list(clauses)  # learned clauses are appended locally
        self._num_vars = num_vars
        self._occurrences = occurrences
        # values[var] is _TRUE / _FALSE / _UNASSIGNED.
        self._values = [_UNASSIGNED] * (num_vars + 1)
        self._trail: List[int] = []          # literals in assignment order
        self._level_starts: List[int] = []   # trail index at each decision
        self._decisions: List[int] = []      # the decision literal per level
        # watches[lit] = clause indices currently watching literal `lit`.
        self._watches: Dict[int, List[int]] = {}
        # Variables sorted once by the static branching heuristic.  Only
        # variables occurring in clauses are branched on: with a persistent
        # atom table the variable id space spans *all* queries ever made,
        # and scanning it per decision would be quadratic in session length.
        self._branch_order = sorted(
            occurrences,
            key=lambda var: (-occurrences[var], var),
        )

    # -- assignment helpers --------------------------------------------------

    def _value_of(self, literal: int) -> int:
        value = self._values[abs(literal)]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value if literal > 0 else -value

    def _assign(self, literal: int) -> None:
        self._values[abs(literal)] = _TRUE if literal > 0 else _FALSE
        self._trail.append(literal)

    def _watch(self, clause_index: int, literal: int) -> None:
        self._watches.setdefault(literal, []).append(clause_index)

    # -- main loop -----------------------------------------------------------

    def run(self, assumptions: Sequence[int]) -> Optional[Assignment]:
        if not self._init_watches():
            return None
        for literal in assumptions:
            value = self._value_of(literal)
            if value == _FALSE:
                return None  # conflicting assumptions (or clash with a unit)
            if value == _UNASSIGNED:
                self._assign(literal)
        if self._propagate(0) is not None:
            # Conflict at decision level 0: the instance (with assumptions)
            # is unsatisfiable.
            return None

        while True:
            branch = self._pick_branch_literal()
            if branch is None:
                return self._extract_model()
            self._level_starts.append(len(self._trail))
            self._decisions.append(branch)
            self._assign(branch)
            while self._propagate(len(self._trail) - 1) is not None:
                if not self._resolve_conflict():
                    return None

    def _init_watches(self) -> bool:
        """Set up watches; propagate initial unit clauses.  False on conflict."""
        for index, clause in enumerate(self._clauses):
            if len(clause) == 1:
                literal = clause[0]
                value = self._value_of(literal)
                if value == _FALSE:
                    return False
                if value == _UNASSIGNED:
                    self._assign(literal)
            else:
                self._watch(index, clause[0])
                self._watch(index, clause[1])
        return True

    def _propagate(self, queue_head: int) -> Optional[int]:
        """Propagate from trail position *queue_head*; return a conflicting
        clause index, or None when the assignment is propagation-complete."""
        trail = self._trail
        while queue_head < len(trail):
            falsified = -trail[queue_head]
            queue_head += 1
            watchers = self._watches.get(falsified)
            if not watchers:
                continue
            keep: List[int] = []
            position = 0
            while position < len(watchers):
                clause_index = watchers[position]
                position += 1
                clause = self._clauses[clause_index]
                # Normalize so clause[0] is the other watched literal.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                other = clause[0]
                if self._value_of(other) == _TRUE:
                    keep.append(clause_index)
                    continue
                # Look for a non-false replacement watch.
                for slot in range(2, len(clause)):
                    if self._value_of(clause[slot]) != _FALSE:
                        clause[1], clause[slot] = clause[slot], clause[1]
                        self._watch(clause_index, clause[1])
                        break
                else:
                    keep.append(clause_index)
                    if self._value_of(other) == _FALSE:
                        # Conflict: restore the untraversed watchers and bail.
                        keep.extend(watchers[position:])
                        self._watches[falsified] = keep
                        return clause_index
                    self._assign(other)  # unit under the current assignment
            self._watches[falsified] = keep
        return None

    def _resolve_conflict(self) -> bool:
        """Learn the clause blocking the current decisions and backjump.

        Returns False when the conflict is at decision level 0 (unsat).
        """
        if not self._decisions:
            return False
        # Decision learning: the conflict refutes the decision sequence
        # d1..dk, so learn (¬d1 ∨ ... ∨ ¬dk) and backjump one level, where
        # the learned clause asserts ¬dk.
        learned = [-decision for decision in self._decisions]
        asserted = learned[-1]
        self._backtrack_one_level()
        if len(learned) > 1:
            clause_index = len(self._clauses)
            self._clauses.append([asserted] + learned[:-1])
            # Watch the asserted literal and the most recent false literal.
            self._watch(clause_index, asserted)
            self._watch(clause_index, learned[-2])
        if self._value_of(asserted) == _FALSE:
            # The blocked polarity is already forced; conflict persists at
            # this level — resolve again (loops down to level 0 if needed).
            return self._resolve_conflict()
        if self._value_of(asserted) == _UNASSIGNED:
            self._assign(asserted)
        return True

    def _backtrack_one_level(self) -> None:
        mark = self._level_starts.pop()
        self._decisions.pop()
        while len(self._trail) > mark:
            literal = self._trail.pop()
            self._values[abs(literal)] = _UNASSIGNED

    def _pick_branch_literal(self) -> Optional[int]:
        """The unassigned variable with the most clause occurrences, positive
        polarity first (mirrors the old solver's value ordering)."""
        for var in self._branch_order:
            if self._values[var] == _UNASSIGNED:
                return var
        return None

    def _extract_model(self) -> Assignment:
        """The satisfying assignment over every variable the search touched.

        Variables that occur in no clause (possible when the id space is
        shared with other queries) are absent; callers default them to False
        via ``assignment.get(var, False)``, matching the old dense model's
        completion value.
        """
        model: Assignment = {}
        for var in self._occurrences:
            model[var] = self._values[var] == _TRUE
        for literal in self._trail:
            model[abs(literal)] = literal > 0
        return model
