"""Formula preprocessing for the SMT solver.

The solver core only understands two kinds of atoms:

* boolean variables, and
* canonical arithmetic atoms of the form ``t <= 0`` where ``t`` is a linear
  integer term.

This module rewrites arbitrary input formulas into that shape:

* boolean-sorted equalities / disequalities become ``Iff`` / ``!Iff``;
* integer-sorted ``ite`` terms are lifted into boolean case splits;
* every comparison is normalized into non-strict ``<= 0`` constraints, which
  is exact for integers (``a < b`` becomes ``a - b + 1 <= 0``, ``a != b``
  becomes a disjunction of two strict sides).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.logic import build
from repro.logic.nnf import to_nnf
from repro.logic.simplify import simplify
from repro.logic.terms import (
    Add,
    And,
    BOOL,
    BoolConst,
    Eq,
    Exists,
    Expr,
    Forall,
    Ge,
    Gt,
    Iff,
    Implies,
    INT,
    IntConst,
    Ite,
    Le,
    Lt,
    Mul,
    Ne,
    Neg,
    Not,
    Or,
    Sub,
    Var,
    is_atom,
    sort_of,
)
from repro.smt.linear import Constraint, LinExpr, linearize

_COMPARISONS = (Eq, Ne, Lt, Le, Gt, Ge)


def rewrite_bool_equalities(expr: Expr) -> Expr:
    """Rewrite ``Eq``/``Ne`` whose operands are boolean into ``Iff`` structure."""
    if isinstance(expr, (Var, IntConst, BoolConst)):
        return expr
    children = tuple(rewrite_bool_equalities(child) for child in expr.children())
    if isinstance(expr, (Eq, Ne)) and sort_of(children[0]) is BOOL:
        equiv = build.iff(children[0], children[1])
        return equiv if isinstance(expr, Eq) else build.lnot(equiv)
    return _rebuild(expr, children)


def lift_int_ite(expr: Expr) -> Expr:
    """Lift integer-sorted ``ite`` terms occurring inside atoms to case splits."""
    if isinstance(expr, (Var, IntConst, BoolConst)):
        return expr
    if isinstance(expr, _COMPARISONS):
        found = _find_int_ite(expr)
        if found is None:
            return expr
        cond, then, orelse = found.cond, found.then, found.orelse
        then_atom = _replace_node(expr, found, then)
        else_atom = _replace_node(expr, found, orelse)
        return lift_int_ite(
            build.lor(
                build.land(lift_int_ite(cond), then_atom),
                build.land(build.lnot(lift_int_ite(cond)), else_atom),
            )
        )
    children = tuple(lift_int_ite(child) for child in expr.children())
    if isinstance(expr, (Forall, Exists)):
        return type(expr)(expr.bound, children[0])
    return _rebuild(expr, children)


def _find_int_ite(expr: Expr) -> Optional[Ite]:
    if isinstance(expr, Ite) and sort_of(expr.then) is INT:
        return expr
    for child in expr.children():
        found = _find_int_ite(child)
        if found is not None:
            return found
    return None


def _replace_node(expr: Expr, target: Expr, replacement: Expr) -> Expr:
    if expr == target:
        return replacement
    if isinstance(expr, (Var, IntConst, BoolConst)):
        return expr
    children = tuple(_replace_node(child, target, replacement) for child in expr.children())
    if isinstance(expr, (Forall, Exists)):
        return type(expr)(expr.bound, children[0])
    return _rebuild(expr, children)


def normalize_atoms(expr: Expr) -> Expr:
    """Rewrite every arithmetic comparison into canonical ``t <= 0`` atoms.

    The output only contains boolean structure, boolean variables, and
    ``Le(linear-term, 0)`` atoms.  Comparisons whose difference folds to a
    constant become boolean constants.
    """
    if isinstance(expr, BoolConst):
        return expr
    if isinstance(expr, Var):
        return expr
    if isinstance(expr, _COMPARISONS) and sort_of(expr.left) is INT:
        return _normalize_comparison(expr)
    if isinstance(expr, (Forall, Exists)):
        return type(expr)(expr.bound, normalize_atoms(expr.body))
    children = tuple(normalize_atoms(child) for child in expr.children())
    return _rebuild(expr, children)


def _le_zero(lin: LinExpr) -> Expr:
    if lin.is_constant():
        return build.TRUE if lin.constant <= 0 else build.FALSE
    return Le(lin.to_expr(), IntConst(0))


def _normalize_comparison(expr: Expr) -> Expr:
    left = linearize(expr.left)
    right = linearize(expr.right)
    diff = left.sub(right)
    if isinstance(expr, Le):
        return _le_zero(diff)
    if isinstance(expr, Lt):
        return _le_zero(diff.shift(1))
    if isinstance(expr, Ge):
        return _le_zero(diff.scale(-1))
    if isinstance(expr, Gt):
        return _le_zero(diff.scale(-1).shift(1))
    if isinstance(expr, Eq):
        return build.land(_le_zero(diff), _le_zero(diff.scale(-1)))
    if isinstance(expr, Ne):
        return build.lor(_le_zero(diff.shift(1)), _le_zero(diff.scale(-1).shift(1)))
    raise TypeError(f"unexpected comparison {type(expr).__name__}")


def atom_constraint(atom: Expr) -> Optional[Constraint]:
    """Return the :class:`Constraint` for a canonical arithmetic atom, else None."""
    if isinstance(atom, Le) and isinstance(atom.right, IntConst) and atom.right.value == 0:
        return Constraint(linearize(atom.left))
    return None


def preprocess(expr: Expr) -> Expr:
    """Full preprocessing pipeline used by the solver (quantifier-free input)."""
    expr = simplify(expr)
    expr = rewrite_bool_equalities(expr)
    expr = lift_int_ite(expr)
    expr = to_nnf(expr)
    expr = normalize_atoms(expr)
    return simplify(expr)


def _rebuild(expr: Expr, children: Tuple[Expr, ...]) -> Expr:
    if isinstance(expr, (Add, And, Or)):
        return type(expr)(tuple(children))
    if isinstance(expr, (Sub, Mul, Eq, Ne, Lt, Le, Gt, Ge, Iff)):
        return type(expr)(children[0], children[1])
    if isinstance(expr, Implies):
        return Implies(children[0], children[1])
    if isinstance(expr, (Neg, Not)):
        return type(expr)(children[0])
    if isinstance(expr, Ite):
        return Ite(children[0], children[1], children[2])
    if isinstance(expr, (Forall, Exists)):
        return type(expr)(expr.bound, children[0])
    raise TypeError(f"cannot rebuild node {type(expr).__name__}")
