"""Static analyses used by the signal-placement pipeline.

* :mod:`repro.analysis.wp` — weakest preconditions over the statement language;
* :mod:`repro.analysis.hoare` — Hoare-triple representation and checking;
* :mod:`repro.analysis.renaming` — thread-local variable renaming (§4.2);
* :mod:`repro.analysis.symexec` — forward symbolic execution (transition maps);
* :mod:`repro.analysis.commutativity` — the Comm(w, M) check of §4.3;
* :mod:`repro.analysis.abduction` — abductive candidate-predicate inference;
* :mod:`repro.analysis.invariants` — monitor-invariant inference (Algorithm 2);
* :mod:`repro.analysis.alias` — Andersen-style may-alias analysis standing in
  for the paper's use of Doop, with §6's guarded store expansion.
"""

from repro.analysis.wp import weakest_precondition
from repro.analysis.hoare import HoareTriple, check_triple
from repro.analysis.renaming import rename_thread_locals, renamed_copy
from repro.analysis.symexec import symbolic_execute, SymbolicState, SymbolicExecutionError
from repro.analysis.commutativity import (
    bodies_commute,
    calls_semantically_independent,
    ccr_commutes_with_all,
    methods_semantically_independent,
    segments_semantically_independent,
    semantic_independence_for_explicit,
)
from repro.analysis.abduction import abduce, AbductionResult
from repro.analysis.invariants import infer_monitor_invariant, InvariantInferenceResult

__all__ = [
    "weakest_precondition",
    "HoareTriple", "check_triple",
    "rename_thread_locals", "renamed_copy",
    "symbolic_execute", "SymbolicState", "SymbolicExecutionError",
    "bodies_commute", "calls_semantically_independent",
    "ccr_commutes_with_all",
    "methods_semantically_independent", "segments_semantically_independent",
    "semantic_independence_for_explicit",
    "abduce", "AbductionResult",
    "infer_monitor_invariant", "InvariantInferenceResult",
]
