"""Hoare triples and their discharge via weakest preconditions.

Expresso reduces every placement decision to the validity of Hoare triples
of the form ``{P} s {Q}`` over monitor statements (paper §4).  A triple is
valid iff ``P ==> wp(s, Q)`` is valid, which the SMT substrate decides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.logic import build
from repro.logic.pretty import pretty
from repro.logic.terms import Expr
from repro.lang.ast import Stmt
from repro.lang.pretty import pretty_stmt
from repro.analysis.wp import weakest_precondition
from repro.smt.solver import Solver


@dataclass(frozen=True)
class HoareTriple:
    """``{pre} stmt {post}`` with an optional human-readable purpose tag."""

    pre: Expr
    stmt: Stmt
    post: Expr
    purpose: str = ""

    def verification_condition(self) -> Expr:
        """The validity obligation ``pre ==> wp(stmt, post)``."""
        return build.implies(self.pre, weakest_precondition(self.stmt, self.post))

    def describe(self) -> str:
        """Single-line rendering used in reports and error messages."""
        body = pretty_stmt(self.stmt).replace("\n", " ")
        tag = f" [{self.purpose}]" if self.purpose else ""
        return f"{{{pretty(self.pre)}}} {body} {{{pretty(self.post)}}}{tag}"


def check_triple(triple: HoareTriple, solver: Optional[Solver] = None) -> bool:
    """Return True iff *triple* is valid (conservatively False on solver UNKNOWN)."""
    solver = solver or Solver()
    return solver.check_valid(triple.verification_condition())
