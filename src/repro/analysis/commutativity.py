"""Commutativity checking for CCR bodies (paper §4.3) and its exploration-side
extension: SMT-proven *semantic independence* of monitor methods.

``Comm(w, M)`` holds when the body of *w* commutes with the body of every
other CCR in the monitor, i.e. executing the two bodies in either order from
the same initial state produces the same final monitor state.  The check is
performed symbolically: both compositions are summarized by forward symbolic
execution and the final values of every assigned shared variable are compared
with the SMT solver.  Loops (which symbolic execution cannot summarize) make
the answer conservatively ``False``.

The exploration engine asks a stronger question (context-sensitive DPOR
style): may two *pending segments* of different virtual threads be reordered
without the schedule explorer noticing?  That needs, per CCR pair,

1. **state commutation** over *all* assigned variables — shared fields *and*
   each thread's locals (a local such as a ticket number is observable later
   in the same thread, so ``t = count`` does not commute with ``count++``
   even though the final shared state agrees);
2. **enabledness preservation** — each body must leave the truth value of
   the other CCR's guard unchanged (checked via ``wp``): a body that flips a
   guard changes which thread wakes or blocks, which is observable even when
   the final states agree.

Thread-local variables of the second segment are freshly renamed before
either check (two threads running the same method must not conflate their
parameters, cf. Example 4.2).  Verdicts are memoized in the solver's
:class:`~repro.smt.cache.FormulaCache` keyed by the structural hash of the
statement pair plus the shared-name set, so suite-wide class builds and
mutation campaigns re-prove nothing.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro import obs
from repro.logic import build
from repro.logic.free_vars import free_vars
from repro.logic.terms import Expr, Var
from repro.lang.ast import CCR, Monitor, Stmt, seq, stmt_assigned_vars
from repro.analysis.lint.dataflow import method_effects, stmt_effects
from repro.analysis.renaming import rename_stmt_locals, rename_thread_locals
from repro.analysis.symexec import SymbolicExecutionError, symbolic_execute
from repro.analysis.wp import weakest_precondition
from repro.smt.cache import FormulaCache
from repro.smt.solver import Solver

#: Deterministic rename suffix for "the other thread" in pairwise checks.
#: Fixed (not a counter) so memo keys and generated matrices are stable.
_OTHER = "sem§2"

#: The static independence tier: answer disjoint-footprint pairs from the
#: lint dataflow's read/write sets without any solver work.  Sound because a
#: pair neither side of which writes anything the other mentions commutes
#: outright; gated to summarizable bodies so every answered verdict is
#: exactly what the symbolic path would have proven.  Toggleable for the
#: on-vs-off equivalence tests.
_STATIC_PREFILTER = True

_DEFAULT_SOLVER: Optional[Solver] = None


def set_static_prefilter(enabled: bool) -> bool:
    """Enable/disable the static pre-filter; returns the previous setting."""
    global _STATIC_PREFILTER
    previous = _STATIC_PREFILTER
    _STATIC_PREFILTER = enabled
    return previous


def _default_solver() -> Solver:
    """One shared, cached solver for callers that do not bring their own.

    Commutativity checks used to build a fresh :class:`Solver` per pair; the
    module-level instance keeps the atom table, theory lemmas and the
    commute-verdict memo warm across every check in the process.
    """
    global _DEFAULT_SOLVER
    if _DEFAULT_SOLVER is None:
        _DEFAULT_SOLVER = Solver(cache=FormulaCache())
    return _DEFAULT_SOLVER


def _count(solver: Solver, key: str) -> None:
    solver.statistics[key] = solver.statistics.get(key, 0) + 1


def _check_valid_degrading(solver: Solver, formula) -> bool:
    """``check_valid`` with degradation accounting.

    An UNKNOWN verdict (timeout, iteration budget, injected fault) already
    answers False — "not proven to commute", the sound direction: the pair
    is treated as dependent and DPOR merely prunes less.  This wrapper makes
    the degradation *observable*: ``degraded.commutativity`` in the active
    metrics registry plus a trace instant.
    """
    ok = solver.check_valid(formula)
    if not ok and solver.consume_unknown() is not None:
        obs.registry().inc("degraded.commutativity")
        obs.tracer().instant("degraded.commutativity", cat="smt")
    return ok


def _memo(solver: Solver, key, compute) -> bool:
    """Look a verdict up in the solver's commute memo, computing on miss.

    With a tracer active, each memo consultation becomes a ``commute.pair``
    span tagged with the pair's structural hash and its cache outcome, so a
    trace shows exactly which independence checks hit the solver.
    """
    cache = solver.cache
    if cache is None:
        return compute()
    tracer = obs.tracer()
    if not tracer.enabled:
        verdict = cache.lookup_commute(key)
        if verdict is not None:
            _count(solver, "commute_cache_hits")
            return verdict
        _count(solver, "commute_cache_misses")
        verdict = compute()
        cache.store_commute(key, verdict)
        return verdict
    with tracer.span("commute.pair", cat="commute", kind=str(key[0]),
                     formula=obs.formula_fingerprint(key)) as span:
        verdict = cache.lookup_commute(key)
        if verdict is not None:
            _count(solver, "commute_cache_hits")
            span.set(cache="hit", verdict=bool(verdict))
            return verdict
        _count(solver, "commute_cache_misses")
        verdict = compute()
        cache.store_commute(key, verdict)
        span.set(cache="miss", verdict=bool(verdict))
        return verdict


def bodies_commute(first: Stmt, second: Stmt, solver: Optional[Solver] = None,
                   shared_names: Optional[frozenset] = None) -> bool:
    """Return True when ``first; second`` and ``second; first`` are equivalent.

    When *shared_names* is given, only those variables' final values are
    compared (thread-local variables of distinct threads cannot interfere);
    with ``shared_names=None`` every assigned variable is compared, which is
    the right notion when the two statements' locals are already disjoint.
    """
    solver = solver or _default_solver()
    if _STATIC_PREFILTER:
        effects_a = stmt_effects(first)
        effects_b = stmt_effects(second)
        # Disjoint summarizable bodies produce structurally identical final
        # values in either order: the symbolic path would prove exactly True,
        # so skipping it changes query counts only, never verdicts.
        if (effects_a.summarizable and effects_b.summarizable
                and effects_a.disjoint_from(effects_b)):
            _count(solver, "commute_static_skips")
            tracer = obs.tracer()
            if tracer.enabled:
                tracer.instant(
                    "commute.pair", cat="commute", kind="bodies",
                    cache="static_skip",
                    formula=obs.formula_fingerprint((first, second)))
            return True
    return _memo(solver, ("bodies", first, second, shared_names),
                 lambda: _bodies_commute(first, second, solver, shared_names))


def _bodies_commute(first: Stmt, second: Stmt, solver: Solver,
                    shared_names: Optional[frozenset]) -> bool:
    try:
        order_a = symbolic_execute(seq(first, second))
        order_b = symbolic_execute(seq(second, first))
    except SymbolicExecutionError:
        return False
    touched = set(order_a.values) | set(order_b.values)
    if shared_names is not None:
        touched &= set(shared_names)
    for name in sorted(touched):
        value_a = order_a.values.get(name)
        value_b = order_b.values.get(name)
        if value_a is None or value_b is None:
            # Assigned in one order but not the other: compare against the
            # initial value of the variable.
            present = value_a if value_a is not None else value_b
            missing = Var(name, _sort_of_value(present))
            value_a = value_a if value_a is not None else missing
            value_b = value_b if value_b is not None else missing
        if not _check_valid_degrading(solver, build.eq(value_a, value_b)):
            return False
    return True


def ccr_commutes_with_all(ccr: CCR, monitor: Monitor,
                          solver: Optional[Solver] = None) -> bool:
    """The paper's ``Comm(w, M)``: w's body commutes with every *other* CCR body."""
    solver = solver or _default_solver()
    shared = frozenset(monitor.field_names())
    for _method, other in monitor.ccrs():
        if other is ccr:
            continue
        if not bodies_commute(ccr.body, other.body, solver, shared):
            return False
    return True


# ---------------------------------------------------------------------------
# Semantic independence for the exploration engine (context-sensitive DPOR)
# ---------------------------------------------------------------------------


def _expr_names(expr: Expr) -> Set[str]:
    return {var.name for var in free_vars(expr)}


def _stmt_names(stmt: Stmt) -> Set[str]:
    """Every variable name a statement mentions (reads and writes)."""
    names: Set[str] = set(stmt_assigned_vars(stmt))
    for expr in _stmt_exprs(stmt):
        names |= _expr_names(expr)
    return names


def _stmt_exprs(stmt: Stmt):
    from repro.lang.ast import ArrayAssign, Assign, If, LocalDecl, While

    if isinstance(stmt, Assign):
        yield stmt.value
    elif isinstance(stmt, LocalDecl):
        yield stmt.init
    elif isinstance(stmt, ArrayAssign):
        yield stmt.index
        yield stmt.value
    elif isinstance(stmt, If):
        yield stmt.cond
    elif isinstance(stmt, While):
        yield stmt.cond
        if stmt.invariant is not None:
            yield stmt.invariant
    for child in stmt.children():
        yield from _stmt_exprs(child)


def _guard_preserved(body: Stmt, guard: Expr, solver: Solver) -> bool:
    """Does executing *body* provably leave *guard*'s truth value unchanged?

    The enabledness-preservation side condition of context-sensitive DPOR:
    ``valid(guard <=> wp(body, guard))``.  Bodies whose ``wp`` cannot be
    computed (array assignments before scalarization) and loop havoc that
    defeats the equivalence both answer conservatively False.
    """
    if not stmt_assigned_vars(body) & _expr_names(guard):
        return True  # the body touches nothing the guard reads
    try:
        transformed = weakest_precondition(body, guard)
    except (ValueError, TypeError):
        return False
    return _check_valid_degrading(solver, build.iff(guard, transformed))


#: One placed notification, structurally: (predicate, conditional, broadcast).
NotificationSpec = Tuple[Expr, bool, bool]


def segments_semantically_independent(guard_a: Expr, body_a: Stmt,
                                      guard_b: Expr, body_b: Stmt,
                                      shared_names: frozenset,
                                      solver: Optional[Solver] = None,
                                      notifications_a: Tuple[NotificationSpec, ...] = (),
                                      notifications_b: Tuple[NotificationSpec, ...] = ()) -> bool:
    """May two CCR segments of *different threads* be reordered unobservably?

    Renames the second segment's thread-locals apart, then requires state
    commutation over every assigned variable (shared fields and both sides'
    locals), enabledness preservation of both guards, and order-equivalent
    notification behaviour (see :func:`_notifications_equivalent`).
    """
    solver = solver or _default_solver()
    key = ("segments", guard_a, body_a, notifications_a,
           guard_b, body_b, notifications_b, shared_names)
    return _memo(solver, key,
                 lambda: _segments_independent(guard_a, body_a, notifications_a,
                                               guard_b, body_b, notifications_b,
                                               shared_names, solver))


def _segments_independent(guard_a: Expr, body_a: Stmt,
                          notifications_a: Tuple[NotificationSpec, ...],
                          guard_b: Expr, body_b: Stmt,
                          notifications_b: Tuple[NotificationSpec, ...],
                          shared_names: frozenset, solver: Solver) -> bool:
    # Notification predicates are *waiter-side* formulas (§6): their
    # thread-local variables belong to whichever thread sleeps on the
    # condition, never to the notifying segment, so they are left unrenamed
    # on both sides (they stay universally quantified) and both sides'
    # occurrences of one predicate remain structurally comparable.
    locals_b = (_stmt_names(body_b) | _expr_names(guard_b)) - shared_names
    body_b = rename_stmt_locals(body_b, locals_b, _OTHER)
    guard_b = rename_thread_locals(guard_b, locals_b, _OTHER)
    # Cheap syntactic disjointness: once the locals are apart, segments
    # whose writes touch nothing the other side mentions commute without
    # any solver work.
    names_a = _stmt_names(body_a) | _expr_names(guard_a)
    for predicate, _conditional, _broadcast in notifications_a:
        names_a |= _expr_names(predicate)
    names_b = _stmt_names(body_b) | _expr_names(guard_b)
    for predicate, _conditional, _broadcast in notifications_b:
        names_b |= _expr_names(predicate)
    writes_a = set(stmt_assigned_vars(body_a))
    writes_b = set(stmt_assigned_vars(body_b))
    if not (writes_a & names_b) and not (writes_b & names_a):
        return True
    # Locals are disjoint after renaming, so comparing *every* assigned
    # variable across the two orders captures both the shared state and each
    # thread's view of it (shared_names=None).
    if not bodies_commute(body_a, body_b, solver, shared_names=None):
        return False
    # Guards are re-evaluated at arbitrary points (wake-ups included), so
    # their truth value must be preserved outright.
    if not _guard_preserved(body_a, guard_b, solver):
        return False
    if not _guard_preserved(body_b, guard_a, solver):
        return False
    return (_notifications_equivalent(body_a, notifications_a, body_b,
                                      notifications_b, shared_names, solver)
            and _notifications_equivalent(body_b, notifications_b, body_a,
                                          notifications_a, shared_names, solver))


def _notifications_equivalent(own_body: Stmt,
                              own_notifications: Tuple[NotificationSpec, ...],
                              other_body: Stmt,
                              other_notifications: Tuple[NotificationSpec, ...],
                              shared_names: frozenset, solver: Solver) -> bool:
    """Do *own_body*'s notifications behave identically in both orders?

    Per notification (evaluated exactly once, right after its own CCR's
    body), one of:

    * **unconditional broadcast** — fires in both orders and wakes every
      sleeper of its condition: order-invariant outright;
    * **unconditional signal** — fires in both orders; its wake-one
      candidate set only depends on order if the *other* segment also
      notifies the same predicate, so that is excluded;
    * **pointwise preservation** — the precise obligation is preservation
      of ``wp(own body, predicate)`` by the other body: with commutation
      already proven, instantiating the universally quantified pre-state at
      the other body's output shows the predicate fires identically in both
      orders.  (A predicate its own body *forces*, like "my forks are free"
      after putting them down, is then trivially preserved.)
    * **monotone broadcast** — the fire may shift between the two adjacent
      segments: when the *other* segment also places at least one
      notification on this predicate, every notification either side places
      on it is a broadcast, and neither body ever *falsifies* the predicate
      (``valid(p => wp(body, p))``), then the last check in either order
      runs in the common final state, so "some broadcast fired across the
      pair" — and hence the woken set, all sleepers of the condition — is
      the same in both orders.  Without a compensating other-side broadcast
      the rule does not apply: the other body may *enable* the predicate,
      making the lone broadcast fire in one order only.
    """
    for predicate, conditional, broadcast in own_notifications:
        others_on_pred = [n for n in other_notifications if n[0] == predicate]
        if not conditional:
            if broadcast:
                continue
            if others_on_pred:
                return False
            continue
        # A CCR that assigns a local sharing its name with a waiter-side
        # predicate variable would conflate the two identities below.
        if stmt_assigned_vars(own_body) & (_expr_names(predicate) - shared_names):
            return False
        try:
            composed = weakest_precondition(own_body, predicate)
        except (ValueError, TypeError):
            return False
        if _guard_preserved(other_body, composed, solver):
            continue
        if (not broadcast or not others_on_pred
                or any(not n[2] for n in others_on_pred)):
            return False
        if not (_never_falsifies(own_body, predicate, solver)
                and _never_falsifies(other_body, predicate, solver)):
            return False
    return True


def _never_falsifies(body: Stmt, predicate: Expr, solver: Solver) -> bool:
    """``valid(predicate => wp(body, predicate))`` — the body may enable the
    predicate but never disable it."""
    if not stmt_assigned_vars(body) & _expr_names(predicate):
        return True
    try:
        transformed = weakest_precondition(body, predicate)
    except (ValueError, TypeError):
        return False
    return _check_valid_degrading(solver, build.implies(predicate, transformed))


def _ccr_notifications(ccr) -> Tuple[NotificationSpec, ...]:
    """The placed notifications of an explicit CCR, structurally."""
    return tuple((n.predicate, n.conditional, n.broadcast)
                 for n in getattr(ccr, "notifications", ()))


def methods_semantically_independent(method_a, method_b, shared_names: frozenset,
                                     solver: Optional[Solver] = None) -> bool:
    """Pairwise segment independence lifted to whole methods.

    A pending segment of a method may execute any of its CCR bodies (guards
    that hold do not wait), so the method pair is independent only when every
    cross-product CCR pair is.  *method_a*/*method_b* are
    :class:`~repro.placement.target.ExplicitMethod` instances.
    """
    solver = solver or _default_solver()
    if _STATIC_PREFILTER:
        effects_a = method_effects(method_a)
        effects_b = method_effects(method_b)
        # Raw-name disjointness (guards, bodies, notification predicates) is
        # strictly stronger than the per-segment syntactic early return after
        # the §4.2 renaming — renamed locals carry a '$' suffix no source
        # identifier contains — so every pair answered here would have been
        # answered True segment by segment anyway, just more slowly.
        if effects_a.disjoint_from(effects_b):
            _count(solver, "commute_static_skips")
            tracer = obs.tracer()
            if tracer.enabled:
                tracer.instant(
                    "commute.pair", cat="commute", kind="methods",
                    cache="static_skip",
                    pair=f"{method_a.name}/{method_b.name}")
            return True
    for ccr_a in method_a.ccrs:
        for ccr_b in method_b.ccrs:
            if not segments_semantically_independent(
                    ccr_a.guard, ccr_a.body, ccr_b.guard, ccr_b.body,
                    shared_names, solver,
                    notifications_a=_ccr_notifications(ccr_a),
                    notifications_b=_ccr_notifications(ccr_b)):
                return False
    return True


def _instantiate_expr(expr: Expr, binding: Dict[str, Expr]) -> Expr:
    from repro.logic.substitute import substitute

    mapping = {var: binding[var.name]
               for var in free_vars(expr) if var.name in binding}
    return substitute(expr, mapping)


def _instantiate_stmt(stmt: Stmt, binding: Dict[str, Expr]) -> Stmt:
    from repro.lang.ast import ArrayAssign, Assign, If, LocalDecl, Seq, Skip, While

    if isinstance(stmt, Skip):
        return stmt
    if isinstance(stmt, Assign):
        return Assign(stmt.target, _instantiate_expr(stmt.value, binding))
    if isinstance(stmt, LocalDecl):
        return LocalDecl(stmt.name, stmt.sort, _instantiate_expr(stmt.init, binding))
    if isinstance(stmt, ArrayAssign):
        return ArrayAssign(stmt.array, _instantiate_expr(stmt.index, binding),
                           _instantiate_expr(stmt.value, binding))
    if isinstance(stmt, Seq):
        return Seq(tuple(_instantiate_stmt(s, binding) for s in stmt.stmts))
    if isinstance(stmt, If):
        return If(_instantiate_expr(stmt.cond, binding),
                  _instantiate_stmt(stmt.then, binding),
                  _instantiate_stmt(stmt.orelse, binding))
    if isinstance(stmt, While):
        invariant = (_instantiate_expr(stmt.invariant, binding)
                     if stmt.invariant is not None else None)
        return While(_instantiate_expr(stmt.cond, binding),
                     _instantiate_stmt(stmt.body, binding), invariant)
    raise TypeError(f"cannot instantiate statement {type(stmt).__name__}")


def _param_binding(method, args) -> Optional[Dict[str, Expr]]:
    """Constant bindings for a concrete call, or None when not instantiable."""
    from repro.logic.terms import BOOL, INT, BoolConst, IntConst

    if len(args) != len(method.params):
        return None
    binding: Dict[str, Expr] = {}
    for param, value in zip(method.params, args):
        if param.sort is BOOL and isinstance(value, bool):
            binding[param.name] = BoolConst(value)
        elif param.sort is INT and isinstance(value, (int, bool)):
            binding[param.name] = IntConst(int(value))
        else:
            return None
    return binding


def calls_semantically_independent(method_a, args_a, method_b, args_b,
                                   shared_names: frozenset,
                                   solver: Optional[Solver] = None) -> bool:
    """Value-sensitive independence of two *concrete* monitor calls.

    Like :func:`methods_semantically_independent` but with each side's
    parameters bound to the call's actual arguments first, which decides
    pairs the fully symbolic check must reject — e.g. two ``putDown`` calls
    whose ``ite``-scalarized array writes only collide for out-of-range
    indices no real workload passes.  Parameters that are reassigned inside
    a body (none in the paper's language, but genmon output is arbitrary)
    make the call conservatively dependent.
    """
    solver = solver or _default_solver()
    binding_a = _param_binding(method_a, args_a)
    binding_b = _param_binding(method_b, args_b)
    if binding_a is None or binding_b is None:
        return False
    for ccr in method_a.ccrs:
        if stmt_assigned_vars(ccr.body) & set(binding_a):
            return False
    for ccr in method_b.ccrs:
        if stmt_assigned_vars(ccr.body) & set(binding_b):
            return False
    # Notification predicates are *waiter-side* formulas (§6): their
    # thread-local variables belong to whichever thread sleeps on the
    # condition, never to the notifying call, so they must stay free —
    # binding a like-named parameter would wrongly specialize them.
    for ccr_a in method_a.ccrs:
        for ccr_b in method_b.ccrs:
            if not segments_semantically_independent(
                    _instantiate_expr(ccr_a.guard, binding_a),
                    _instantiate_stmt(ccr_a.body, binding_a),
                    _instantiate_expr(ccr_b.guard, binding_b),
                    _instantiate_stmt(ccr_b.body, binding_b),
                    shared_names, solver,
                    notifications_a=_ccr_notifications(ccr_a),
                    notifications_b=_ccr_notifications(ccr_b)):
                return False
    return True


def semantic_independence_for_explicit(
        explicit, solver: Optional[Solver] = None) -> Dict[Tuple[str, str], bool]:
    """The semantic-independence matrix of a placed monitor's methods.

    Entries prove bodies commute, guards are preserved *and* the pair's
    placed notifications fire order-equivalently — the proof that licenses
    the exploration layer's relaxed shared-signal gating
    (``condition_vars_compatible(..., allow_shared_signals=True)``).  The
    matrix is therefore notification-sensitive: campaigns that mutate
    notifications (e.g. the deletion sweep) must recompute it per mutant
    rather than reuse the parent's.  The matrix is symmetric and includes
    self pairs — two threads in the same method commute iff the method's
    body commutes with a renamed copy of itself.
    """
    solver = solver or _default_solver()
    shared = frozenset(decl.name for decl in explicit.fields)
    matrix: Dict[Tuple[str, str], bool] = {}
    with obs.tracer().span("commute.matrix", cat="commute",
                           monitor=getattr(explicit, "name", "?")):
        for method_a in explicit.methods:
            for method_b in explicit.methods:
                pair = (method_a.name, method_b.name)
                if (pair[1], pair[0]) in matrix:
                    matrix[pair] = matrix[(pair[1], pair[0])]
                    continue
                matrix[pair] = methods_semantically_independent(
                    method_a, method_b, shared, solver)
    return matrix


def matrix_with_statistics(
        explicit, solver: Optional[Solver] = None,
) -> Tuple[Dict[Tuple[str, str], bool], Dict[str, int]]:
    """The independence matrix plus *this build's own* solver-stats delta.

    The module's shared default solver accumulates statistics across every
    matrix built in the process, so reading ``solver.statistics`` after a
    build over-reports all builds after the first.  This wrapper
    snapshot/diffs around the build (the registry pattern), giving each
    monitor its isolated share; the delta also lands in the active metrics
    registry under ``explore.matrix.*``.
    """
    solver = solver if solver is not None else _default_solver()
    before = solver.snapshot_statistics()
    matrix = semantic_independence_for_explicit(explicit, solver)
    delta = {key: value - before.get(key, 0)
             for key, value in solver.statistics.items()}
    registry = obs.registry()
    for key, value in delta.items():
        if value:
            registry.inc(f"explore.matrix.{key}", value)
    return matrix, delta


def _sort_of_value(expr: Expr):
    from repro.logic.terms import sort_of

    return sort_of(expr)
