"""Commutativity checking for CCR bodies (paper §4.3).

``Comm(w, M)`` holds when the body of *w* commutes with the body of every
other CCR in the monitor, i.e. executing the two bodies in either order from
the same initial state produces the same final monitor state.  The check is
performed symbolically: both compositions are summarized by forward symbolic
execution and the final values of every assigned shared variable are compared
with the SMT solver.  Loops (which symbolic execution cannot summarize) make
the answer conservatively ``False``.
"""

from __future__ import annotations

from typing import Optional

from repro.logic import build
from repro.logic.terms import Expr, Var
from repro.lang.ast import CCR, Monitor, Stmt, seq
from repro.analysis.symexec import SymbolicExecutionError, symbolic_execute
from repro.smt.solver import Solver


def bodies_commute(first: Stmt, second: Stmt, solver: Optional[Solver] = None,
                   shared_names: Optional[frozenset] = None) -> bool:
    """Return True when ``first; second`` and ``second; first`` are equivalent.

    When *shared_names* is given, only those variables' final values are
    compared (thread-local variables of distinct threads cannot interfere).
    """
    solver = solver or Solver()
    try:
        order_a = symbolic_execute(seq(first, second))
        order_b = symbolic_execute(seq(second, first))
    except SymbolicExecutionError:
        return False
    touched = set(order_a.values) | set(order_b.values)
    if shared_names is not None:
        touched &= set(shared_names)
    for name in sorted(touched):
        value_a = order_a.values.get(name)
        value_b = order_b.values.get(name)
        if value_a is None or value_b is None:
            # Assigned in one order but not the other: compare against the
            # initial value of the variable.
            present = value_a if value_a is not None else value_b
            missing = Var(name, _sort_of_value(present))
            value_a = value_a if value_a is not None else missing
            value_b = value_b if value_b is not None else missing
        if not solver.check_valid(build.eq(value_a, value_b)):
            return False
    return True


def ccr_commutes_with_all(ccr: CCR, monitor: Monitor,
                          solver: Optional[Solver] = None) -> bool:
    """The paper's ``Comm(w, M)``: w's body commutes with every *other* CCR body."""
    solver = solver or Solver()
    shared = frozenset(monitor.field_names())
    for _method, other in monitor.ccrs():
        if other is ccr:
            continue
        if not bodies_commute(ccr.body, other.body, solver, shared):
            return False
    return True


def _sort_of_value(expr: Expr):
    from repro.logic.terms import sort_of

    return sort_of(expr)
