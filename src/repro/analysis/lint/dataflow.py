"""May-read / may-write effect summaries for monitor statements and guards.

The lint layer's substrate: a flow-insensitive AST dataflow that computes,
per statement / guard / method, the set of variable names the code may read
and may write.  Field-level projections of these sets drive the
signal-obligation map (every segment that may change a guard's valuation owes
a notification on that condition), the dead-signal/naked-notify smells, and
the static independence pre-filter in
:mod:`repro.analysis.commutativity`.

Array stores are handled both before and after scalarization: a
pre-scalarization ``ArrayAssign`` conservatively writes the array name plus
every declared cell scalar, while Java-style heap stores reuse
:mod:`repro.analysis.alias` — :func:`heap_store_effects` expands
``owner.fld = e`` through the points-to analysis' guarded-store
instrumentation and summarizes the expansion, so alias-induced writes flow
through the same effect walk as everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.logic.free_vars import free_vars
from repro.logic.terms import Expr
from repro.lang.arrays import cell_name
from repro.lang.ast import (
    ArrayAssign,
    Assign,
    If,
    LocalDecl,
    Seq,
    Skip,
    Stmt,
    While,
)
from repro.analysis.alias import PointsToAnalysis, expand_store_with_analysis


@dataclass(frozen=True)
class EffectSummary:
    """May-read / may-write name sets of one piece of code.

    ``summarizable`` is False when the code contains constructs forward
    symbolic execution cannot summarize (loops, unscalarized array stores);
    the commutativity pre-filter refuses to decide such pairs statically so
    its verdicts stay exactly those of the symbolic path.
    """

    reads: FrozenSet[str]
    writes: FrozenSet[str]
    summarizable: bool = True

    @property
    def names(self) -> FrozenSet[str]:
        """Everything the code mentions (reads and writes)."""
        return self.reads | self.writes

    def field_reads(self, fields: FrozenSet[str]) -> FrozenSet[str]:
        return self.reads & fields

    def field_writes(self, fields: FrozenSet[str]) -> FrozenSet[str]:
        return self.writes & fields

    def disjoint_from(self, other: "EffectSummary") -> bool:
        """Neither side writes anything the other mentions."""
        return not (self.writes & other.names) and not (other.writes & self.names)

    def union(self, other: "EffectSummary") -> "EffectSummary":
        return EffectSummary(self.reads | other.reads,
                             self.writes | other.writes,
                             self.summarizable and other.summarizable)


EMPTY_EFFECTS = EffectSummary(frozenset(), frozenset())


def expr_reads(expr: Expr) -> FrozenSet[str]:
    """The variable names an expression may read."""
    return frozenset(var.name for var in free_vars(expr))


def stmt_effects(stmt: Stmt,
                 array_sizes: Optional[Mapping[str, int]] = None) -> EffectSummary:
    """The may-read/may-write summary of a statement.

    *array_sizes* maps pre-scalarization array field names to their declared
    sizes so an ``ArrayAssign`` can be attributed to every cell scalar it may
    target; without it the write is attributed to the bare array name only.
    """
    reads: set = set()
    writes: set = set()
    summarizable = _collect_effects(stmt, reads, writes, array_sizes or {})
    return EffectSummary(frozenset(reads), frozenset(writes), summarizable)


def _collect_effects(stmt: Stmt, reads: set, writes: set,
                     array_sizes: Mapping[str, int]) -> bool:
    summarizable = True
    if isinstance(stmt, Skip):
        return True
    if isinstance(stmt, Assign):
        writes.add(stmt.target)
        reads.update(expr_reads(stmt.value))
        return True
    if isinstance(stmt, LocalDecl):
        writes.add(stmt.name)
        reads.update(expr_reads(stmt.init))
        return True
    if isinstance(stmt, ArrayAssign):
        writes.add(stmt.array)
        for index in range(array_sizes.get(stmt.array, 0)):
            writes.add(cell_name(stmt.array, index))
        reads.update(expr_reads(stmt.index))
        reads.update(expr_reads(stmt.value))
        return False  # symbolic execution rejects unscalarized stores
    if isinstance(stmt, Seq):
        for child in stmt.stmts:
            summarizable &= _collect_effects(child, reads, writes, array_sizes)
        return summarizable
    if isinstance(stmt, If):
        reads.update(expr_reads(stmt.cond))
        summarizable &= _collect_effects(stmt.then, reads, writes, array_sizes)
        summarizable &= _collect_effects(stmt.orelse, reads, writes, array_sizes)
        return summarizable
    if isinstance(stmt, While):
        reads.update(expr_reads(stmt.cond))
        if stmt.invariant is not None:
            reads.update(expr_reads(stmt.invariant))
        _collect_effects(stmt.body, reads, writes, array_sizes)
        return False  # loops defeat forward symbolic execution
    # Unknown statement type: claim nothing, decide nothing statically.
    for child in stmt.children():
        _collect_effects(child, reads, writes, array_sizes)
    return False


def heap_store_effects(owner: str, fld: str, value: Expr,
                       analysis: PointsToAnalysis,
                       candidates: Iterable[str]) -> EffectSummary:
    """The effect footprint of a heap store ``owner.fld = value`` (§6).

    Expands the store through the points-to analysis' guarded-update
    instrumentation (``if (v == xi) xi.f = e`` per may-alias) and summarizes
    the expansion, so every field scalar an alias may reach shows up in the
    write set.
    """
    expanded = expand_store_with_analysis(owner, fld, value, analysis, candidates)
    return stmt_effects(expanded)


# ---------------------------------------------------------------------------
# Monitor-level summaries
# ---------------------------------------------------------------------------


def _monitor_array_sizes(monitor: object) -> Dict[str, int]:
    sizes: Dict[str, int] = {}
    for decl in getattr(monitor, "fields", ()):
        if getattr(decl, "array_size", None) is not None:
            sizes[decl.name] = decl.array_size
    return sizes


def iter_ccrs(monitor: object) -> List[Tuple[object, object]]:
    """``(method, ccr)`` pairs of an implicit :class:`~repro.lang.ast.Monitor`
    or a placed :class:`~repro.placement.target.ExplicitMonitor`."""
    pairs: List[Tuple[object, object]] = []
    for method in getattr(monitor, "methods", ()):
        for ccr in method.ccrs:
            pairs.append((method, ccr))
    return pairs


def monitor_guards(monitor: object) -> List[Expr]:
    """The distinct non-trivial guard predicates, in declaration order."""
    from repro.logic import build

    seen: List[Expr] = []
    for _method, ccr in iter_ccrs(monitor):
        if ccr.guard == build.TRUE:
            continue
        if ccr.guard not in seen:
            seen.append(ccr.guard)
    return seen


def segment_effects(monitor: object) -> Dict[str, EffectSummary]:
    """Per-CCR body summaries, keyed by CCR label."""
    sizes = _monitor_array_sizes(monitor)
    return {ccr.label: stmt_effects(ccr.body, sizes)
            for _method, ccr in iter_ccrs(monitor)}


def method_effects(method: object,
                   array_sizes: Optional[Mapping[str, int]] = None,
                   include_notifications: bool = True) -> EffectSummary:
    """One method's combined effects: guards, bodies, placed notifications.

    Guard and notification-predicate reads are included because the
    independence pre-filter must treat a write that flips another method's
    guard (or notification condition) as an interaction.
    """
    summary = EMPTY_EFFECTS
    for ccr in method.ccrs:
        summary = summary.union(stmt_effects(ccr.body, array_sizes))
        summary = summary.union(EffectSummary(expr_reads(ccr.guard), frozenset()))
        if include_notifications:
            for notification in getattr(ccr, "notifications", ()):
                summary = summary.union(
                    EffectSummary(expr_reads(notification.predicate), frozenset()))
    return summary


def obligation_map(monitor: object,
                   effects: Optional[Dict[str, EffectSummary]] = None
                   ) -> Dict[str, Tuple[Expr, ...]]:
    """The signal-obligation map: which guards each segment may enable.

    For every CCR *w* and every non-trivial guard *g*, *w* owes a
    notification obligation on *g* when its body may write a shared field *g*
    reads — the purely syntactic over-approximation of "executing *w* can
    wake a thread blocked on *g*".  The placement cross-check discharges each
    obligation either by a covering placed notification or by the same
    can-enable Hoare triple Algorithm 1 used to omit one.
    """
    fields = frozenset(decl.name for decl in getattr(monitor, "fields", ()))
    if effects is None:
        effects = segment_effects(monitor)
    obligations: Dict[str, Tuple[Expr, ...]] = {}
    for _method, ccr in iter_ccrs(monitor):
        owed = tuple(
            guard for guard in monitor_guards(monitor)
            if effects[ccr.label].field_writes(fields) & expr_reads(guard)
        )
        obligations[ccr.label] = owed
    return obligations
