"""``expresso lint`` — a static monitor analyzer.

A cheap dataflow layer that audits the expensive symbolic one: per-segment
may-read/may-write sets yield a signal-obligation map, the obligation map is
diffed against the SMT-derived placement (``missing-signal`` /
``dead-signal``), a handful of concurrency smells are flagged on generated
and fuzzed monitors, and the same read/write sets pre-filter the SMT
independence queries in :mod:`repro.analysis.commutativity`.
"""

from repro.analysis.lint.checks import (
    can_enable,
    check_coop_waits,
    check_dead_guards,
    check_dead_signals,
    check_missing_signals,
    check_naked_notifies,
    check_unreachable_methods,
    check_unused_fields,
    lint_explicit,
    lint_result,
)
from repro.analysis.lint.dataflow import (
    EffectSummary,
    expr_reads,
    heap_store_effects,
    method_effects,
    obligation_map,
    segment_effects,
    stmt_effects,
)
from repro.analysis.lint.report import (
    ADVISORY,
    CHECKS,
    ERROR,
    LintFinding,
    LintReport,
    merge_reports,
)

__all__ = [
    "ADVISORY",
    "CHECKS",
    "ERROR",
    "EffectSummary",
    "LintFinding",
    "LintReport",
    "can_enable",
    "check_coop_waits",
    "check_dead_guards",
    "check_dead_signals",
    "check_missing_signals",
    "check_naked_notifies",
    "check_unreachable_methods",
    "check_unused_fields",
    "expr_reads",
    "heap_store_effects",
    "lint_explicit",
    "lint_result",
    "merge_reports",
    "method_effects",
    "obligation_map",
    "segment_effects",
    "stmt_effects",
]
