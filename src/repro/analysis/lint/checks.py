"""The lint checks: placement cross-check plus concurrency smells.

The headline check is ``missing-signal``, the static soundness alarm on the
placement itself.  The obligation side comes from the dataflow: a segment
whose body may write a shared field some guard reads owes a notification on
that guard.  Each owed-but-unplaced obligation is then confirmed with the
*same* Hoare triple Algorithm 1 (line 7) used to omit the notification —
``{I ∧ guard_w ∧ ¬p'} body_w {¬p'}`` with the blocked thread's locals
renamed apart (§4.2) — so on a correct placement every uncovered obligation
is provably un-enabling (zero false positives), while deleting any placed
notification leaves a failing triple behind (zero false negatives: placement
only placed it because this triple failed).  Running inside the pipeline the
triples are byte-identical to placement's, so the formula cache answers them
for free.

The remaining checks are solver-light smells for generated/fuzzed/ingested
monitors: SMT-unsat guards (``dead-guard``), signals whose segment cannot
re-enable their predicate (``dead-signal``), notifications with no prior
state change (``naked-notify``), ``unused-field``, ``unreachable-method``,
and ``wait-in-non-loop`` shapes in emitted cooperative code.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro import obs
from repro.logic import build
from repro.logic.free_vars import free_vars
from repro.logic.pretty import pretty
from repro.logic.terms import Expr
from repro.analysis.hoare import HoareTriple, check_triple
from repro.analysis.lint.dataflow import (
    EffectSummary,
    expr_reads,
    iter_ccrs,
    monitor_guards,
    obligation_map,
    segment_effects,
)
from repro.analysis.lint.report import ADVISORY, ERROR, LintFinding, LintReport
from repro.analysis.renaming import rename_thread_locals
from repro.smt.solver import Solver


def _field_names(monitor: object) -> FrozenSet[str]:
    return frozenset(decl.name for decl in getattr(monitor, "fields", ()))


def _guard_locals(guard: Expr, fields: FrozenSet[str]) -> FrozenSet[str]:
    """Thread-local names free in *guard* (everything that is not a field)."""
    return frozenset(var.name for var in free_vars(guard)
                     if var.name not in fields)


def _short(predicate: Expr) -> str:
    text = pretty(predicate)
    return text if len(text) <= 48 else text[:45] + "..."


def can_enable(invariant: Expr, ccr: object, predicate: Expr,
               fields: FrozenSet[str], solver: Solver) -> bool:
    """May executing *ccr* wake a thread blocked on *predicate*?

    Re-checks Algorithm 1's line-7 omission triple
    ``{I ∧ guard ∧ ¬p'} body {¬p'}`` (p' = p with thread-locals renamed
    apart, §4.2): the triple holding means the segment provably cannot
    enable the predicate.  An UNKNOWN verdict (solver budget exhausted)
    answers ``False``: a lint finding is an accusation of omission, and a
    degraded solver cannot sustain one — placement saw the same UNKNOWN and
    kept the notification, so firing ``missing-signal`` here would be a
    false error.  Each suppression is counted as ``degraded.lint``.
    """
    locals_in_p = _guard_locals(predicate, fields)
    other_p = rename_thread_locals(predicate, locals_in_p, "blk")
    pre = build.land(invariant, ccr.guard, build.lnot(other_p))
    no_signal = HoareTriple(pre, ccr.body, build.lnot(other_p),
                            purpose=f"{ccr.label} cannot wake {_short(predicate)}")
    ok = check_triple(no_signal, solver)
    if not ok and solver.consume_unknown() is not None:
        obs.registry().inc("degraded.lint")
        obs.tracer().instant("degraded.lint", cat="smt", ccr=ccr.label)
        return False
    return not ok


def check_missing_signals(explicit: object, solver: Solver,
                          effects: Dict[str, EffectSummary]) -> List[LintFinding]:
    """Obligations with no covering placed notification that the SMT
    confirmation cannot discharge."""
    fields = _field_names(explicit)
    invariant = getattr(explicit, "invariant", build.TRUE)
    findings: List[LintFinding] = []
    obligations = obligation_map(explicit, effects)
    for method, ccr in iter_ccrs(explicit):
        for predicate in obligations[ccr.label]:
            covered = any(note.predicate == predicate
                          for note in getattr(ccr, "notifications", ()))
            if covered:
                continue
            if not can_enable(invariant, ccr, predicate, fields, solver):
                continue  # provably cannot wake anyone: omission is sound
            findings.append(LintFinding(
                check="missing-signal", severity=ERROR,
                ccr_label=ccr.label, method=method.name,
                predicate=pretty(predicate),
                message=f"body may enable '{_short(predicate)}' but places no "
                        f"notification on it (threads blocked there can starve)"))
    return findings


def check_dead_signals(explicit: object,
                       effects: Dict[str, EffectSummary]) -> List[LintFinding]:
    """Placed notifications whose segment writes nothing their predicate reads."""
    fields = _field_names(explicit)
    findings: List[LintFinding] = []
    for method, ccr in iter_ccrs(explicit):
        summary = effects[ccr.label]
        for note in getattr(ccr, "notifications", ()):
            predicate_fields = expr_reads(note.predicate) & fields
            if summary.field_writes(fields) & predicate_fields:
                continue
            findings.append(LintFinding(
                check="dead-signal", severity=ADVISORY,
                ccr_label=ccr.label, method=method.name,
                predicate=pretty(note.predicate),
                message=f"notification on '{_short(note.predicate)}' but the "
                        f"body writes none of the fields it reads"))
    return findings


def check_dead_guards(explicit: object, solver: Solver) -> List[LintFinding]:
    """Guards no state can ever satisfy (SMT-unsat predicates)."""
    findings: List[LintFinding] = []
    for guard in monitor_guards(explicit):
        if solver.check_sat(guard).is_unsat:
            waiters = sorted(ccr.label for _m, ccr in iter_ccrs(explicit)
                             if ccr.guard == guard)
            findings.append(LintFinding(
                check="dead-guard", severity=ERROR,
                ccr_label=waiters[0] if waiters else None,
                predicate=pretty(guard),
                message=f"guard '{_short(guard)}' is unsatisfiable; "
                        f"{', '.join(waiters)} can never run"))
    return findings


def check_naked_notifies(explicit: object,
                         effects: Dict[str, EffectSummary]) -> List[LintFinding]:
    """Segments that notify without changing any shared state."""
    fields = _field_names(explicit)
    findings: List[LintFinding] = []
    for method, ccr in iter_ccrs(explicit):
        notes = getattr(ccr, "notifications", ())
        if not notes:
            continue
        if effects[ccr.label].field_writes(fields):
            continue
        findings.append(LintFinding(
            check="naked-notify", severity=ADVISORY,
            ccr_label=ccr.label, method=method.name,
            message=f"{len(notes)} notification(s) but the body writes no "
                    f"shared field (nothing can have become enabled here)"))
    return findings


def check_unused_fields(explicit: object,
                        effects: Dict[str, EffectSummary]) -> List[LintFinding]:
    """Fields no guard, body, or notification predicate ever mentions."""
    mentioned: set = set()
    for _method, ccr in iter_ccrs(explicit):
        mentioned |= effects[ccr.label].names
        mentioned |= expr_reads(ccr.guard)
        for note in getattr(ccr, "notifications", ()):
            mentioned |= expr_reads(note.predicate)
    findings: List[LintFinding] = []
    for decl in getattr(explicit, "fields", ()):
        if decl.name in mentioned:
            continue
        findings.append(LintFinding(
            check="unused-field", severity=ADVISORY,
            message=f"field '{decl.name}' is never read or written by any "
                    f"method"))
    return findings


def check_unreachable_methods(explicit: object, solver: Solver) -> List[LintFinding]:
    """Methods whose entry guard is unsatisfiable even alone."""
    findings: List[LintFinding] = []
    for method in getattr(explicit, "methods", ()):
        if not method.ccrs:
            continue
        entry = method.ccrs[0]
        if entry.guard == build.TRUE:
            continue
        if not solver.check_sat(entry.guard).is_unsat:
            continue
        findings.append(LintFinding(
            check="unreachable-method", severity=ADVISORY,
            ccr_label=entry.label, method=method.name,
            message=f"entry guard of '{method.name}' is unsatisfiable; the "
                    f"method can never be entered"))
    return findings


def check_coop_waits(source: str) -> List[LintFinding]:
    """``wait`` yields not directly inside a ``while`` re-check loop.

    Condition-variable discipline requires every wait to sit in a loop that
    re-checks its predicate (spurious wakeups, §6); the coop emission always
    produces that shape, so this check guards hand-edited or foreign
    cooperative monitor code.
    """
    findings: List[LintFinding] = []
    lines = source.splitlines()
    for index, line in enumerate(lines):
        stripped = line.lstrip()
        if not stripped.startswith('yield ("wait"'):
            continue
        indent = len(line) - len(stripped)
        enclosing: Optional[str] = None
        for prior in range(index - 1, -1, -1):
            candidate = lines[prior]
            body = candidate.lstrip()
            if not body:
                continue
            if len(candidate) - len(body) < indent:
                enclosing = body
                break
        if enclosing is not None and enclosing.startswith("while "):
            continue
        findings.append(LintFinding(
            check="wait-in-non-loop", severity=ADVISORY,
            message=f"line {index + 1}: wait yield is not directly inside a "
                    f"'while' guard re-check loop"))
    return findings


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def lint_explicit(explicit: object, solver: Optional[Solver] = None,
                  coop_source: Optional[str] = None) -> LintReport:
    """Run every check against a placed monitor.

    *explicit* is a :class:`~repro.placement.target.ExplicitMonitor` (its
    ``invariant`` justifies the can-enable confirmations; mutants produced by
    :meth:`~repro.placement.target.ExplicitMonitor.without_notification`
    carry their parent's).  Pass *coop_source* (the coop emission of
    :func:`~repro.codegen.python_gen.generate_python_explicit`) to include
    the ``wait-in-non-loop`` shape check.
    """
    solver = solver or Solver()
    effects = segment_effects(explicit)
    findings: List[LintFinding] = []
    findings.extend(check_missing_signals(explicit, solver, effects))
    findings.extend(check_dead_guards(explicit, solver))
    findings.extend(check_dead_signals(explicit, effects))
    findings.extend(check_naked_notifies(explicit, effects))
    findings.extend(check_unused_fields(explicit, effects))
    findings.extend(check_unreachable_methods(explicit, solver))
    if coop_source is not None:
        findings.extend(check_coop_waits(coop_source))
    return LintReport(monitor=getattr(explicit, "name", "?"),
                      findings=tuple(findings))


def lint_result(result: object, solver: Optional[Solver] = None) -> LintReport:
    """Lint a pipeline :class:`~repro.placement.pipeline.ExpressoResult`."""
    return lint_explicit(result.explicit, solver=solver)
