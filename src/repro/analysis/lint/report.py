"""Lint findings and reports.

A finding is one check firing at one site; a report is the ordered
collection for one monitor.  Severities split into:

* ``error`` — a placement-soundness alarm (``missing-signal``) or a monitor
  that can never make progress (``dead-guard``); CI fails on these.
* ``advisory`` — concurrency smells worth a look (``dead-signal``,
  ``naked-notify``, ``unused-field``, ``unreachable-method``,
  ``wait-in-non-loop``); reported, never fatal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

ERROR = "error"
ADVISORY = "advisory"

#: Check name -> severity; the registry the CLI documents.
CHECKS: Dict[str, str] = {
    "missing-signal": ERROR,
    "dead-guard": ERROR,
    "dead-signal": ADVISORY,
    "naked-notify": ADVISORY,
    "unused-field": ADVISORY,
    "unreachable-method": ADVISORY,
    "wait-in-non-loop": ADVISORY,
}


@dataclass(frozen=True)
class LintFinding:
    """One check firing at one site."""

    check: str
    severity: str
    message: str
    ccr_label: Optional[str] = None
    method: Optional[str] = None
    predicate: Optional[str] = None

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "check": self.check,
            "severity": self.severity,
            "message": self.message,
        }
        if self.ccr_label is not None:
            payload["ccr"] = self.ccr_label
        if self.method is not None:
            payload["method"] = self.method
        if self.predicate is not None:
            payload["predicate"] = self.predicate
        return payload


@dataclass(frozen=True)
class LintReport:
    """All findings for one monitor, in deterministic check/site order."""

    monitor: str
    findings: Tuple[LintFinding, ...] = ()
    #: Optional per-monitor analysis statistics (the CLI attaches the
    #: compile's ``commute_static_skips`` pre-filter effect and the lint
    #: phase's wall time so the CI lint-report artifact carries both).
    stats: Optional[Dict[str, Any]] = None

    @property
    def errors(self) -> Tuple[LintFinding, ...]:
        return tuple(f for f in self.findings if f.is_error)

    @property
    def advisories(self) -> Tuple[LintFinding, ...]:
        return tuple(f for f in self.findings if not f.is_error)

    @property
    def ok(self) -> bool:
        """No *error*-severity findings (advisories allowed)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """No findings at all."""
        return not self.findings

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for finding in self.findings:
            tally[finding.check] = tally.get(finding.check, 0) + 1
        return dict(sorted(tally.items()))

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "monitor": self.monitor,
            "ok": self.ok,
            "clean": self.clean,
            "errors": len(self.errors),
            "advisories": len(self.advisories),
            "counts": self.counts(),
            "findings": [finding.to_dict() for finding in self.findings],
        }
        if self.stats is not None:
            payload["stats"] = dict(self.stats)
        return payload

    def render(self) -> str:
        """A human-readable block (used by ``expresso lint``)."""
        if self.clean:
            return f"{self.monitor}: clean"
        lines: List[str] = [f"{self.monitor}: {len(self.errors)} error(s), "
                            f"{len(self.advisories)} advisory(ies)"]
        for finding in self.findings:
            site = finding.ccr_label or finding.method or "-"
            lines.append(f"  [{finding.severity}] {finding.check} @ {site}: "
                         f"{finding.message}")
        return "\n".join(lines)


def merge_reports(reports: List[LintReport]) -> Dict[str, Any]:
    """A suite-level JSON document (``expresso lint --suite --json``)."""
    document = {
        "ok": all(report.ok for report in reports),
        "clean": all(report.clean for report in reports),
        "monitors": len(reports),
        "errors": sum(len(report.errors) for report in reports),
        "advisories": sum(len(report.advisories) for report in reports),
        "reports": [report.to_dict() for report in reports],
    }
    if any(report.stats for report in reports):
        document["commute_static_skips"] = sum(
            int((report.stats or {}).get("commute_static_skips", 0))
            for report in reports)
        document["lint_seconds"] = round(sum(
            float((report.stats or {}).get("lint_seconds", 0.0))
            for report in reports), 6)
    return document
