"""Forward symbolic execution of loop-free monitor statements.

The commutativity check of §4.3 needs to compare the *effect* of two CCR
bodies executed in either order.  We compute, for each statement, a symbolic
state mapping every assigned variable to an expression over the initial
values (branches become ``ite`` terms).  Two statements commute iff the two
compositions yield provably equal final values for every shared variable and
provably equivalent path behaviour.

Loops make the effect unbounded; :class:`SymbolicExecutionError` is raised
and callers treat the pair conservatively as non-commuting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.logic import build
from repro.logic.free_vars import free_vars
from repro.logic.simplify import simplify
from repro.logic.substitute import substitute
from repro.logic.terms import Expr, Var
from repro.lang.ast import (
    ArrayAssign,
    Assign,
    If,
    LocalDecl,
    Seq,
    Skip,
    Stmt,
    While,
)


class SymbolicExecutionError(ValueError):
    """Raised when a statement cannot be summarized (contains a loop)."""


@dataclass
class SymbolicState:
    """A mapping from variable names to their symbolic values.

    Unmapped variables implicitly hold their initial (pre-state) value.
    """

    values: Dict[str, Expr] = field(default_factory=dict)

    def lookup(self, var: Var) -> Expr:
        return self.values.get(var.name, var)

    def rewrite(self, expr: Expr) -> Expr:
        """Evaluate *expr* over the current symbolic state."""
        mapping = {var: self.values[var.name]
                   for var in free_vars(expr) if var.name in self.values}
        return substitute(expr, mapping)

    def assigned_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self.values))

    def copy(self) -> "SymbolicState":
        return SymbolicState(dict(self.values))


def symbolic_execute(stmt: Stmt, state: Optional[SymbolicState] = None) -> SymbolicState:
    """Compute the symbolic post-state of a loop-free statement."""
    state = state.copy() if state is not None else SymbolicState()
    _execute(stmt, state)
    state.values = {name: simplify(value) for name, value in state.values.items()}
    return state


def _execute(stmt: Stmt, state: SymbolicState) -> None:
    if isinstance(stmt, Skip):
        return
    if isinstance(stmt, (Assign, LocalDecl)):
        target = stmt.target if isinstance(stmt, Assign) else stmt.name
        value = stmt.value if isinstance(stmt, Assign) else stmt.init
        state.values[target] = state.rewrite(value)
        return
    if isinstance(stmt, ArrayAssign):
        raise SymbolicExecutionError("array assignments must be scalarized first")
    if isinstance(stmt, Seq):
        for child in stmt.stmts:
            _execute(child, state)
        return
    if isinstance(stmt, If):
        cond = state.rewrite(stmt.cond)
        then_state = state.copy()
        else_state = state.copy()
        _execute(stmt.then, then_state)
        _execute(stmt.orelse, else_state)
        merged: Dict[str, Expr] = {}
        touched = set(then_state.values) | set(else_state.values)
        for name in touched:
            then_value = _branch_value(name, then_state, else_state)
            else_value = _branch_value(name, else_state, then_state)
            merged[name] = build.ite(cond, then_value, else_value)
        state.values.update(merged)
        return
    if isinstance(stmt, While):
        raise SymbolicExecutionError("cannot summarize a loop symbolically")
    raise TypeError(f"cannot execute statement {type(stmt).__name__}")


def _branch_value(name: str, branch: SymbolicState, other: SymbolicState) -> Expr:
    """The symbolic value of *name* at the end of *branch*.

    A name unmapped in *branch* still holds its pre-conditional (initial)
    value; its sort is read off the other branch's assigned expression.
    """
    from repro.logic.terms import sort_of

    if name in branch.values:
        return branch.values[name]
    return Var(name, sort_of(other.values[name]))
