"""A flow-insensitive may-alias analysis standing in for the paper's use of Doop.

Expresso discharges Hoare triples over Java code that may contain heap
stores ``v.f = e``; to model them soundly it queries Doop's points-to
results and expands each store into guarded updates ``if (v == xi) xi.f = e``
for every potential alias ``xi`` of ``v`` (paper §6, "Discharging Hoare
triples").

The monitor DSL of this reproduction has no references, so the heap substrate
is provided as a standalone component: a small pointer-assignment IR, a
classic Andersen-style (inclusion-based, field-sensitive) points-to analysis
over it, and the guarded store expansion that turns a heap store into the
scalar conditional assignments the wp calculus understands.  Its tests mirror
the paper's motivating scenario: proving triples about ``x.f`` in the
presence of potential aliasing between ``x`` and ``y``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Set, Tuple

from repro.logic import build
from repro.logic.terms import Expr, INT, Sort, Var
from repro.lang.ast import Assign, If, Skip, Stmt, seq


# ---------------------------------------------------------------------------
# Pointer-assignment IR
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Alloc:
    """``target = new Obj()`` — *site* is a unique allocation-site label."""

    target: str
    site: str


@dataclass(frozen=True)
class Copy:
    """``target = source`` between reference variables."""

    target: str
    source: str


@dataclass(frozen=True)
class FieldWrite:
    """``target.field = source`` (source is a reference variable)."""

    target: str
    fld: str
    source: str


@dataclass(frozen=True)
class FieldRead:
    """``target = source.field``."""

    target: str
    source: str
    fld: str


PointerStatement = object  # Alloc | Copy | FieldWrite | FieldRead


class PointsToAnalysis:
    """Inclusion-based (Andersen) points-to analysis, field sensitive.

    The analysis iterates the usual four inference rules to a fixed point:

    * ``x = new o``       adds ``o`` to pts(x);
    * ``x = y``           pts(x) ⊇ pts(y);
    * ``x.f = y``         for every o ∈ pts(x): pts(o.f) ⊇ pts(y);
    * ``x = y.f``         for every o ∈ pts(y): pts(x) ⊇ pts(o.f).
    """

    def __init__(self, statements: Iterable[PointerStatement]):
        self._statements: Tuple[PointerStatement, ...] = tuple(statements)
        self._var_points_to: Dict[str, Set[str]] = {}
        self._field_points_to: Dict[Tuple[str, str], Set[str]] = {}
        self._solved = False

    # -- solving ------------------------------------------------------------

    def solve(self) -> "PointsToAnalysis":
        """Run the fixed-point computation (idempotent)."""
        if self._solved:
            return self
        changed = True
        while changed:
            changed = False
            for stmt in self._statements:
                if isinstance(stmt, Alloc):
                    changed |= self._add_var(stmt.target, {stmt.site})
                elif isinstance(stmt, Copy):
                    changed |= self._add_var(stmt.target, self.points_to(stmt.source))
                elif isinstance(stmt, FieldWrite):
                    for obj in self.points_to(stmt.target):
                        changed |= self._add_field(obj, stmt.fld, self.points_to(stmt.source))
                elif isinstance(stmt, FieldRead):
                    gathered: Set[str] = set()
                    for obj in self.points_to(stmt.source):
                        gathered |= self._field_points_to.get((obj, stmt.fld), set())
                    changed |= self._add_var(stmt.target, gathered)
                else:
                    raise TypeError(f"unknown pointer statement {type(stmt).__name__}")
        self._solved = True
        return self

    def _add_var(self, name: str, objects: Set[str]) -> bool:
        current = self._var_points_to.setdefault(name, set())
        before = len(current)
        current |= objects
        return len(current) != before

    def _add_field(self, obj: str, fld: str, objects: Set[str]) -> bool:
        current = self._field_points_to.setdefault((obj, fld), set())
        before = len(current)
        current |= objects
        return len(current) != before

    # -- queries -------------------------------------------------------------

    def points_to(self, name: str) -> Set[str]:
        """The set of allocation sites *name* may refer to."""
        return set(self._var_points_to.get(name, set()))

    def may_alias(self, first: str, second: str) -> bool:
        """Whether two reference variables may refer to the same object."""
        self.solve()
        return bool(self.points_to(first) & self.points_to(second))

    def alias_set(self, name: str, candidates: Iterable[str]) -> Tuple[str, ...]:
        """The candidates that may alias *name* (always includes *name* itself)."""
        self.solve()
        result = [name]
        for candidate in candidates:
            if candidate != name and self.may_alias(name, candidate):
                result.append(candidate)
        return tuple(result)


# ---------------------------------------------------------------------------
# Guarded store expansion (§6)
# ---------------------------------------------------------------------------


def field_scalar(owner: str, fld: str) -> str:
    """The scalar variable modelling ``owner.fld`` in the wp calculus."""
    return f"{owner}.{fld}"


def expand_store(owner: str, fld: str, value: Expr,
                 may_aliases: Iterable[str] = (),
                 value_sort: Sort = INT) -> Stmt:
    """Expand a heap store ``owner.fld = value`` into guarded scalar updates.

    Object references are modelled as integer-valued identity variables, so
    ``owner == alias`` is an ordinary integer equality the wp calculus and the
    SMT solver already handle.  The expansion is exactly the paper's
    ``if (v == xi) xi.f = e`` instrumentation: the owner's own field scalar is
    updated unconditionally, and every may-alias receives a conditional
    update guarded by reference equality.
    """
    updates: List[Stmt] = [Assign(field_scalar(owner, fld), value)]
    for alias in may_aliases:
        if alias == owner:
            continue
        guard = build.eq(Var(owner, INT), Var(alias, INT))
        updates.append(If(guard, Assign(field_scalar(alias, fld), value), Skip()))
    return seq(*updates)


def expand_store_with_analysis(owner: str, fld: str, value: Expr,
                               analysis: PointsToAnalysis,
                               candidates: Iterable[str],
                               value_sort: Sort = INT) -> Stmt:
    """Convenience wrapper: compute the may-alias set from *analysis* and expand."""
    aliases = analysis.alias_set(owner, candidates)
    return expand_store(owner, fld, value, aliases, value_sort)
