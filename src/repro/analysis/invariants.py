"""Monitor-invariant inference (paper §5, Algorithm 2).

The inference is property-directed: the candidate predicate universe is
produced by abduction from the very Hoare triples the placement algorithm
needs to discharge (with the invariant initially set to ``true``), augmented
with non-negativity hints for ``unsigned`` fields.  A greatest-fixed-point
computation then keeps exactly the candidates that

* hold after the monitor constructor (*initiation*), and
* are preserved by every CCR under the conjunction of all surviving
  candidates (*consecution*),

yielding the strongest conjunctive monitor invariant over the abduced
predicate universe — monomial predicate abstraction in the sense of Lahiri &
Qadeer, seeded by abduction exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.logic import build
from repro.logic.free_vars import free_vars
from repro.logic.simplify import simplify
from repro.logic.terms import BoolConst, Expr, INT, Var
from repro.lang.ast import Monitor
from repro.analysis.abduction import abduce
from repro.analysis.hoare import HoareTriple
from repro.analysis.wp import weakest_precondition
from repro.smt.solver import Solver


@dataclass(frozen=True)
class InvariantInferenceResult:
    """The inferred invariant together with provenance information."""

    invariant: Expr
    kept_predicates: Tuple[Expr, ...]
    candidate_pool: Tuple[Expr, ...]
    iterations: int

    def describe(self) -> str:
        from repro.logic.pretty import pretty

        return pretty(self.invariant)


def infer_monitor_invariant(monitor: Monitor, triples: Sequence[HoareTriple],
                            solver: Optional[Solver] = None,
                            extra_candidates: Sequence[Expr] = ()) -> InvariantInferenceResult:
    """Run Algorithm 2 on *monitor* for the given property triples.

    *triples* are the placement triples instantiated with ``I = true``;
    *extra_candidates* lets callers seed further predicates (used by tests
    and by the ``unsigned`` field hints, which are added automatically here).
    """
    solver = solver or Solver()
    shared_names = frozenset(monitor.field_names())

    pool: List[Expr] = []

    def add_candidate(candidate: Expr) -> None:
        candidate = simplify(candidate)
        if isinstance(candidate, BoolConst):
            return
        if any(var.name not in shared_names for var in free_vars(candidate)):
            # Invariants range over shared monitor state only (§3.1).
            return
        if candidate not in pool:
            pool.append(candidate)

    # Phase 1: abduction over the property triples (lines 5-7 of Algorithm 2).
    for triple in triples:
        goal = weakest_precondition(triple.stmt, triple.post)
        for candidate in abduce(triple.pre, goal, solver):
            add_candidate(candidate)

    # Unsigned-field hints (the DSL's `unsigned int` surface syntax).
    for decl in monitor.fields:
        if decl.unsigned and decl.sort is INT:
            add_candidate(build.ge(Var(decl.name, INT), build.i(0)))

    for candidate in extra_candidates:
        add_candidate(candidate)

    def holds(vc: Expr) -> bool:
        # UNKNOWN drops the candidate — a weaker (but still sound) invariant.
        ok = solver.check_valid(vc)
        if not ok and solver.consume_unknown() is not None:
            obs.registry().inc("degraded.invariants")
            obs.tracer().instant("degraded.invariants", cat="smt")
        return ok

    # Phase 2: greatest fixed point (lines 8-17).
    kept = list(pool)
    constructor = monitor.constructor()
    iterations = 0
    changed = True
    while changed:
        iterations += 1
        changed = False
        # Initiation: {true} Ctr(M) {psi}.
        surviving: List[Expr] = []
        for psi in kept:
            vc = build.implies(build.TRUE, weakest_precondition(constructor, psi))
            if holds(vc):
                surviving.append(psi)
            else:
                changed = True
        kept = surviving
        # Consecution: {I && Guard(w)} Body(w) {psi} for every CCR.
        invariant = build.land(*kept) if kept else build.TRUE
        surviving = []
        for psi in kept:
            preserved = True
            for _method, ccr in monitor.ccrs():
                pre = build.land(invariant, ccr.guard)
                vc = build.implies(pre, weakest_precondition(ccr.body, psi))
                if not holds(vc):
                    preserved = False
                    break
            if preserved:
                surviving.append(psi)
            else:
                changed = True
        kept = surviving

    invariant = simplify(build.land(*kept)) if kept else build.TRUE
    return InvariantInferenceResult(invariant, tuple(kept), tuple(pool), iterations)
