"""Abductive inference of candidate strengthenings (paper §5, Equation 3).

Given a precondition ``P`` and a goal ``phi`` (the weakest precondition of a
statement with respect to a desired postcondition), abduction finds formulas
``psi`` such that

1. ``P && psi |= phi``   (the strengthened triple becomes valid), and
2. ``P && psi`` is satisfiable (the speculation is consistent).

The paper delegates this to the Explain tool of Dillig & Dillig; this
reproduction implements the same contract with a quantifier-elimination based
abducer:

* for every small subset ``V`` of the free variables (preferring fewer
  variables, i.e. "simpler explanations"), the candidate
  ``psi_V = forall (Vars \\ V). (P ==> phi)`` is computed by Fourier–Motzkin /
  Shannon elimination;
* candidates are simplified and validated against conditions (1) and (2);
* each surviving candidate is additionally *generalized* into atomic
  half-space predicates (e.g. a disequality ``x != -1`` contributes ``x >= 0``
  and ``x <= -2``), because monitor invariants are usually inequalities; the
  generalizations are validated the same way.

The caller (Algorithm 2) re-checks every candidate for initiation and
consecution, so the abducer only has to be useful, never complete.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.logic import build
from repro.logic.free_vars import free_vars
from repro.logic.nnf import atoms_of
from repro.logic.simplify import simplify
from repro.logic.terms import BoolConst, Eq, Expr, Ge, Gt, INT, Le, Lt, Ne, Not, Var
from repro.smt.linear import linearize
from repro.smt.qe import eliminate_forall
from repro.smt.solver import Solver


@dataclass(frozen=True)
class AbductionResult:
    """The candidates produced for one abduction query."""

    pre: Expr
    goal: Expr
    candidates: Tuple[Expr, ...]

    def __iter__(self):
        return iter(self.candidates)


def abduce(pre: Expr, goal: Expr, solver: Optional[Solver] = None,
           max_kept_vars: int = 2, max_candidates: int = 24,
           max_subsets: int = 16, max_obligation_atoms: int = 20) -> AbductionResult:
    """Produce candidate strengthenings ``psi`` with ``pre && psi |= goal``.

    ``max_kept_vars`` bounds the size of the variable subsets over which
    explanations are sought (the Explain tool's minimality bias); the full
    variable set is always tried as a fallback.  ``max_subsets`` and
    ``max_obligation_atoms`` bound the work spent on quantifier elimination
    for large obligations (e.g. scalarized array guards): past those limits
    abduction falls back to atom mining alone, which keeps the pipeline fast
    while Algorithm 2 still filters the resulting candidates for soundness.
    """
    solver = solver or Solver()
    obligation = build.implies(pre, goal)
    variables = sorted(free_vars(obligation), key=lambda var: var.name)
    candidates: List[Expr] = []

    if solver.check_valid(obligation):
        # Nothing to strengthen; report no candidates (TRUE adds no information).
        return AbductionResult(pre, goal, ())

    if len(atoms_of(obligation)) > max_obligation_atoms:
        subsets: List[Tuple[Var, ...]] = []
    else:
        subsets = _variable_subsets(variables, max_kept_vars)[:max_subsets]
    for kept in subsets:
        eliminated = [var for var in variables if var not in kept]
        if not eliminated:
            candidate = simplify(obligation)
        else:
            try:
                candidate = eliminate_forall(eliminated, obligation)
            except ValueError:
                continue
        for psi in _split_candidate(candidate):
            if _is_useful(psi, pre, goal, solver) and psi not in candidates:
                candidates.append(psi)
        if len(candidates) >= max_candidates:
            break

    if len(atoms_of(obligation)) <= max_obligation_atoms:
        for generalized in _generalize_atoms(candidates + [goal]):
            if len(candidates) >= max_candidates:
                break
            if generalized not in candidates and _is_useful(generalized, pre, goal, solver):
                candidates.append(generalized)

    return AbductionResult(pre, goal, tuple(candidates))


# ---------------------------------------------------------------------------
# Candidate generation helpers
# ---------------------------------------------------------------------------


def _variable_subsets(variables: Sequence[Var], max_kept_vars: int):
    """Subsets of the free variables, smallest first, full set last."""
    subsets: List[Tuple[Var, ...]] = []
    for size in range(1, min(max_kept_vars, len(variables)) + 1):
        subsets.extend(itertools.combinations(variables, size))
    full = tuple(variables)
    if full and full not in subsets:
        subsets.append(full)
    return subsets


def _split_candidate(candidate: Expr) -> List[Expr]:
    """Split a conjunction into conjuncts; drop trivial pieces."""
    candidate = simplify(candidate)
    if isinstance(candidate, BoolConst):
        return []
    parts = list(build.conjuncts(candidate))
    if candidate not in parts:
        parts.append(candidate)
    return [part for part in parts if not isinstance(part, BoolConst)]


def _is_useful(psi: Expr, pre: Expr, goal: Expr, solver: Solver) -> bool:
    """Conditions (1) and (2) of Equation 3, plus non-triviality."""
    if isinstance(psi, BoolConst):
        return False
    consistent = solver.check_sat(build.land(pre, psi)).is_sat
    if not consistent:
        return False
    return solver.check_valid(build.implies(build.land(pre, psi), goal))


def _generalize_atoms(sources: Sequence[Expr]) -> List[Expr]:
    """Mine inequality generalizations from the atoms of candidate formulas.

    A disequality ``t != c`` over the integers splits the line into the two
    half-spaces ``t >= c + 1`` and ``t <= c - 1``; equalities contribute the
    two adjacent non-strict inequalities.  Monitor invariants are almost
    always half-spaces (``readers >= 0``, ``count <= capacity``), so these
    generalizations give Algorithm 2 exactly the candidates it needs even
    when quantifier elimination produces a punctured-line disequality.
    """
    generalizations: List[Expr] = []

    def emit(expr: Expr) -> None:
        expr = simplify(expr)
        if not isinstance(expr, BoolConst) and expr not in generalizations:
            generalizations.append(expr)

    for source in sources:
        for atom in atoms_of(source):
            if not isinstance(atom, (Eq, Ne, Le, Lt, Ge, Gt)):
                continue
            try:
                left = linearize(atom.left)
                right = linearize(atom.right)
            except ValueError:
                continue
            except Exception:
                continue
            diff = left.sub(right)  # atom relates diff to 0
            diff_expr = diff.to_expr()
            zero = build.i(0)
            if isinstance(atom, (Ne, Eq)):
                emit(build.ge(diff_expr, zero))
                emit(build.le(diff_expr, zero))
                emit(build.ge(diff_expr, build.i(1)))
                emit(build.le(diff_expr, build.i(-1)))
            else:
                emit(build.ge(diff_expr, zero))
                emit(build.le(diff_expr, zero))
    return generalizations
