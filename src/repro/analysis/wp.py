"""Weakest preconditions for the monitor statement language.

``wp(s, Q)`` is the standard predicate-transformer semantics:

* ``wp(skip, Q) = Q``
* ``wp(x = e, Q) = Q[x := e]``
* ``wp(s1; s2, Q) = wp(s1, wp(s2, Q))``
* ``wp(if (c) s1 else s2, Q) = (c ==> wp(s1, Q)) && (!c ==> wp(s2, Q))``

Loops are handled soundly but conservatively.  Without a user-supplied
invariant, the loop's assigned variables are havocked (replaced by fresh
variables) and only the negated guard is assumed afterwards; with an
invariant ``I`` the transformer additionally yields the initiation and
preservation obligations.  Because the fresh variables occur only in
positive (universally interpretable) positions of the final validity check
``P ==> wp(s, Q)``, treating them as ordinary free variables is sound.
Failing to prove a triple because of this conservatism only ever costs a
signal, never correctness (paper §9).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet

from repro.logic import build
from repro.logic.free_vars import free_vars
from repro.logic.simplify import simplify
from repro.logic.substitute import substitute
from repro.logic.terms import Expr, Var
from repro.lang.ast import (
    ArrayAssign,
    Assign,
    If,
    LocalDecl,
    Seq,
    Skip,
    Stmt,
    While,
    stmt_assigned_vars,
)

_HAVOC_COUNTER = itertools.count()


def weakest_precondition(stmt: Stmt, post: Expr) -> Expr:
    """Compute ``wp(stmt, post)`` as a quantifier-free formula."""
    return simplify(_wp(stmt, post))


def _wp(stmt: Stmt, post: Expr) -> Expr:
    if isinstance(stmt, Skip):
        return post
    if isinstance(stmt, (Assign, LocalDecl)):
        target = stmt.target if isinstance(stmt, Assign) else stmt.name
        value = stmt.value if isinstance(stmt, Assign) else stmt.init
        substitution = _substitution_for(post, target, value)
        return substitute(post, substitution)
    if isinstance(stmt, ArrayAssign):
        raise ValueError("array assignments must be scalarized before wp computation")
    if isinstance(stmt, Seq):
        result = post
        for child in reversed(stmt.stmts):
            result = _wp(child, result)
        return result
    if isinstance(stmt, If):
        then_wp = _wp(stmt.then, post)
        else_wp = _wp(stmt.orelse, post)
        return build.land(build.implies(stmt.cond, then_wp),
                          build.implies(build.lnot(stmt.cond), else_wp))
    if isinstance(stmt, While):
        return _wp_while(stmt, post)
    raise TypeError(f"cannot compute wp of {type(stmt).__name__}")


def _wp_while(stmt: While, post: Expr) -> Expr:
    assigned = stmt_assigned_vars(stmt.body)
    havoc_map = _havoc_map(stmt, post, assigned)

    def havoc(expr: Expr) -> Expr:
        return substitute(expr, havoc_map)

    invariant = stmt.invariant if stmt.invariant is not None else build.TRUE
    # 1. The invariant holds on entry (trivially true when no invariant given).
    initiation = invariant
    # 2. The invariant is preserved by an arbitrary iteration (havocked state).
    preservation = build.implies(
        build.land(havoc(invariant), havoc(stmt.cond)),
        havoc(_wp(stmt.body, invariant)),
    )
    # 3. On exit (guard false, invariant holds) the postcondition follows.
    exit_condition = build.implies(
        build.land(havoc(invariant), build.lnot(havoc(stmt.cond))),
        havoc(post),
    )
    return build.land(initiation, preservation, exit_condition)


def _havoc_map(stmt: While, post: Expr, assigned: FrozenSet[str]) -> Dict[Var, Expr]:
    """Fresh variables for every assigned name, preserving each variable's sort."""
    relevant_vars = free_vars(post) | free_vars(stmt.cond)
    if stmt.invariant is not None:
        relevant_vars |= free_vars(stmt.invariant)
    for child_expr in _expressions_of(stmt.body):
        relevant_vars |= free_vars(child_expr)
    suffix = next(_HAVOC_COUNTER)
    havoc_map: Dict[Var, Expr] = {}
    for var in relevant_vars:
        if var.name in assigned:
            havoc_map[var] = Var(f"{var.name}!havoc{suffix}", var.var_sort)
    return havoc_map


def _expressions_of(stmt: Stmt):
    if isinstance(stmt, (Assign,)):
        yield stmt.value
    elif isinstance(stmt, LocalDecl):
        yield stmt.init
    elif isinstance(stmt, If):
        yield stmt.cond
    elif isinstance(stmt, While):
        yield stmt.cond
        if stmt.invariant is not None:
            yield stmt.invariant
    for child in stmt.children():
        yield from _expressions_of(child)


def _substitution_for(post: Expr, target: str, value: Expr) -> Dict[Var, Expr]:
    """Map every free occurrence of *target* (at any sort) to *value*."""
    substitution: Dict[Var, Expr] = {}
    for var in free_vars(post):
        if var.name == target:
            substitution[var] = value
    return substitution
