"""The span tracer: structured flight-recorder events, Chrome-trace export.

A :class:`Tracer` records begin/end/instant events with wall-clock offsets
(``time.perf_counter`` relative to the tracer's first event).  The recorded
stream serves two consumers:

* **profiling** — :func:`phase_attribution` folds the real durations into
  per-phase inclusive/exclusive seconds (the ``expresso profile`` report);
* **artifacts** — :func:`trace_document` renders Chrome-trace-event JSON
  (the object format, loadable in Perfetto / ``chrome://tracing``).  By
  default the export is **deterministic**: wall-clock fields are stripped
  and ``ts`` is the event's global sequence number, so two runs over the
  same inputs produce byte-identical files regardless of machine speed,
  worker count, or scheduling jitter.  Pass ``deterministic=False`` to keep
  microsecond timestamps for interactive profiling sessions.

The disabled path is near-zero-cost: the module-level :data:`NULL_TRACER`
answers ``enabled == False`` and hands out one shared no-op span, so hot
loops pay a single attribute check per schedule.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

RawEvent = Dict[str, object]


class _Span:
    """Context manager for one B/E span pair.

    Args passed at construction land on the begin event; anything set later
    via :meth:`set` lands on the end event (Perfetto merges both).
    """

    __slots__ = ("_tracer", "name", "cat", "args")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def set(self, **updates: object) -> None:
        """Tag the span (recorded on its end event)."""
        self.args.update(updates)

    def __enter__(self) -> "_Span":
        self._tracer._emit("B", self.name, self.cat, dict(self.args))
        self._tracer._stack.append(self.name)
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self._tracer._stack.pop()
        self._tracer._emit("E", self.name, self.cat, dict(self.args))


class _NullSpan:
    """Shared no-op span for the disabled tracer."""

    __slots__ = ()

    def set(self, **updates: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Records raw trace events in memory (one tracer per observed run)."""

    enabled = True

    __slots__ = ("events", "_stack", "_t0")

    def __init__(self) -> None:
        self.events: List[RawEvent] = []
        self._stack: List[str] = []
        self._t0: Optional[float] = None

    def _now(self) -> float:
        now = time.perf_counter()
        if self._t0 is None:
            self._t0 = now
        return now - self._t0

    def _emit(self, ph: str, name: str, cat: str,
              args: Dict[str, object]) -> None:
        self.events.append(
            {"ph": ph, "name": name, "cat": cat, "args": args, "t": self._now()}
        )

    def span(self, name: str, cat: str = "compile", **args: object) -> _Span:
        return _Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "explore", **args: object) -> None:
        self._emit("i", name, cat, args)

    def phase(self) -> str:
        """Name of the innermost open span ('' outside any span)."""
        return self._stack[-1] if self._stack else ""

    def phase_path(self) -> str:
        """Slash-joined open-span stack (profiler phase attribution key)."""
        return "/".join(self._stack)


class NullTracer:
    """The disabled tracer: every operation is a no-op."""

    enabled = False

    __slots__ = ()

    events: Tuple[RawEvent, ...] = ()

    def span(self, name: str, cat: str = "compile", **args: object) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, cat: str = "explore", **args: object) -> None:
        pass

    def phase(self) -> str:
        return ""

    def phase_path(self) -> str:
        return ""


NULL_TRACER = NullTracer()


# ---------------------------------------------------------------------------
# Chrome-trace export
# ---------------------------------------------------------------------------


def chrome_events(shards: Sequence[Sequence[RawEvent]],
                  deterministic: bool = True) -> List[Dict[str, object]]:
    """Flatten per-shard raw event lists into Chrome trace events.

    Shards are concatenated in the given (deterministic) order.  In
    deterministic mode every event's ``ts`` is its global sequence number
    and ``pid``/``tid`` are fixed at 0, so the output depends only on the
    logical event stream; otherwise ``ts`` is the microsecond offset within
    the shard and ``pid`` is the shard index.
    """
    out: List[Dict[str, object]] = []
    seq = 0
    for shard_index, events in enumerate(shards):
        for event in events:
            ts = seq if deterministic else round(float(event["t"]) * 1e6, 1)
            out.append({
                "name": event["name"],
                "cat": event["cat"],
                "ph": event["ph"],
                "ts": ts,
                "pid": 0 if deterministic else shard_index,
                "tid": 0,
                "args": event["args"],
            })
            seq += 1
    return out


def trace_document(shards: Sequence[Sequence[RawEvent]],
                   metrics: Optional[Dict[str, int]] = None,
                   deterministic: bool = True) -> Dict[str, object]:
    """The Chrome-trace *object format* document for a run.

    ``metrics`` (a counter snapshot) rides along under ``otherData`` so one
    artifact carries both the event stream and the unified counters.
    """
    document: Dict[str, object] = {
        "traceEvents": chrome_events(shards, deterministic=deterministic),
        "displayTimeUnit": "ms",
    }
    other: Dict[str, object] = {"deterministic": deterministic}
    if metrics is not None:
        other["metrics"] = {name: metrics[name] for name in sorted(metrics)}
    document["otherData"] = other
    return document


def write_trace(path: str, shards: Sequence[Sequence[RawEvent]],
                metrics: Optional[Dict[str, int]] = None,
                deterministic: bool = True) -> None:
    """Serialize :func:`trace_document` byte-stably to *path*."""
    document = trace_document(shards, metrics=metrics,
                              deterministic=deterministic)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True,
                  separators=(",", ":"), ensure_ascii=True)
        handle.write("\n")


# ---------------------------------------------------------------------------
# Phase attribution (real durations, for the profiler report)
# ---------------------------------------------------------------------------


def phase_attribution(
    events: Sequence[RawEvent],
) -> Tuple[Dict[str, Dict[str, float]], float]:
    """Fold one shard's raw events into per-phase timing.

    Returns ``(phases, root_seconds)`` where ``phases`` maps span name to
    ``{"count", "seconds", "self_seconds"}`` (inclusive and exclusive wall
    time) and ``root_seconds`` is the summed duration of depth-0 spans —
    the denominator for span coverage of total wall time.
    """
    phases: Dict[str, Dict[str, float]] = {}
    stack: List[Tuple[str, float, float]] = []  # (name, start, child_seconds)
    root_seconds = 0.0
    for event in events:
        ph = event["ph"]
        if ph == "B":
            stack.append((str(event["name"]), float(event["t"]), 0.0))
        elif ph == "E" and stack:
            name, start, child_seconds = stack.pop()
            duration = float(event["t"]) - start
            agg = phases.setdefault(
                name, {"count": 0, "seconds": 0.0, "self_seconds": 0.0})
            agg["count"] += 1
            agg["seconds"] += duration
            agg["self_seconds"] += max(duration - child_seconds, 0.0)
            if stack:
                parent, pstart, pchildren = stack[-1]
                stack[-1] = (parent, pstart, pchildren + duration)
            else:
                root_seconds += duration
    return phases, root_seconds
