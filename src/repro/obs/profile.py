"""The SMT query profiler: solver time by phase, caller site, formula hash.

When a profiler is active (``repro.obs.observe(profile=True)`` — the
``expresso profile`` command does this), :meth:`repro.smt.solver.Solver
.check_sat` reports every query here with its wall time, cache outcome, and
status.  Queries aggregate by **structural formula hash** (a stable digest
of the expression tree, so "the same VC re-asked across invariant-inference
iterations" lands in one bucket), each bucket remembering which pipeline
phases (the tracer's open-span path) and which **caller sites** issued it.

The output is the top-N hot-query table in the harness report: the direct
answer to "which placement/matrix site burns the suite compile".
"""

from __future__ import annotations

import sys
from hashlib import blake2b
from typing import Dict, List, Optional


def formula_fingerprint(formula: object) -> str:
    """A stable structural digest of an expression tree.

    Expression nodes are frozen dataclasses whose ``repr`` is fully
    structural (no object ids), so hashing the repr is a deterministic
    fingerprint across processes and runs.
    """
    digest = blake2b(repr(formula).encode("utf-8"), digest_size=6)
    return digest.hexdigest()


#: Module prefixes that never count as a caller site (the solver itself and
#: the observability layer that wraps it).
_INTERNAL_PREFIXES = ("repro.smt", "repro.obs")


def caller_site(depth: int = 2, limit: int = 12) -> str:
    """``module:function`` of the nearest non-solver frame on the stack."""
    frame = sys._getframe(depth)
    for _ in range(limit):
        if frame is None:
            break
        module = frame.f_globals.get("__name__", "")
        if not module.startswith(_INTERNAL_PREFIXES):
            if module.startswith("repro."):
                module = module[len("repro."):]
            return f"{module}:{frame.f_code.co_name}"
        frame = frame.f_back
    return "(unknown)"


class SmtProfiler:
    """Aggregates solver queries by structural formula hash."""

    __slots__ = ("queries", "total_queries", "total_seconds")

    def __init__(self) -> None:
        self.queries: Dict[str, Dict[str, object]] = {}
        self.total_queries = 0
        self.total_seconds = 0.0

    def record(self, formula: object, seconds: float, cached: bool,
               status: str, phase: str, sample: Optional[str] = None) -> None:
        """Report one solver query (called from ``Solver.check_sat``)."""
        fingerprint = formula_fingerprint(formula)
        caller = caller_site(depth=3)
        bucket = self.queries.get(fingerprint)
        if bucket is None:
            bucket = self.queries[fingerprint] = {
                "fingerprint": fingerprint,
                "count": 0,
                "seconds": 0.0,
                "cached": 0,
                "status": status,
                "phases": {},
                "callers": {},
                "sample": sample if sample is not None else _render(formula),
            }
        bucket["count"] = int(bucket["count"]) + 1
        bucket["seconds"] = float(bucket["seconds"]) + seconds
        if cached:
            bucket["cached"] = int(bucket["cached"]) + 1
        phases: Dict[str, int] = bucket["phases"]  # type: ignore[assignment]
        phases[phase or "(untracked)"] = phases.get(phase or "(untracked)", 0) + 1
        callers: Dict[str, int] = bucket["callers"]  # type: ignore[assignment]
        callers[caller] = callers.get(caller, 0) + 1
        self.total_queries += 1
        self.total_seconds += seconds

    # -- reporting -----------------------------------------------------------

    def top(self, limit: int = 10) -> List[Dict[str, object]]:
        """The hottest query buckets by total solver seconds."""
        rows = sorted(
            self.queries.values(),
            key=lambda bucket: (-float(bucket["seconds"]),
                                str(bucket["fingerprint"])),
        )
        out: List[Dict[str, object]] = []
        for bucket in rows[:limit]:
            phases = bucket["phases"]
            callers = bucket["callers"]
            out.append({
                "fingerprint": bucket["fingerprint"],
                "count": bucket["count"],
                "seconds": round(float(bucket["seconds"]), 6),
                "cached": bucket["cached"],
                "status": bucket["status"],
                "phase": _dominant(phases),        # type: ignore[arg-type]
                "caller": _dominant(callers),      # type: ignore[arg-type]
                "sample": bucket["sample"],
            })
        return out

    def by_caller(self) -> Dict[str, Dict[str, float]]:
        """Total seconds and query count per caller site."""
        out: Dict[str, Dict[str, float]] = {}
        for bucket in self.queries.values():
            seconds = float(bucket["seconds"]) / max(int(bucket["count"]), 1)
            for caller, count in bucket["callers"].items():  # type: ignore[union-attr]
                agg = out.setdefault(caller, {"count": 0, "seconds": 0.0})
                agg["count"] += count
                agg["seconds"] += seconds * count
        return out


def _dominant(votes: Dict[str, int]) -> str:
    """The most frequent key (ties broken lexicographically)."""
    if not votes:
        return "(unknown)"
    return min(votes, key=lambda key: (-votes[key], key))


def _render(formula: object, limit: int = 64) -> str:
    try:
        from repro.logic.pretty import pretty

        text = pretty(formula)
    except Exception:
        text = repr(formula)
    return text if len(text) <= limit else text[:limit - 3] + "..."
