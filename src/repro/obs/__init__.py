"""Observability: the flight recorder for the whole pipeline.

One import point for the three instruments:

* :class:`~repro.obs.metrics.MetricsRegistry` — the unified counter
  registry (``smt.validity.queries``, ``explore.skipped.sleep_set``, ...);
* :class:`~repro.obs.trace.Tracer` — structured spans/instants exported as
  Chrome-trace-event JSON (Perfetto-loadable), deterministic by default;
* :class:`~repro.obs.profile.SmtProfiler` — per-query solver time by
  phase, caller site, and structural formula hash.

Instrumented code never constructs these directly; it asks this module for
the *active* session::

    from repro import obs

    tracer = obs.tracer()           # NULL_TRACER unless a session is open
    with tracer.span("compile.parse"):
        ...

and drivers open a session around a run::

    with obs.observe(trace=True, profile=True) as session:
        pipeline.compile(monitor)
    write_trace(path, [session.tracer.events], session.registry.snapshot())

With no session open every hook is a no-op costing one attribute check —
the exploration hot loop stays within the benchmarked budget.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Union

from repro.obs.metrics import (
    LegacyStatsView,
    MetricsRegistry,
    SOLVER_METRIC_NAMES,
)
from repro.obs.profile import SmtProfiler, formula_fingerprint
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    chrome_events,
    phase_attribution,
    trace_document,
    write_trace,
)

__all__ = [
    "LegacyStatsView",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "ObsSession",
    "SOLVER_METRIC_NAMES",
    "SmtProfiler",
    "Tracer",
    "active_profiler",
    "chrome_events",
    "formula_fingerprint",
    "mirror_store_counters",
    "observe",
    "phase_attribution",
    "registry",
    "trace_document",
    "tracer",
    "write_trace",
]


@dataclass
class ObsSession:
    """The instruments active inside one :func:`observe` block."""

    tracer: Union[Tracer, NullTracer]
    registry: MetricsRegistry
    profiler: Optional[SmtProfiler]


_TRACER: Union[Tracer, NullTracer] = NULL_TRACER
_REGISTRY: MetricsRegistry = MetricsRegistry()
_PROFILER: Optional[SmtProfiler] = None


def tracer() -> Union[Tracer, NullTracer]:
    """The active tracer (the shared no-op tracer outside a session)."""
    return _TRACER


def registry() -> MetricsRegistry:
    """The active session's registry (a process-wide one outside sessions)."""
    return _REGISTRY


def active_profiler() -> Optional[SmtProfiler]:
    """The active SMT profiler, or None (the common, zero-cost case)."""
    return _PROFILER


@contextmanager
def observe(trace: bool = False, profile: bool = False,
            metrics: Optional[MetricsRegistry] = None) -> Iterator[ObsSession]:
    """Open an observability session: install a tracer/profiler/registry.

    Sessions nest by save/restore, so a traced exploration inside a traced
    campaign keeps the inner instruments for the inner run only.
    """
    global _TRACER, _REGISTRY, _PROFILER
    session = ObsSession(
        tracer=Tracer() if trace else NULL_TRACER,
        registry=metrics if metrics is not None else MetricsRegistry(),
        profiler=SmtProfiler() if profile else None,
    )
    saved = (_TRACER, _REGISTRY, _PROFILER)
    _TRACER, _REGISTRY, _PROFILER = (
        session.tracer, session.registry, session.profiler)
    try:
        yield session
    finally:
        _TRACER, _REGISTRY, _PROFILER = saved


# ---------------------------------------------------------------------------
# Cross-surface folds
# ---------------------------------------------------------------------------

#: ExplorationResult fields → registry counter names.  Deliberately excludes
#: timing (``elapsed_seconds``) and worker-count-dependent counters
#: (``shared_hits``, oracle cache hits/misses), so the folded snapshot is
#: byte-stable across ``--workers`` settings for deterministic strategies.
EXPLORATION_METRIC_NAMES: Dict[str, str] = {
    "schedules_run": "explore.schedules.judged",
    "completed": "explore.schedules.completed",
    "stalls": "explore.schedules.stalls",
    "pruned": "explore.skipped.merge",
    "por_skipped": "explore.skipped.por",
    "symmetry_skipped": "explore.skipped.symmetry",
    "distinct_states": "explore.states.distinct",
}


def record_exploration(result: object,
                       into: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Fold an ExplorationResult's counters into a registry."""
    target = into if into is not None else registry()
    for field_name, metric in EXPLORATION_METRIC_NAMES.items():
        target.inc(metric, int(getattr(result, field_name, 0) or 0))
    target.inc("explore.failures", len(getattr(result, "failures", ()) or ()))
    return target


def mirror_store_counters(counters: Dict[str, int],
                          into: Optional[MetricsRegistry] = None,
                          ) -> MetricsRegistry:
    """Mirror a campaign store's transactional counters into a registry.

    The store's ``distrib.*`` aggregates are authoritative across every
    cooperating process, so this *overwrites* (``set_counter``) whatever
    partial view this process accumulated locally under the same dotted
    names — after the mirror, ``observe()`` snapshots, ``expresso
    profile`` and the OpenMetrics exporter all read one namespace.
    """
    target = into if into is not None else registry()
    for name in sorted(counters):
        target.set_counter(name, int(counters[name]))
    return target
