"""The campaign console: read-only live status over a shared store.

``expresso status --store PATH`` renders one snapshot of a running (or
finished, or crashed) campaign: units by state, per-worker lease and
heartbeat health, corpus/coverage/frontier progress, and the transactional
``distrib.*`` counters.  ``expresso watch`` polls the same snapshot and
turns it into a CI-usable anomaly watchdog (stalled leases, no progress).

Everything here is **read-only**: the store is opened with
``CampaignStore(path, read_only=True)`` (SQLite URI ``mode=ro`` +
``query_only``), ``bind_campaign`` is never called, and a
fingerprint-mismatched or mid-repair store still renders a snapshot —
with its integrity problems listed as warnings — instead of refusing.

Determinism: given a fixed store state and a fixed clock (``--now``), the
snapshot — and its ``--json`` rendering — is byte-stable: every derived
age is rounded, every mapping is emitted in sorted key order.

Worker health is derived from the checksummed ``telemetry`` table the
drivers and helpers update inside their existing heartbeat/checkpoint
transactions (see :meth:`repro.distrib.store.CampaignStore.record_telemetry`):

========  ==================================================================
health    meaning (ages measured against the campaign's recorded knobs)
========  ==================================================================
live      heartbeat age <= 2x ``heartbeat_interval`` — renewing on schedule
expired   heartbeat age <= 2x ``lease_ttl`` — missed renewals; its leases
          are (or are about to be) stealable
dead      heartbeat older than that — the process is gone; anything it
          held has been stolen or re-queued
========  ==================================================================
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.distrib.store import CampaignStore

#: Fallbacks when the store predates the recorded knobs (or the driver
#: never ran): the DistribConfig defaults.
DEFAULT_LEASE_TTL = 30.0
DEFAULT_HEARTBEAT_INTERVAL = 5.0

#: Unit states the queue can leave a row in (display order).
UNIT_STATES = ("pending", "leased", "done", "quarantined")


class ConsoleError(RuntimeError):
    """The store cannot be opened at all (missing file, not a database)."""


def open_readonly(path) -> CampaignStore:
    """Open *path* read-only, failing fast when there is nothing to read."""
    path = Path(path)
    if not path.exists():
        raise ConsoleError(f"no campaign store at {path}")
    return CampaignStore(path, read_only=True)


def worker_health(age: float, heartbeat_interval: float,
                  lease_ttl: float) -> str:
    """Classify one worker's heartbeat *age* as live/expired/dead."""
    if age <= 2 * heartbeat_interval:
        return "live"
    if age <= 2 * lease_ttl:
        return "expired"
    return "dead"


def _round(value: float) -> float:
    """Stable float rendering for derived ages (3 decimals is plenty)."""
    return round(float(value), 3)


def store_snapshot(store: CampaignStore,
                   now: Optional[float] = None) -> Dict[str, Any]:
    """One deterministic, read-only status snapshot of *store*.

    Never raises on a mismatched, partially migrated, or mid-repair store:
    missing tables read as empty and checksum failures become entries in
    ``snapshot["problems"]`` / ``snapshot["warnings"]``.
    """
    now = time.time() if now is None else float(now)
    try:
        conn = store._read("status")
    except sqlite3.Error as exc:
        raise ConsoleError(f"cannot open {store.path}: {exc}") from exc

    def rows(query: str, args: tuple = ()) -> List[sqlite3.Row]:
        try:
            return conn.execute(query, args).fetchall()
        except sqlite3.OperationalError:
            return []                  # table missing: an older store

    warnings: List[str] = []

    # -- campaign binding / driver liveness -----------------------------------
    meta = {row["key"]: json.loads(row["value"])
            for row in rows("SELECT key, value FROM meta")}
    campaign = meta.get("campaign")
    if campaign is None:
        warnings.append("store has no bound campaign yet (bootstrap, "
                        "mid-repair, or written by an older version)")
    active_until = meta.get("active_until")
    driver_active = active_until is not None and active_until > now
    lease_ttl = float(meta.get("distrib.lease_ttl", DEFAULT_LEASE_TTL))
    heartbeat_interval = float(meta.get("distrib.heartbeat_interval",
                                        DEFAULT_HEARTBEAT_INTERVAL))

    # -- units by state + live leases -----------------------------------------
    units = {state: 0 for state in UNIT_STATES}
    for row in rows("SELECT status, COUNT(*) AS n FROM units "
                    "GROUP BY status"):
        units[row["status"]] = row["n"]
    units["total"] = sum(units[state] for state in UNIT_STATES)
    leases = []
    for row in rows("SELECT unit_id, owner, lease_expires, attempts "
                    "FROM units WHERE status = 'leased' ORDER BY unit_id"):
        expires_in = float(row["lease_expires"]) - now
        leases.append({
            "unit": row["unit_id"],
            "owner": row["owner"],
            "attempts": row["attempts"],
            "expires_in": _round(expires_in),
            "state": "live" if expires_in > 0 else "expired",
        })

    # -- per-worker telemetry -------------------------------------------------
    workers = {}
    for name, payload in sorted(store.telemetry().items()):
        heartbeat = payload.get("last_heartbeat")
        age = now - float(heartbeat) if heartbeat is not None else None
        entry = {key: value for key, value in sorted(payload.items())
                 if key != "last_heartbeat"}
        entry["role"] = payload.get("role") or name.split("-", 1)[0]
        entry["heartbeat_age"] = _round(age) if age is not None else None
        entry["health"] = (worker_health(age, heartbeat_interval, lease_ttl)
                           if age is not None else "unknown")
        workers[name] = entry

    # -- progress surfaces ----------------------------------------------------
    counters = {row["name"]: row["value"]
                for row in rows("SELECT name, value FROM counters "
                                "ORDER BY name")}
    coverage = {}
    for row in rows("SELECT axis, COUNT(*) AS n FROM coverage "
                    "GROUP BY axis ORDER BY axis"):
        coverage[row["axis"]] = row["n"]
    corpus_entries = 0
    for row in rows("SELECT COUNT(*) AS n FROM corpus"):
        corpus_entries = row["n"]
    frontier_keys = [row["key"] for row in
                     rows("SELECT key FROM frontier ORDER BY key")]
    checkpoint = None
    for row in rows("SELECT payload FROM frontier WHERE key = ?",
                    ("fuzz/checkpoint",)):
        record = json.loads(row["payload"])
        checkpoint = {
            "round_index": record.get("round_index"),
            "schedules_run": (record.get("result") or {}).get("schedules_run"),
            "entries": len(record.get("entries") or ()),
            "findings": len(record.get("findings") or ()),
        }

    # -- integrity (mid-repair stores render, with warnings) ------------------
    try:
        problems = store.verify()
    except sqlite3.Error as exc:
        problems = [f"verify failed: {exc}"]
    if problems:
        warnings.append(f"integrity: {len(problems)} row(s) fail their "
                        f"checksum (run `expresso fuzz --repair --store "
                        f"{store.path}`)")

    return {
        "store": str(store.path),
        "now": _round(now),
        "campaign": {
            "bound": campaign is not None,
            "fingerprint": campaign,
            "driver_active": driver_active,
            "active_for": (_round(active_until - now)
                           if driver_active else None),
            "lease_ttl": _round(lease_ttl),
            "heartbeat_interval": _round(heartbeat_interval),
        },
        "units": units,
        "leases": leases,
        "workers": workers,
        "counters": counters,
        "coverage": {"axes": coverage,
                     "features": sum(coverage.values())},
        "corpus_entries": corpus_entries,
        "frontier_keys": frontier_keys,
        "checkpoint": checkpoint,
        "problems": problems,
        "warnings": warnings,
    }


def snapshot_at(path, now: Optional[float] = None) -> Dict[str, Any]:
    """:func:`store_snapshot` over a freshly opened read-only store."""
    store = open_readonly(path)
    try:
        return store_snapshot(store, now=now)
    finally:
        store.close()


def snapshot_json(snapshot: Dict[str, Any]) -> str:
    """The byte-deterministic ``--json`` rendering."""
    return json.dumps(snapshot, indent=2, sort_keys=True)


def render_snapshot(snapshot: Dict[str, Any]) -> str:
    """The human one-shot ``expresso status`` rendering."""
    campaign = snapshot["campaign"]
    units = snapshot["units"]
    lines = [f"campaign store: {snapshot['store']}"]
    binding = ("bound " + str(campaign["fingerprint"])[:12]
               if campaign["bound"] else "unbound")
    driver = (f"driver active ({campaign['active_for']:.1f}s left)"
              if campaign["driver_active"] else "driver window lapsed")
    lines.append(f"  campaign: {binding} — {driver}")
    lines.append(
        f"  units: {units['total']} total — "
        + ", ".join(f"{units[state]} {state}" for state in UNIT_STATES))
    for lease in snapshot["leases"]:
        lines.append(f"    lease {lease['unit']}  owner={lease['owner']}  "
                     f"expires_in={lease['expires_in']}s [{lease['state']}]")
    if snapshot["workers"]:
        lines.append("  workers:")
        for name, entry in snapshot["workers"].items():
            stats = "  ".join(
                f"{key}={entry[key]}" for key in
                ("claims", "renewals", "completed", "failed") if key in entry)
            lines.append(f"    {name:24s} {entry['role']:8s} "
                         f"heartbeat={entry['heartbeat_age']}s "
                         f"[{entry['health']}]  {stats}".rstrip())
    coverage = snapshot["coverage"]
    lines.append(f"  coverage: {coverage['features']} feature(s) over "
                 f"{len(coverage['axes'])} axis(es); corpus "
                 f"{snapshot['corpus_entries']} entries; frontier "
                 f"{len(snapshot['frontier_keys'])} key(s)")
    if snapshot["checkpoint"]:
        ckpt = snapshot["checkpoint"]
        lines.append(f"  checkpoint: round {ckpt['round_index']}, "
                     f"{ckpt['schedules_run']} schedules, "
                     f"{ckpt['entries']} entries, "
                     f"{ckpt['findings']} finding(s)")
    if snapshot["counters"]:
        lines.append("  counters: " + "  ".join(
            f"{name}={value}" for name, value in
            sorted(snapshot["counters"].items())))
    for warning in snapshot["warnings"]:
        lines.append(f"  WARNING: {warning}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# watch: the polling anomaly watchdog
# ---------------------------------------------------------------------------


def progress_vector(snapshot: Dict[str, Any]) -> str:
    """A stable digest of everything that moves when the campaign does.

    Lease renewals count as progress (a slow round is not a stall), so the
    vector covers the transactional counters, settled units, coverage and
    the fuzz checkpoint — unchanged vector + unsettled work = stalled.
    """
    return json.dumps({
        "counters": snapshot["counters"],
        "done": snapshot["units"]["done"],
        "quarantined": snapshot["units"]["quarantined"],
        "coverage": snapshot["coverage"]["features"],
        "checkpoint": snapshot["checkpoint"],
    }, sort_keys=True)


class Watchdog:
    """Tick-over-tick anomaly detection for :func:`watch`.

    *stall_ticks* consecutive observations of the same anomaly are required
    before it fires, so one slow poll never fails CI.
    """

    def __init__(self, stall_ticks: int = 3):
        self.stall_ticks = max(int(stall_ticks), 1)
        self._last_vector: Optional[str] = None
        self._no_progress = 0
        self._expired_streaks: Dict[str, int] = {}
        self.anomalies: List[str] = []

    def observe(self, snapshot: Dict[str, Any]) -> List[str]:
        """Feed one snapshot; returns the anomalies that fired this tick."""
        fired: List[str] = []
        units = snapshot["units"]
        outstanding = units["pending"] + units["leased"]

        vector = progress_vector(snapshot)
        if vector == self._last_vector and outstanding > 0:
            self._no_progress += 1
            if self._no_progress == self.stall_ticks:
                fired.append(
                    f"no progress for {self.stall_ticks} tick(s) with "
                    f"{outstanding} unsettled unit(s)")
        else:
            self._no_progress = 0
        self._last_vector = vector

        expired_now = {lease["unit"]: lease for lease in snapshot["leases"]
                       if lease["state"] == "expired"}
        for unit, lease in sorted(expired_now.items()):
            streak = self._expired_streaks.get(unit, 0) + 1
            self._expired_streaks[unit] = streak
            if streak == self.stall_ticks:
                fired.append(
                    f"lease on {unit} (owner {lease['owner']}) expired and "
                    f"unstolen for {self.stall_ticks} tick(s)")
        for unit in list(self._expired_streaks):
            if unit not in expired_now:
                del self._expired_streaks[unit]   # stolen or completed

        self.anomalies.extend(fired)
        return fired


def watch_line(snapshot: Dict[str, Any],
               delta: Optional[Dict[str, int]] = None) -> str:
    """One compact per-tick line (units, worker health, throughput delta)."""
    units = snapshot["units"]
    healths = [entry["health"] for entry in snapshot["workers"].values()]
    workers = "/".join(f"{healths.count(kind)}{kind[0].upper()}"
                       for kind in ("live", "expired", "dead")
                       if healths.count(kind))
    moved = ""
    if delta:
        completed = delta.get("distrib.units.completed", 0)
        renewed = delta.get("distrib.lease.renewed", 0)
        stolen = delta.get("distrib.lease.stolen", 0)
        moved = f"  +{completed} done, +{renewed} renewals, +{stolen} steals"
    return (f"[{snapshot['now']:.1f}] units "
            f"{units['done']}/{units['total']} done, "
            f"{units['pending']} pending, {units['leased']} leased, "
            f"{units['quarantined']} quarantined  "
            f"workers {workers or 'none'}{moved}")


def watch(store_path, ticks: Optional[int] = None, interval: float = 2.0,
          start: Optional[float] = None, stall_ticks: int = 3,
          out: Callable[[str], None] = print,
          clock: Callable[[], float] = time.time,
          sleep: Callable[[float], None] = time.sleep) -> int:
    """Poll the store until *ticks* run out; nonzero exit on anomalies.

    With *start* given the clock is simulated (``start + i * interval``,
    no sleeping) — the deterministic test/CI mode.  Without *ticks* the
    watch runs until interrupted.
    """
    watchdog = Watchdog(stall_ticks=stall_ticks)
    previous: Optional[Dict[str, int]] = None
    tick = 0
    try:
        while ticks is None or tick < ticks:
            now = start + tick * interval if start is not None else clock()
            snapshot = snapshot_at(store_path, now=now)
            delta = (None if previous is None else
                     {name: snapshot["counters"].get(name, 0)
                      - previous.get(name, 0)
                      for name in snapshot["counters"]})
            out(watch_line(snapshot, delta))
            for anomaly in watchdog.observe(snapshot):
                out(f"ANOMALY: {anomaly}")
            previous = snapshot["counters"]
            tick += 1
            if ticks is not None and tick >= ticks:
                break
            if start is None:
                sleep(interval)
    except KeyboardInterrupt:          # pragma: no cover - interactive exit
        pass
    if watchdog.anomalies:
        out(f"watch: {len(watchdog.anomalies)} anomaly(ies) detected")
        return 1
    return 0
