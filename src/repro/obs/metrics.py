"""The unified metrics registry (flight-recorder counters).

Every quantitative claim the harness makes — validity-query counts, cache
effectiveness, DPOR/symmetry/shared-store skip counts, fuzz power-schedule
picks — used to live in ad-hoc dicts scattered across ``Solver.statistics``,
``FormulaCache`` attributes, ``ExplorationResult`` fields, and campaign JSON.
:class:`MetricsRegistry` is the one place those numbers accumulate, under
hierarchical dotted names (``smt.validity.queries``,
``explore.skipped.sleep_set``, ``fuzz.power.picks``), with a
snapshot/diff/reset API so any caller can report a *delta* for its own run
instead of a process-cumulative total.

The legacy surfaces stay: :class:`LegacyStatsView` re-exposes a registry as
the flat ``Solver.statistics`` dict the pipeline, Table 1, and the tests have
always consumed — reads and writes pass straight through to the registry, so
the two views can never disagree.
"""

from __future__ import annotations

from collections.abc import MutableMapping
from typing import Dict, Iterator, List, Optional, Tuple

Number = float

#: Histogram bucket upper bounds (seconds-shaped; the last bucket is +inf).
_HIST_BOUNDS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)


class MetricsRegistry:
    """Counters, gauges, and histograms under hierarchical dotted names."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, Number] = {}
        self._histograms: Dict[str, List[Number]] = {}

    # -- counters ------------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        """Add *value* to counter *name* (creating it at zero)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def value(self, name: str, default: int = 0) -> int:
        """Current value of counter *name*."""
        return self._counters.get(name, default)

    def set_counter(self, name: str, value: int) -> None:
        """Force counter *name* to *value* (used by the legacy dict facade)."""
        self._counters[name] = value

    # -- gauges --------------------------------------------------------------

    def set_gauge(self, name: str, value: Number) -> None:
        self._gauges[name] = value

    def gauge(self, name: str, default: Number = 0) -> Number:
        return self._gauges.get(name, default)

    # -- histograms ----------------------------------------------------------

    def observe(self, name: str, value: Number) -> None:
        """Record one observation into histogram *name*."""
        self._histograms.setdefault(name, []).append(value)

    def histogram_summary(self, name: str) -> Dict[str, Number]:
        values = self._histograms.get(name, [])
        if not values:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0}
        buckets = [0] * (len(_HIST_BOUNDS) + 1)
        for value in values:
            for index, bound in enumerate(_HIST_BOUNDS):
                if value <= bound:
                    buckets[index] += 1
                    break
            else:
                buckets[-1] += 1
        return {
            "count": len(values),
            "sum": sum(values),
            "min": min(values),
            "max": max(values),
            "buckets": buckets,
        }

    # -- snapshot / diff / reset --------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        """A sorted point-in-time copy of the counters.

        Counters only: gauges and histograms carry timing-shaped values, so
        they are deliberately excluded from the deterministic artifact
        surface (``trace_document`` embeds this snapshot byte-stably).
        """
        return {name: self._counters[name] for name in sorted(self._counters)}

    def full_snapshot(self) -> Dict[str, object]:
        """Counters plus gauges plus histogram summaries (human surfaces)."""
        return {
            "counters": self.snapshot(),
            "gauges": {name: self._gauges[name] for name in sorted(self._gauges)},
            "histograms": {name: self.histogram_summary(name)
                           for name in sorted(self._histograms)},
        }

    @staticmethod
    def diff(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
        """Per-counter ``after - before`` (keys sorted; zero deltas kept
        only for keys present in *after*)."""
        return {name: after[name] - before.get(name, 0)
                for name in sorted(after)}

    def delta_since(self, before: Dict[str, int]) -> Dict[str, int]:
        """Counter deltas relative to an earlier :meth:`snapshot`."""
        return self.diff(before, self.snapshot())

    def merge(self, snapshot: Dict[str, int]) -> None:
        """Fold another registry's counter snapshot into this one (shard
        merging: counts add)."""
        for name, value in snapshot.items():
            self.inc(name, value)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


# ---------------------------------------------------------------------------
# Legacy flat-dict facade
# ---------------------------------------------------------------------------

#: Legacy ``Solver.statistics`` keys and their registry names.
SOLVER_METRIC_NAMES: Dict[str, str] = {
    "sat_queries": "smt.sat.queries",
    "theory_checks": "smt.theory.checks",
    "validity_queries": "smt.validity.queries",
    "cache_hits": "smt.cache.hits",
    "cache_misses": "smt.cache.misses",
    "theory_lemmas": "smt.theory.lemmas",
    "commute_cache_hits": "smt.commute.cache_hits",
    "commute_cache_misses": "smt.commute.cache_misses",
    "commute_static_skips": "smt.commute.static_skips",
    "unknowns": "smt.unknown",
    "timeouts": "smt.timeouts",
}


class LegacyStatsView(MutableMapping):
    """``Solver.statistics`` compatibility: a flat dict over a registry.

    Reads and writes forward to hierarchical registry counters, so code that
    does ``solver.statistics["sat_queries"] += 1`` and code that reads
    ``registry.value("smt.sat.queries")`` always agree.  Unknown keys map to
    ``<prefix><key>`` so ad-hoc counters (the commutativity module's
    ``_count`` helper) keep working.
    """

    __slots__ = ("registry", "_prefix", "_names")

    def __init__(self, registry: MetricsRegistry,
                 names: Optional[Dict[str, str]] = None,
                 prefix: str = "smt.") -> None:
        self.registry = registry
        self._prefix = prefix
        # Own the key order and membership; values live in the registry.
        self._names: Dict[str, str] = dict(names or {})
        for metric in self._names.values():
            if metric not in registry._counters:
                registry.set_counter(metric, 0)

    def metric_name(self, key: str) -> str:
        name = self._names.get(key)
        return name if name is not None else self._prefix + key

    def __getitem__(self, key: str) -> int:
        if key not in self._names:
            raise KeyError(key)
        return self.registry.value(self._names[key])

    def __setitem__(self, key: str, value: int) -> None:
        if key not in self._names:
            self._names[key] = self.metric_name(key)
        self.registry.set_counter(self._names[key], value)

    def __delitem__(self, key: str) -> None:
        del self._names[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (dict, MutableMapping)):
            return dict(self) == dict(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __repr__(self) -> str:
        return f"LegacyStatsView({dict(self)!r})"
