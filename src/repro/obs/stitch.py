"""Cross-process trace stitching: one timeline from driver + helpers.

A multi-process campaign leaves one Chrome-trace recording per invocation
(the driver's ``--trace``, each helper's ``--trace``); each file is
internally ordered but carries no global clock — deterministic exports use
per-file logical sequence numbers as ``ts``.  :func:`stitch_traces` merges
them into one Perfetto-loadable timeline:

* **pid** — one per input file, announced by an ``"M"`` ``process_name``
  metadata event, so the driver and every helper get their own process
  lane group;
* **tid** — a per-unit lane *within* each process: events inside a span
  tagged ``args.unit``/``args.entry`` (the helper's ``distrib.unit`` spans,
  the fuzz driver's per-candidate spans) land on a lane named after that
  unit, numbered in first-seen order (lane 0 is the process's main lane);
* **ts** — a merged logical clock: events are stably ordered by
  ``(local_ts, file_index, local_index)`` and re-numbered globally, so
  the merge is deterministic and per-lane B/E nesting is preserved;
* ``otherData.metrics`` — the per-file counter snapshots summed, and
  ``otherData.stitched: true`` marking the document for
  :mod:`repro.obs.validate`'s stitched-trace checks.

The output passes :func:`repro.obs.validate.validate_trace` (extended with
metadata-event checks) and is byte-deterministic for fixed inputs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: Span-arg keys that open a dedicated per-unit lane.
_LANE_KEYS = ("unit", "entry")


def _lane_key(event: Dict[str, object]) -> Optional[str]:
    args = event.get("args")
    if isinstance(args, dict):
        for key in _LANE_KEYS:
            value = args.get(key)
            if isinstance(value, str) and value:
                return value
    return None


def stitch_traces(documents: Sequence[Dict[str, object]],
                  labels: Optional[Sequence[str]] = None) -> Dict[str, object]:
    """Merge Chrome-trace *documents* into one pid/unit-keyed timeline."""
    labels = list(labels or
                  [f"process-{index}" for index in range(len(documents))])
    if len(labels) != len(documents):
        raise ValueError(f"{len(documents)} document(s) but "
                         f"{len(labels)} label(s)")

    # Collect every event with its stable merge key.  Input ``ts`` values
    # are per-file logical clocks; the triple keeps intra-file order (ts
    # rises with index) and breaks cross-file ties by file order.
    keyed: List[Tuple[float, int, int, Dict[str, object]]] = []
    for file_index, document in enumerate(documents):
        events = document.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError(f"{labels[file_index]}: missing traceEvents")
        for local_index, event in enumerate(events):
            keyed.append((float(event.get("ts", local_index)), file_index,
                          local_index, event))
    keyed.sort(key=lambda item: item[:3])

    merged: List[Dict[str, object]] = []
    for pid, label in enumerate(labels):
        merged.append({"ph": "M", "name": "process_name", "cat": "__metadata",
                       "ts": 0, "pid": pid, "tid": 0,
                       "args": {"name": str(label)}})

    # Per-process lane state: open-span stacks carrying the lane each span
    # landed on, plus the unit -> lane interning table (0 = main lane).
    stacks: Dict[int, List[Tuple[str, int]]] = {}
    lanes: Dict[int, Dict[str, int]] = {}
    lane_names: List[Tuple[int, int, str]] = []
    seq = len(merged)
    for _ts, file_index, _local_index, event in keyed:
        pid = file_index
        stack = stacks.setdefault(pid, [])
        interned = lanes.setdefault(pid, {})
        ph = event.get("ph")
        if ph == "B":
            lane = stack[-1][1] if stack else 0
            unit = _lane_key(event)
            if unit is not None:
                if unit not in interned:
                    interned[unit] = len(interned) + 1
                    lane_names.append((pid, interned[unit], unit))
                lane = interned[unit]
            stack.append((str(event.get("name")), lane))
        elif ph == "E" and stack:
            lane = stack[-1][1]
            stack.pop()
        else:
            lane = stack[-1][1] if stack else 0
        merged.append({
            "ph": ph, "name": event.get("name"), "cat": event.get("cat"),
            "ts": seq, "pid": pid, "tid": lane,
            "args": event.get("args") or {},
        })
        seq += 1
    for pid, lane, unit in lane_names:
        merged.append({"ph": "M", "name": "thread_name", "cat": "__metadata",
                       "ts": 0, "pid": pid, "tid": lane,
                       "args": {"name": unit}})

    metrics: Dict[str, int] = {}
    for document in documents:
        other = document.get("otherData")
        doc_metrics = other.get("metrics") if isinstance(other, dict) else None
        for name, value in sorted((doc_metrics or {}).items()):
            metrics[name] = metrics.get(name, 0) + int(value)
    return {
        "traceEvents": merged,
        "displayTimeUnit": "ms",
        "otherData": {
            "deterministic": True,
            "stitched": True,
            "sources": [str(label) for label in labels],
            "metrics": {name: metrics[name] for name in sorted(metrics)},
        },
    }


def stitch_files(paths: Sequence[str],
                 labels: Optional[Sequence[str]] = None) -> Dict[str, object]:
    """Load trace files and stitch them (labels default to file stems)."""
    documents = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            documents.append(json.load(handle))
    return stitch_traces(
        documents, labels=list(labels) if labels else
        [Path(path).stem for path in paths])


def write_stitched(path, document: Dict[str, object]) -> None:
    """Serialize a stitched document byte-stably (same shape write_trace
    uses: sorted keys, compact separators, trailing newline)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True,
                  separators=(",", ":"), ensure_ascii=True)
        handle.write("\n")
