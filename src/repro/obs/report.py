"""Self-contained run reports: markdown + HTML + an OpenMetrics textfile.

``expresso report`` folds whatever artifacts a run left behind — a shared
campaign store (``--store``), ``expresso profile --json`` output
(``--profile``), and any number of Chrome-trace recordings (``--trace``) —
into one report model, rendered three ways:

* ``report.md`` — the markdown summary (phase timings, hot SMT queries,
  unit/worker status, coverage axes, findings, fault/degradation counters);
* ``report.html`` — the same content as a dependency-free, inline-styled
  HTML page (the nightly-CI artifact a human actually opens);
* ``metrics.prom`` — every counter as an OpenMetrics/Prometheus textfile
  (node-exporter textfile-collector compatible), so a scrape target can
  export campaign progress without parsing JSON.

All three are written atomically (:func:`repro.resilience.atomic.
atomic_write_text`): a report generated *while* a campaign is running never
leaves a torn file next to the campaign's own artifacts.
"""

from __future__ import annotations

import html as _html
import json
import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.resilience.atomic import atomic_write_text

#: Counter-name fragments surfaced in the "faults & degradation" section.
_FAULT_FRAGMENTS = ("fault", "degrad", "timeout", "unknown", "quarantined",
                    "expired", "stolen", "failed")


def build_report(snapshot: Optional[Dict[str, Any]] = None,
                 profile: Optional[Dict[str, Any]] = None,
                 traces: Optional[Sequence[Dict[str, Any]]] = None,
                 trace_labels: Optional[Sequence[str]] = None,
                 title: str = "expresso run report") -> Dict[str, Any]:
    """Fold the run's artifacts into one deterministic report model.

    *snapshot* is a :func:`repro.obs.console.store_snapshot`, *profile* a
    parsed ``expresso profile --json`` document, *traces* parsed
    Chrome-trace documents.  Every input is optional; sections without
    data are simply absent.
    """
    metrics: Dict[str, int] = {}
    for source in ([(snapshot or {}).get("counters") or {}]
                   + [((trace or {}).get("otherData") or {}).get("metrics")
                      or {} for trace in (traces or ())]
                   + [(profile or {}).get("metrics") or {}]):
        for name in sorted(source):
            metrics[name] = max(metrics.get(name, 0), int(source[name]))

    model: Dict[str, Any] = {"title": title, "metrics": metrics}
    if snapshot is not None:
        model["store"] = {
            "path": snapshot["store"],
            "units": snapshot["units"],
            "workers": snapshot["workers"],
            "coverage": snapshot["coverage"],
            "corpus_entries": snapshot["corpus_entries"],
            "checkpoint": snapshot["checkpoint"],
            "warnings": list(snapshot["warnings"]),
        }
    if profile is not None:
        model["phases"] = {name: dict(agg) for name, agg in
                           sorted((profile.get("phases") or {}).items())}
        model["hot_queries"] = list(profile.get("top") or ())
        model["solver"] = {
            "queries": profile.get("queries"),
            "solver_seconds": profile.get("solver_seconds"),
            "wall_seconds": profile.get("wall_seconds"),
        }
    if traces:
        labels = list(trace_labels or
                      [f"trace {index}" for index in range(len(traces))])
        spans: Dict[str, int] = {}
        for trace in traces:
            for event in trace.get("traceEvents") or ():
                if event.get("ph") == "B":
                    name = str(event.get("name"))
                    spans[name] = spans.get(name, 0) + 1
        model["traces"] = {
            "sources": labels,
            "events": sum(len(trace.get("traceEvents") or ())
                          for trace in traces),
            "spans": {name: spans[name] for name in sorted(spans)},
        }
    model["faults"] = {
        name: value for name, value in sorted(metrics.items())
        if any(fragment in name for fragment in _FAULT_FRAGMENTS) and value}
    return model


# ---------------------------------------------------------------------------
# markdown
# ---------------------------------------------------------------------------


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> List[str]:
    lines = ["| " + " | ".join(headers) + " |",
             "| " + " | ".join("---" for _ in headers) + " |"]
    lines.extend("| " + " | ".join(str(cell) for cell in row) + " |"
                 for row in rows)
    return lines


def render_markdown(model: Dict[str, Any]) -> str:
    lines = [f"# {model['title']}", ""]
    store = model.get("store")
    if store:
        units = store["units"]
        lines += [f"## Campaign store — `{store['path']}`", "",
                  f"Units: **{units['done']}/{units['total']} done** — "
                  f"{units['pending']} pending, {units['leased']} leased, "
                  f"{units['quarantined']} quarantined.  Corpus "
                  f"{store['corpus_entries']} entries; coverage "
                  f"{store['coverage']['features']} features over "
                  f"{len(store['coverage']['axes'])} axes.", ""]
        if store["checkpoint"]:
            ckpt = store["checkpoint"]
            lines += [f"Checkpoint: round {ckpt['round_index']}, "
                      f"{ckpt['schedules_run']} schedules, "
                      f"{ckpt['findings']} finding(s).", ""]
        if store["workers"]:
            rows = [(name, entry["role"], entry["health"],
                     entry["heartbeat_age"], entry.get("claims", 0),
                     entry.get("completed", 0))
                    for name, entry in store["workers"].items()]
            lines += _md_table(("worker", "role", "health", "heartbeat age",
                                "claims", "completed"), rows) + [""]
        for warning in store["warnings"]:
            lines.append(f"> **Warning:** {warning}")
        if store["warnings"]:
            lines.append("")
        if store["coverage"]["axes"]:
            lines += ["### Coverage axes", ""]
            lines += _md_table(("axis", "features"),
                               sorted(store["coverage"]["axes"].items()))
            lines.append("")
    phases = model.get("phases")
    if phases:
        lines += ["## Phase timings", ""]
        rows = [(name, agg["count"], f"{agg['seconds']:.3f}",
                 f"{agg['self_seconds']:.3f}")
                for name, agg in sorted(phases.items(),
                                        key=lambda item: -item[1]["seconds"])]
        lines += _md_table(("phase", "count", "seconds", "self seconds"),
                           rows) + [""]
    hot = model.get("hot_queries")
    if hot:
        lines += ["## Hot SMT queries", ""]
        rows = [(entry.get("fingerprint", "?")[:12],
                 entry.get("count", entry.get("queries", "?")),
                 f"{entry.get('seconds', 0.0):.4f}",
                 entry.get("phase", entry.get("caller", "")))
                for entry in hot]
        lines += _md_table(("formula", "queries", "seconds", "phase"),
                           rows) + [""]
    traces = model.get("traces")
    if traces:
        lines += ["## Traces", "",
                  f"{traces['events']} events from "
                  f"{len(traces['sources'])} recording(s): "
                  + ", ".join(f"`{source}`" for source in traces["sources"]),
                  ""]
    if model.get("faults"):
        lines += ["## Faults & degradation", ""]
        lines += _md_table(("counter", "value"),
                           sorted(model["faults"].items())) + [""]
    if model.get("metrics"):
        lines += ["## Counters", ""]
        lines += _md_table(("counter", "value"),
                           sorted(model["metrics"].items())) + [""]
    return "\n".join(lines).rstrip() + "\n"


# ---------------------------------------------------------------------------
# HTML (self-contained; the nightly-CI artifact)
# ---------------------------------------------------------------------------

_CSS = (
    "body{font-family:system-ui,sans-serif;margin:2rem auto;max-width:60rem;"
    "color:#1a202c}h1{border-bottom:2px solid #2b6cb0}h2{color:#2b6cb0}"
    "table{border-collapse:collapse;margin:1rem 0}"
    "td,th{border:1px solid #cbd5e0;padding:.3rem .7rem;text-align:left}"
    "th{background:#ebf4ff}.warn{background:#fffbea;border-left:4px solid "
    "#d69e2e;padding:.5rem .8rem;margin:.5rem 0}"
    ".health-live{color:#2f855a;font-weight:600}"
    ".health-expired{color:#b7791f;font-weight:600}"
    ".health-dead{color:#c53030;font-weight:600}"
)


def _html_table(headers: Sequence[str],
                rows: Sequence[Sequence[Any]]) -> List[str]:
    out = ["<table>", "<tr>" + "".join(f"<th>{_html.escape(str(cell))}</th>"
                                       for cell in headers) + "</tr>"]
    for row in rows:
        cells = []
        for cell in row:
            text = _html.escape(str(cell))
            if text in ("live", "expired", "dead"):
                cells.append(f'<td class="health-{text}">{text}</td>')
            else:
                cells.append(f"<td>{text}</td>")
        out.append("<tr>" + "".join(cells) + "</tr>")
    out.append("</table>")
    return out


def render_html(model: Dict[str, Any]) -> str:
    title = _html.escape(model["title"])
    body: List[str] = [f"<h1>{title}</h1>"]
    store = model.get("store")
    if store:
        units = store["units"]
        body.append(f"<h2>Campaign store — "
                    f"<code>{_html.escape(store['path'])}</code></h2>")
        body.append(f"<p>Units: <b>{units['done']}/{units['total']} done</b>"
                    f" — {units['pending']} pending, {units['leased']} "
                    f"leased, {units['quarantined']} quarantined. Corpus "
                    f"{store['corpus_entries']} entries; coverage "
                    f"{store['coverage']['features']} features over "
                    f"{len(store['coverage']['axes'])} axes.</p>")
        if store["checkpoint"]:
            ckpt = store["checkpoint"]
            body.append(f"<p>Checkpoint: round {ckpt['round_index']}, "
                        f"{ckpt['schedules_run']} schedules, "
                        f"{ckpt['findings']} finding(s).</p>")
        for warning in store["warnings"]:
            body.append(f'<div class="warn">{_html.escape(warning)}</div>')
        if store["workers"]:
            body += _html_table(
                ("worker", "role", "health", "heartbeat age", "claims",
                 "completed"),
                [(name, entry["role"], entry["health"],
                  entry["heartbeat_age"], entry.get("claims", 0),
                  entry.get("completed", 0))
                 for name, entry in store["workers"].items()])
        if store["coverage"]["axes"]:
            body.append("<h2>Coverage axes</h2>")
            body += _html_table(("axis", "features"),
                                sorted(store["coverage"]["axes"].items()))
    phases = model.get("phases")
    if phases:
        body.append("<h2>Phase timings</h2>")
        body += _html_table(
            ("phase", "count", "seconds", "self seconds"),
            [(name, agg["count"], f"{agg['seconds']:.3f}",
              f"{agg['self_seconds']:.3f}")
             for name, agg in sorted(phases.items(),
                                     key=lambda item: -item[1]["seconds"])])
    hot = model.get("hot_queries")
    if hot:
        body.append("<h2>Hot SMT queries</h2>")
        body += _html_table(
            ("formula", "queries", "seconds", "phase"),
            [(entry.get("fingerprint", "?")[:12],
              entry.get("count", entry.get("queries", "?")),
              f"{entry.get('seconds', 0.0):.4f}",
              entry.get("phase", entry.get("caller", ""))) for entry in hot])
    traces = model.get("traces")
    if traces:
        body.append("<h2>Traces</h2>")
        body.append(f"<p>{traces['events']} events from "
                    f"{len(traces['sources'])} recording(s): "
                    + ", ".join(f"<code>{_html.escape(str(source))}</code>"
                                for source in traces["sources"]) + "</p>")
    if model.get("faults"):
        body.append("<h2>Faults &amp; degradation</h2>")
        body += _html_table(("counter", "value"),
                            sorted(model["faults"].items()))
    if model.get("metrics"):
        body.append("<h2>Counters</h2>")
        body += _html_table(("counter", "value"),
                            sorted(model["metrics"].items()))
    return ("<!doctype html>\n<html><head><meta charset=\"utf-8\">"
            f"<title>{title}</title><style>{_CSS}</style></head>\n<body>\n"
            + "\n".join(body) + "\n</body></html>\n")


# ---------------------------------------------------------------------------
# OpenMetrics / Prometheus textfile exporter
# ---------------------------------------------------------------------------


def _metric_name(name: str) -> str:
    return "expresso_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def render_openmetrics(counters: Dict[str, int],
                       gauges: Optional[Dict[str, float]] = None) -> str:
    """Counters/gauges as an OpenMetrics textfile (``# EOF``-terminated)."""
    lines: List[str] = []
    for name in sorted(counters):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {int(counters[name])}")
    for name in sorted(gauges or {}):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        value = gauges[name]
        lines.append(f"{metric} {value if value is not None else 0}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def snapshot_gauges(snapshot: Dict[str, Any]) -> Dict[str, float]:
    """The store-status gauges exported next to the counters."""
    units = snapshot["units"]
    healths = [entry["health"] for entry in snapshot["workers"].values()]
    gauges = {f"units.{state}": float(units[state])
              for state in ("pending", "leased", "done", "quarantined")}
    gauges["coverage.features"] = float(snapshot["coverage"]["features"])
    gauges["corpus.entries"] = float(snapshot["corpus_entries"])
    for kind in ("live", "expired", "dead"):
        gauges[f"workers.{kind}"] = float(healths.count(kind))
    return gauges


# ---------------------------------------------------------------------------
# writing (atomic: never a torn report next to live campaign artifacts)
# ---------------------------------------------------------------------------


def write_report(out_dir, model: Dict[str, Any],
                 gauges: Optional[Dict[str, float]] = None) -> Dict[str, str]:
    """Write ``report.md``/``report.html``/``metrics.prom`` under *out_dir*.

    Returns the paths written.  Every file goes through
    :func:`~repro.resilience.atomic.atomic_write_text` (tmp + fsync +
    rename).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = {
        "markdown": out / "report.md",
        "html": out / "report.html",
        "openmetrics": out / "metrics.prom",
    }
    atomic_write_text(paths["markdown"], render_markdown(model))
    atomic_write_text(paths["html"], render_html(model))
    atomic_write_text(paths["openmetrics"],
                      render_openmetrics(model.get("metrics") or {}, gauges))
    return {kind: str(path) for kind, path in paths.items()}


def load_json(path) -> Dict[str, Any]:
    """Load one JSON artifact (trace document or profile output)."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
