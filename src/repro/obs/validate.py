"""Chrome-trace-event schema validation for emitted trace artifacts.

``python -m repro.obs.validate TRACE.json [...]`` exits non-zero if any file
fails the checks.  This is the PR-time CI smoke: it pins the contract that
every trace the pipeline emits loads in Perfetto / ``chrome://tracing``.

Checks (the object-format subset of the trace-event spec we emit):

* top level is an object with a ``traceEvents`` array;
* every event has ``name``/``cat`` strings, a known ``ph``, numeric ``ts``,
  integer ``pid``/``tid``, and an object ``args``;
* B/E events balance per (pid, tid) with matching names (LIFO nesting);
* every ``prune``-named event carries exactly one ``provenance`` arg;
* ``M`` metadata events are ``process_name``/``thread_name`` and carry a
  string ``args.name``;
* a **stitched** document (``otherData.stitched``, see
  :mod:`repro.obs.stitch`) must announce a ``process_name`` for every
  distinct pid its events use — that is what keys the merged timeline.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Tuple

#: Phases this repo emits (a subset of the full trace-event alphabet).
_KNOWN_PHASES = frozenset({"B", "E", "i", "X", "M", "C"})

#: The prune-provenance vocabulary (exploration skip mechanisms).
PROVENANCE_TAGS = frozenset({
    "sleep_set", "backtrack", "symmetry", "merge", "shared_store", "visited",
})

#: Metadata-event names this repo emits (the stitcher's lane labels).
_METADATA_NAMES = frozenset({"process_name", "thread_name"})


def validate_trace(document: object) -> List[str]:
    """Return a list of schema violations (empty = valid)."""
    errors: List[str] = []
    if not isinstance(document, dict):
        return ["top level must be an object (Chrome object format)"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing 'traceEvents' array"]
    other = document.get("otherData")
    stitched = isinstance(other, dict) and bool(other.get("stitched"))
    named_pids: set = set()
    used_pids: set = set()
    stacks: Dict[Tuple[object, object], List[str]] = {}
    for index, event in enumerate(events):
        where = f"event[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            errors.append(f"{where}: unknown ph {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: 'name' must be a string")
        if not isinstance(event.get("cat"), str):
            errors.append(f"{where}: 'cat' must be a string")
        if not isinstance(event.get("ts"), (int, float)):
            errors.append(f"{where}: 'ts' must be a number")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}: '{key}' must be an integer")
        args = event.get("args")
        if not isinstance(args, dict):
            errors.append(f"{where}: 'args' must be an object")
            args = {}
        if ph == "M":
            # Metadata events label lanes; they never open/close spans.
            name = event.get("name")
            if name not in _METADATA_NAMES:
                errors.append(f"{where}: metadata name {name!r} not in "
                              f"{sorted(_METADATA_NAMES)}")
            if not isinstance(args.get("name"), str):
                errors.append(f"{where}: metadata event needs a string "
                              f"'args.name'")
            elif name == "process_name":
                named_pids.add(event.get("pid"))
            continue
        used_pids.add(event.get("pid"))
        lane = (event.get("pid"), event.get("tid"))
        stack = stacks.setdefault(lane, [])
        if ph == "B":
            stack.append(str(event.get("name")))
        elif ph == "E":
            if not stack:
                errors.append(f"{where}: 'E' without matching 'B'")
            elif stack[-1] != event.get("name"):
                errors.append(f"{where}: 'E' for {event.get('name')!r} but "
                              f"open span is {stack[-1]!r}")
                stack.pop()
            else:
                stack.pop()
        if str(event.get("name")) == "prune":
            provenance = args.get("provenance")
            if provenance not in PROVENANCE_TAGS:
                errors.append(f"{where}: prune event provenance "
                              f"{provenance!r} not in {sorted(PROVENANCE_TAGS)}")
    for lane, stack in sorted(stacks.items(), key=repr):
        if stack:
            errors.append(f"lane {lane}: {len(stack)} unclosed span(s): "
                          f"{stack[-1]!r}")
    if stitched:
        for pid in sorted(used_pids - named_pids, key=repr):
            errors.append(f"stitched document: pid {pid} has events but no "
                          f"'process_name' metadata")
    return errors


def validate_file(path: str) -> List[str]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"cannot load {path}: {error}"]
    return validate_trace(document)


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: python -m repro.obs.validate TRACE.json [...]",
              file=sys.stderr)
        return 2
    status = 0
    for path in argv:
        errors = validate_file(path)
        if errors:
            status = 1
            print(f"{path}: INVALID")
            for error in errors:
                print(f"  - {error}")
        else:
            with open(path, "r", encoding="utf-8") as handle:
                count = len(json.load(handle).get("traceEvents", []))
            print(f"{path}: ok ({count} events)")
    return status


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
