"""The SQLite-WAL-backed campaign store (``--store PATH``).

One file holds everything a campaign shares across processes:

========== =================================================================
table      contents
========== =================================================================
meta       campaign config fingerprint, driver lease, free-form flags
visited    completion-gated visited-state hashes, namespaced by *scope*
corpus     the fuzz corpus index: entry id -> file checksum + fingerprint
coverage   the merged coverage map, one (axis, feature) row each
frontier   checkpointed exploration frontier (per-benchmark results, the
           fuzz campaign's last checkpoint record)
units      the work-stealing queue (see :mod:`repro.distrib.queue`)
counters   ``distrib.*`` observability counters, aggregated transactionally
telemetry  per-worker heartbeat/progress rows for ``expresso status``
========== =================================================================

Integrity: every row carries a blake2b-128 checksum of its payload
(:func:`repro.resilience.atomic.checksum_payload` — the same canonical-JSON
checksum the journal uses), so silent corruption is detectable row by row:
:meth:`CampaignStore.verify` reports every bad row, :meth:`CampaignStore.repair`
drops them (the campaign re-derives dropped state deterministically).

Concurrency: SQLite in WAL mode with ``BEGIN IMMEDIATE`` write
transactions.  WAL gives readers a stable snapshot while one writer
commits, so a cooperating process never observes a torn batch; the busy
timeout serializes writers.  Connections are per-process — a store object
that crosses a ``fork`` lazily reopens in the child, and the driver closes
its handle before forking pools so no SQLite file lock is shared across
the fork boundary.

Fault sites: ``store.write`` before every write transaction and
``store.read`` before every read snapshot, with the operation name (and
unit id where there is one) as the token — a chaos plan can kill a process
at any specific lease boundary with ``{"site": "store.write",
"match": "claim:..."}``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.resilience.atomic import checksum_payload, checksum_text
from repro.resilience.faults import fault_check

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY, value TEXT NOT NULL, sha TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS visited (
    scope TEXT NOT NULL, hash TEXT NOT NULL, sha TEXT NOT NULL,
    PRIMARY KEY (scope, hash));
CREATE TABLE IF NOT EXISTS corpus (
    entry_id TEXT PRIMARY KEY, payload TEXT NOT NULL, sha TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS coverage (
    axis TEXT NOT NULL, feature TEXT NOT NULL, sha TEXT NOT NULL,
    PRIMARY KEY (axis, feature));
CREATE TABLE IF NOT EXISTS frontier (
    key TEXT PRIMARY KEY, payload TEXT NOT NULL, sha TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS units (
    unit_id TEXT PRIMARY KEY, batch TEXT NOT NULL,
    payload BLOB NOT NULL, sha TEXT NOT NULL,
    status TEXT NOT NULL DEFAULT 'pending',
    owner TEXT, lease_expires REAL, attempts INTEGER NOT NULL DEFAULT 0,
    result BLOB, result_sha TEXT, error TEXT);
CREATE INDEX IF NOT EXISTS units_batch ON units (batch, status);
CREATE TABLE IF NOT EXISTS counters (
    name TEXT PRIMARY KEY, value INTEGER NOT NULL, sha TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS telemetry (
    worker TEXT PRIMARY KEY, payload TEXT NOT NULL, sha TEXT NOT NULL);
"""

#: Row-payload tables verify() knows how to checksum, with the expression
#: rebuilding each row's checksummed payload.  ``units`` checksums cover the
#: immutable payload (and, separately, the result) — lease fields mutate.
_CHECKED = (
    ("meta", ("key",), lambda row: [row["key"], row["value"]]),
    ("visited", ("scope", "hash"), lambda row: [row["scope"], row["hash"]]),
    ("corpus", ("entry_id",), lambda row: [row["entry_id"], row["payload"]]),
    ("coverage", ("axis", "feature"), lambda row: [row["axis"], row["feature"]]),
    ("frontier", ("key",), lambda row: [row["key"], row["payload"]]),
    ("counters", ("name",), lambda row: [row["name"], row["value"]]),
    ("telemetry", ("worker",), lambda row: [row["worker"], row["payload"]]),
)


class StoreMismatchError(RuntimeError):
    """The store belongs to a campaign with different parameters."""

    def __init__(self, path, detail: str):
        self.path = Path(path)
        self.detail = detail
        super().__init__(f"campaign store at {self.path}: {detail}")


def _row_sha(*fields: Any) -> str:
    return checksum_payload(list(fields))


class CampaignStore:
    """One shared on-disk campaign store (SQLite, WAL, checksummed rows)."""

    def __init__(self, path, busy_timeout: float = 30.0,
                 read_only: bool = False):
        self.path = Path(path)
        self.busy_timeout = busy_timeout
        self.read_only = read_only
        self._conn: Optional[sqlite3.Connection] = None
        self._owner: Optional[Tuple[int, int]] = None  # (pid, thread id)

    # -- connection lifecycle -------------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        """The per-process (and per-thread) connection, opened lazily.

        SQLite connections must not cross ``fork`` (shared file locks) or
        threads (the default isolation checks); reopening on owner change
        makes one store object safe to hold across both.
        """
        owner = (os.getpid(), threading.get_ident())
        if self._conn is not None and self._owner != owner:
            self._conn = None           # inherited across fork/thread: drop
        if self._conn is None:
            if self.read_only:
                # A console/status reader: never create the file, never run
                # the schema, never take a write lock on someone's campaign.
                uri = f"file:{self.path}?mode=ro"
                conn = sqlite3.connect(uri, uri=True,
                                       timeout=self.busy_timeout,
                                       isolation_level=None)
                conn.row_factory = sqlite3.Row
                conn.execute("PRAGMA query_only=ON")
                conn.execute(
                    f"PRAGMA busy_timeout={int(self.busy_timeout * 1000)}")
            else:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                conn = sqlite3.connect(self.path, timeout=self.busy_timeout,
                                       isolation_level=None)
                conn.row_factory = sqlite3.Row
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                conn.execute(
                    f"PRAGMA busy_timeout={int(self.busy_timeout * 1000)}")
                conn.executescript(_SCHEMA)
            self._conn = conn
            self._owner = owner
        return self._conn

    def close(self) -> None:
        """Close this process's connection (reopens lazily on next use).

        Call before forking worker pools: a SQLite handle shared across a
        fork can release the parent's file locks when the child exits.
        """
        if self._conn is not None and self._owner == (os.getpid(),
                                                      threading.get_ident()):
            self._conn.close()
        self._conn = None
        self._owner = None

    # -- transactions ---------------------------------------------------------

    @contextmanager
    def transaction(self, op: str) -> Iterator[sqlite3.Connection]:
        """One single-writer batch: ``BEGIN IMMEDIATE`` .. commit/rollback.

        Concurrent processes serialize on the write lock (busy timeout),
        and WAL readers keep their stable snapshot until the commit — no
        observer ever sees half the batch.  The ``store.write`` fault check
        runs *before* the lock is taken, so an injected crash models a
        process dying at the boundary with nothing committed.
        """
        if self.read_only:
            raise StoreMismatchError(
                self.path, f"store opened read-only; refusing write '{op}'")
        fault_check("store.write", token=op)
        conn = self._connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            yield conn
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")

    def _read(self, op: str) -> sqlite3.Connection:
        fault_check("store.read", token=op)
        return self._connection()

    # -- meta -----------------------------------------------------------------

    def meta_get(self, key: str) -> Optional[Any]:
        row = self._read(f"meta:{key}").execute(
            "SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        return json.loads(row["value"]) if row is not None else None

    def meta_set(self, key: str, value: Any,
                 conn: Optional[sqlite3.Connection] = None) -> None:
        text = json.dumps(value, sort_keys=True)
        args = (key, text, _row_sha(key, text))
        if conn is not None:
            conn.execute("INSERT OR REPLACE INTO meta VALUES (?, ?, ?)", args)
            return
        with self.transaction(f"meta:{key}") as conn:
            conn.execute("INSERT OR REPLACE INTO meta VALUES (?, ?, ?)", args)

    def bind_campaign(self, fingerprint: dict) -> None:
        """Bind the store to one campaign configuration (or validate it).

        The first invocation records the config fingerprint; later ones —
        resumes, cooperating helpers, post-crash restarts — must present
        the same fingerprint, exactly like the journal's resume check.
        """
        stamp = checksum_payload(fingerprint)
        with self.transaction("bind") as conn:
            row = conn.execute("SELECT value FROM meta WHERE key = 'campaign'"
                               ).fetchone()
            if row is None:
                self.meta_set("campaign", stamp, conn=conn)
            elif json.loads(row["value"]) != stamp:
                raise StoreMismatchError(
                    self.path, "store was created by a campaign with "
                    "different parameters; use the original flags or a "
                    "fresh --store path")

    # -- visited-state hashes (completion-gated publish) ----------------------

    def publish_hashes(self, scope: str, hashes: Sequence[int]) -> None:
        if not hashes:
            return
        with self.transaction("visited.publish") as conn:
            conn.executemany(
                "INSERT OR IGNORE INTO visited VALUES (?, ?, ?)",
                [(scope, str(value), _row_sha(scope, str(value)))
                 for value in hashes])

    def visited_snapshot(self, scope: str) -> set:
        rows = self._read("visited.snapshot").execute(
            "SELECT hash FROM visited WHERE scope = ?", (scope,)).fetchall()
        return {int(row["hash"]) for row in rows}

    # -- corpus index / coverage / frontier -----------------------------------

    def index_entries(self, records: Dict[str, dict],
                      conn: Optional[sqlite3.Connection] = None) -> None:
        """Mirror corpus entries into the index (id -> checksummed summary)."""
        rows = []
        for entry_id, record in sorted(records.items()):
            payload = json.dumps(record, sort_keys=True)
            rows.append((entry_id, payload, _row_sha(entry_id, payload)))
        if not rows:
            return
        if conn is not None:
            conn.executemany(
                "INSERT OR REPLACE INTO corpus VALUES (?, ?, ?)", rows)
            return
        with self.transaction("corpus.index") as conn:
            conn.executemany(
                "INSERT OR REPLACE INTO corpus VALUES (?, ?, ?)", rows)

    def corpus_index(self) -> Dict[str, dict]:
        rows = self._read("corpus.index").execute(
            "SELECT entry_id, payload FROM corpus").fetchall()
        return {row["entry_id"]: json.loads(row["payload"]) for row in rows}

    def merge_coverage(self, features: Dict[str, Sequence[str]],
                       conn: Optional[sqlite3.Connection] = None) -> None:
        rows = [(axis, str(feature), _row_sha(axis, str(feature)))
                for axis, values in sorted(features.items())
                for feature in values]
        if not rows:
            return
        if conn is not None:
            conn.executemany(
                "INSERT OR IGNORE INTO coverage VALUES (?, ?, ?)", rows)
            return
        with self.transaction("coverage.merge") as conn:
            conn.executemany(
                "INSERT OR IGNORE INTO coverage VALUES (?, ?, ?)", rows)

    def coverage_map(self) -> Dict[str, List[str]]:
        rows = self._read("coverage.map").execute(
            "SELECT axis, feature FROM coverage ORDER BY axis, feature"
        ).fetchall()
        merged: Dict[str, List[str]] = {}
        for row in rows:
            merged.setdefault(row["axis"], []).append(row["feature"])
        return merged

    def set_frontier(self, key: str, payload: dict,
                     conn: Optional[sqlite3.Connection] = None) -> None:
        text = json.dumps(payload, sort_keys=True)
        args = (key, text, _row_sha(key, text))
        if conn is not None:
            conn.execute("INSERT OR REPLACE INTO frontier VALUES (?, ?, ?)",
                         args)
            return
        with self.transaction(f"frontier:{key}") as conn:
            conn.execute("INSERT OR REPLACE INTO frontier VALUES (?, ?, ?)",
                         args)

    def get_frontier(self, key: str) -> Optional[dict]:
        row = self._read(f"frontier:{key}").execute(
            "SELECT payload FROM frontier WHERE key = ?", (key,)).fetchone()
        return json.loads(row["payload"]) if row is not None else None

    def frontier_keys(self, prefix: str = "") -> List[str]:
        rows = self._read("frontier.keys").execute(
            "SELECT key FROM frontier ORDER BY key").fetchall()
        return [row["key"] for row in rows if row["key"].startswith(prefix)]

    # -- counters -------------------------------------------------------------

    def inc_counter(self, conn: sqlite3.Connection, name: str,
                    delta: int = 1) -> None:
        """Bump a ``distrib.*`` counter inside an open write transaction.

        Counters commit atomically with the operation they count, so the
        aggregate is exact across any number of cooperating processes.
        """
        row = conn.execute("SELECT value FROM counters WHERE name = ?",
                           (name,)).fetchone()
        value = (row["value"] if row is not None else 0) + delta
        conn.execute("INSERT OR REPLACE INTO counters VALUES (?, ?, ?)",
                     (name, value, _row_sha(name, value)))

    def counters(self) -> Dict[str, int]:
        rows = self._read("counters").execute(
            "SELECT name, value FROM counters ORDER BY name").fetchall()
        return {row["name"]: row["value"] for row in rows}

    # -- telemetry ------------------------------------------------------------

    def record_telemetry(self, worker: str, updates: Dict[str, Any],
                         conn: Optional[sqlite3.Connection] = None,
                         increments: Optional[Dict[str, int]] = None) -> None:
        """Merge *updates* into *worker*'s telemetry row (read-merge-write).

        Pass the open transaction's ``conn`` to piggyback on an existing
        batch — every production caller does (claim/renew/complete in the
        queue, the checkpoint mirror in the fuzz campaign), so telemetry
        costs no extra ``store.write`` fault-point crossings and no extra
        commits.  *increments* adds to existing numeric fields instead of
        replacing them.
        """
        if conn is None:
            with self.transaction(f"telemetry:{worker}") as conn:
                self.record_telemetry(worker, updates, conn=conn,
                                      increments=increments)
            return
        row = conn.execute("SELECT payload FROM telemetry WHERE worker = ?",
                           (worker,)).fetchone()
        payload = json.loads(row["payload"]) if row is not None else {}
        payload.update(updates)
        for name, delta in (increments or {}).items():
            payload[name] = int(payload.get(name, 0)) + int(delta)
        text = json.dumps(payload, sort_keys=True)
        conn.execute("INSERT OR REPLACE INTO telemetry VALUES (?, ?, ?)",
                     (worker, text, _row_sha(worker, text)))

    def telemetry(self) -> Dict[str, dict]:
        """All per-worker telemetry rows (empty for un-migrated stores)."""
        try:
            rows = self._read("telemetry").execute(
                "SELECT worker, payload FROM telemetry ORDER BY worker"
            ).fetchall()
        except sqlite3.OperationalError:
            return {}                  # store predates the telemetry table
        return {row["worker"]: json.loads(row["payload"]) for row in rows}

    # -- integrity ------------------------------------------------------------

    def verify(self) -> List[str]:
        """Scan every row's checksum; one human-readable line per problem."""
        problems: List[str] = []
        conn = self._read("verify")
        for table, key_cols, payload in _CHECKED:
            try:
                rows = conn.execute(f"SELECT * FROM {table}").fetchall()
            except sqlite3.OperationalError:
                continue               # read-only view of an older store
            for row in rows:
                key = ", ".join(str(row[col]) for col in key_cols)
                try:
                    ok = row["sha"] == _row_sha(*payload(row))
                except (ValueError, TypeError):
                    ok = False
                if not ok:
                    problems.append(f"{table} row ({key}) fails its checksum")
        for row in conn.execute("SELECT unit_id, payload, sha, result, "
                                "result_sha FROM units"):
            if checksum_text(row["payload"].hex()) != row["sha"]:
                problems.append(f"units row ({row['unit_id']}) payload fails "
                                f"its checksum")
            if row["result"] is not None and (
                    checksum_text(row["result"].hex()) != row["result_sha"]):
                problems.append(f"units row ({row['unit_id']}) result fails "
                                f"its checksum")
        return problems

    def repair(self) -> dict:
        """Drop rows whose checksums fail; campaigns re-derive them.

        Visited hashes, coverage rows and corpus-index rows are all
        re-computable (the journal + entry files stay authoritative for the
        corpus itself); a corrupt unit is re-enqueued by the next driver.
        Returns ``{"rows_dropped": n, "problems": [...]}``.
        """
        problems = self.verify()
        dropped = 0
        with self.transaction("repair") as conn:
            for table, key_cols, payload in _CHECKED:
                for row in conn.execute(f"SELECT * FROM {table}").fetchall():
                    try:
                        ok = row["sha"] == _row_sha(*payload(row))
                    except (ValueError, TypeError):
                        ok = False
                    if not ok:
                        where = " AND ".join(f"{col} = ?" for col in key_cols)
                        conn.execute(f"DELETE FROM {table} WHERE {where}",
                                     tuple(row[col] for col in key_cols))
                        dropped += 1
            for row in conn.execute("SELECT unit_id, payload, sha, result, "
                                    "result_sha FROM units").fetchall():
                bad_payload = checksum_text(row["payload"].hex()) != row["sha"]
                bad_result = row["result"] is not None and (
                    checksum_text(row["result"].hex()) != row["result_sha"])
                if bad_payload:
                    conn.execute("DELETE FROM units WHERE unit_id = ?",
                                 (row["unit_id"],))
                    dropped += 1
                elif bad_result:
                    conn.execute(
                        "UPDATE units SET status = 'pending', owner = NULL, "
                        "lease_expires = NULL, result = NULL, "
                        "result_sha = NULL WHERE unit_id = ?",
                        (row["unit_id"],))
                    dropped += 1
        return {"rows_dropped": dropped, "problems": problems}


class VisitedStore:
    """The engine-facing visited-state memo over a :class:`CampaignStore`.

    Same completion-gated contract the manager-dict ``SharedStateStore``
    had: DFS shards keep their fast process-local ``seen`` sets; on top,
    :meth:`probe` buffers the stable hashes of fresh states and consults a
    periodically refreshed snapshot of what *completed* shards published.
    :meth:`publish` — called by the engine only once the shard's whole
    slice drained failure-free — pushes the buffer in one transaction.
    Gating publication on clean completion is what keeps cross-shard
    pruning sound: a sibling treats a published state as a fully covered,
    failure-free subtree.  ``probe`` errs toward ``False`` between
    refreshes — a shard then merely re-explores a little overlap, never
    skips coverage.

    *scope* namespaces the hash space: states of different benchmarks (or
    different workload bounds) share one store file without ever
    cross-pruning.
    """

    def __init__(self, store: CampaignStore, scope: str,
                 refresh_every: int = 32):
        self.store = store
        self.scope = scope
        self.refresh_every = max(int(refresh_every), 1)
        self._snapshot: set = set()
        self._pending: List[int] = []
        self._probes = 0
        self.refreshes = 0
        self.refresh()                 # pull what completed shards published

    def probe(self, state_hash: int) -> bool:
        """Buffer *state_hash*; True when a *completed* shard published it."""
        self._probes += 1
        if self._probes % self.refresh_every == 0:
            self.refresh()
        if state_hash in self._snapshot:
            return True
        self._pending.append(state_hash)
        return False

    def refresh(self) -> None:
        """Re-pull the local snapshot of published foreign hashes."""
        try:
            self._snapshot = self.store.visited_snapshot(self.scope)
        except sqlite3.Error:
            # The store is unreachable (driver tearing down, disk gone):
            # degrade to local-only exploration, never lose soundness.
            self._snapshot = set()
        self.refreshes += 1

    def publish(self) -> None:
        """Push the buffered hashes (call only when fully drained clean)."""
        if not self._pending:
            return
        try:
            self.store.publish_hashes(self.scope, self._pending)
        except sqlite3.Error:
            pass
        self._pending.clear()
