"""Lease-based work stealing over the campaign store (``units`` table).

A **work unit** is one pickled ``(function, job)`` pair with a
deterministic id (``<batch>/<slot>``); *batches* are a campaign's natural
barriers (the fuzz bootstrap, each mutation round, an explore shard set).
The protocol:

* :meth:`WorkQueue.claim` — atomically take the first claimable unit in id
  order: ``pending``, or ``leased`` past its expiry (the previous owner
  crashed or hung — the claim *steals* it).  Claiming bumps the unit's
  attempt counter; a unit that has burned ``max_attempts`` leases is
  **quarantined** instead of handed out again — it becomes an error record
  (:class:`~repro.resilience.JobFailure` at merge time, mirroring the
  supervisor's poison-job semantics), never a livelock.
* :meth:`WorkQueue.renew` — heartbeat: the owner extends its lease every
  ``heartbeat_interval`` while evaluating.  A worker that stops heartbeating
  loses the unit after ``lease_ttl``.
* :meth:`WorkQueue.complete` — store the pickled result *iff* the caller
  still owns the lease; a stale owner's late result is discarded (the
  stealer's result — byte-identical, evaluation is deterministic — wins).

:func:`queue_map` is the drop-in, order-preserving replacement for
:func:`repro.explore.parallel.map_jobs` when a store is configured: results
come back in job order whatever processes did the work, so campaign merges
stay deterministic.  The driver enqueues, fans out pool workers, and then
*participates*: once its pool drains (or breaks), it claims leftovers
in-process, so a campaign always terminates even if every worker dies.
:func:`run_helper` is the same worker loop for a *separate invocation*
pointed at the shared store — how multiple processes cooperate on one
campaign.

Fault sites: ``store.write`` fires with token ``claim:<unit id>`` right
after a lease commits (killing there models a worker dying at the lease
boundary — the unit returns via TTL expiry), ``lease.renew`` and
``worker.heartbeat`` fire in the renewal path (token = unit id).
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor, wait
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.distrib.store import CampaignStore
from repro.resilience import JobFailure
from repro.resilience import faults
from repro.resilience.atomic import checksum_text
from repro.resilience.faults import fault_check
from repro.resilience.supervisor import _terminate_pool


@dataclass
class DistribConfig:
    """Shared-store campaign knobs (``--store/--lease-ttl/--heartbeat-interval``)."""

    store_path: Optional[str] = None
    lease_ttl: float = 30.0
    heartbeat_interval: float = 5.0
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if self.lease_ttl <= 2 * self.heartbeat_interval:
            raise ValueError(
                f"--lease-ttl ({self.lease_ttl}s) must exceed twice the "
                f"--heartbeat-interval ({self.heartbeat_interval}s): a "
                f"healthy worker must get at least two renewal chances "
                f"before its lease can be stolen")

    @property
    def poll_interval(self) -> float:
        return min(max(self.heartbeat_interval / 2, 0.02), 1.0)


@dataclass
class Claim:
    """One leased work unit (attempt is 0-based: prior lease count)."""

    unit_id: str
    payload: bytes
    attempt: int


def _obs_inc(name: str, delta: int = 1) -> None:
    from repro import obs

    obs.registry().inc(name, delta)


def _set_plan_attempt(attempt: int) -> Optional[int]:
    plan = faults.active_plan()
    if plan is None:
        return None
    previous = plan.attempt
    plan.attempt = attempt
    return previous


class WorkQueue:
    """The work-stealing unit queue over one :class:`CampaignStore`."""

    def __init__(self, store: CampaignStore, config: DistribConfig):
        self.store = store
        self.config = config

    # -- enqueue --------------------------------------------------------------

    def enqueue(self, batch: str, payloads: Sequence[bytes],
                keys: Optional[Sequence[str]] = None) -> List[str]:
        """Idempotently insert one unit per payload; returns the unit ids.

        ``INSERT OR IGNORE`` keys on the deterministic unit id
        (``<batch>/<key>``; slot numbers by default), so a resumed driver
        re-enqueueing a replayed round reuses completed units' stored
        results instead of re-running them.  Callers whose job lists can
        *shrink* across a resume (the fuzz driver skips already-admitted
        entries) must pass stable per-job *keys* so ids never shift.
        """
        if keys is None:
            keys = [f"{slot:05d}" for slot in range(len(payloads))]
        unit_ids = [f"{batch}/{key}" for key in keys]
        with self.store.transaction(f"enqueue:{batch}") as conn:
            before = conn.total_changes
            conn.executemany(
                "INSERT OR IGNORE INTO units (unit_id, batch, payload, sha) "
                "VALUES (?, ?, ?, ?)",
                [(unit_id, batch, payload, checksum_text(payload.hex()))
                 for unit_id, payload in zip(unit_ids, payloads)])
            added = conn.total_changes - before
            if added:
                self.store.inc_counter(conn, "distrib.units.enqueued", added)
        return unit_ids

    # -- the lease protocol ---------------------------------------------------

    def claim(self, worker: str, batch: Optional[str] = None,
              now: Optional[float] = None) -> Optional[Claim]:
        """Atomically lease the first claimable unit (steal expired leases)."""
        now = time.time() if now is None else now
        claim: Optional[Claim] = None
        with self.store.transaction("claim") as conn:
            where = "WHERE status IN ('pending', 'leased')"
            args: tuple = ()
            if batch is not None:
                where += " AND batch = ?"
                args = (batch,)
            rows = conn.execute(
                f"SELECT unit_id, payload, status, owner, lease_expires, "
                f"attempts, error FROM units {where} ORDER BY unit_id",
                args).fetchall()
            for row in rows:
                stolen = row["status"] == "leased"
                if stolen and row["lease_expires"] > now:
                    continue           # live lease: someone is working on it
                if stolen:
                    self.store.inc_counter(conn, "distrib.lease.expired")
                if row["attempts"] >= self.config.max_attempts:
                    # This unit has burned its leases: poison, not livelock.
                    conn.execute(
                        "UPDATE units SET status = 'quarantined', "
                        "owner = NULL, lease_expires = NULL, error = ? "
                        "WHERE unit_id = ?",
                        (f"{row['attempts']} attempt(s) exhausted without "
                         f"a result" + (f"; {row['error']}" if row["error"]
                                        else ""),
                         row["unit_id"]))
                    self.store.inc_counter(conn, "distrib.units.quarantined")
                    continue
                conn.execute(
                    "UPDATE units SET status = 'leased', owner = ?, "
                    "lease_expires = ?, attempts = attempts + 1 "
                    "WHERE unit_id = ?",
                    (worker, now + self.config.lease_ttl, row["unit_id"]))
                self.store.inc_counter(conn, "distrib.lease.granted")
                if stolen:
                    self.store.inc_counter(conn, "distrib.lease.stolen")
                self.store.record_telemetry(
                    worker, {"last_heartbeat": now, "unit": row["unit_id"]},
                    conn=conn, increments={"claims": 1})
                claim = Claim(unit_id=row["unit_id"], payload=row["payload"],
                              attempt=row["attempts"])
                break
        if claim is not None:
            _obs_inc("distrib.lease.granted")
            # The fault-plan attempt context tracks the unit's lease count,
            # so crash rules armed for ``attempt=0`` kill only the first
            # claimant — the steal then completes, which is what makes
            # chaos campaigns converge to the fault-free result.
            saved = _set_plan_attempt(claim.attempt)
            try:
                fault_check("store.write", token=f"claim:{claim.unit_id}")
            finally:
                if saved is not None:
                    _set_plan_attempt(saved)
        return claim

    def renew(self, claim: Claim, worker: str,
              now: Optional[float] = None) -> bool:
        """Extend the lease; False when it was lost (stolen/completed)."""
        fault_check("lease.renew", token=claim.unit_id)
        now = time.time() if now is None else now
        with self.store.transaction("renew") as conn:
            cursor = conn.execute(
                "UPDATE units SET lease_expires = ? WHERE unit_id = ? "
                "AND owner = ? AND status = 'leased'",
                (now + self.config.lease_ttl, claim.unit_id, worker))
            renewed = cursor.rowcount > 0
            if renewed:
                self.store.inc_counter(conn, "distrib.lease.renewed")
                self.store.record_telemetry(
                    worker, {"last_heartbeat": now, "unit": claim.unit_id},
                    conn=conn, increments={"renewals": 1})
        if renewed:
            _obs_inc("distrib.lease.renewed")
        return renewed

    def complete(self, claim: Claim, worker: str, result: Any) -> bool:
        """Commit the unit's result iff the caller still holds the lease."""
        payload = pickle.dumps(result)
        with self.store.transaction("complete") as conn:
            cursor = conn.execute(
                "UPDATE units SET status = 'done', result = ?, "
                "result_sha = ?, owner = NULL, lease_expires = NULL, "
                "error = NULL WHERE unit_id = ? AND owner = ? "
                "AND status = 'leased'",
                (payload, checksum_text(payload.hex()), claim.unit_id,
                 worker))
            completed = cursor.rowcount > 0
            if completed:
                self.store.inc_counter(conn, "distrib.units.completed")
                self.store.record_telemetry(
                    worker, {"last_heartbeat": time.time(), "unit": None},
                    conn=conn, increments={"completed": 1})
        if completed:
            _obs_inc("distrib.units.completed")
        return completed

    def release(self, claim: Claim, worker: str, error: str) -> None:
        """Return a unit after a recoverable failure (attempt already paid)."""
        with self.store.transaction("release") as conn:
            cursor = conn.execute(
                "UPDATE units SET status = 'pending', owner = NULL, "
                "lease_expires = NULL, error = ? WHERE unit_id = ? "
                "AND owner = ? AND status = 'leased'",
                (error, claim.unit_id, worker))
            if cursor.rowcount > 0:
                self.store.inc_counter(conn, "distrib.units.failed")
                self.store.record_telemetry(
                    worker, {"last_heartbeat": time.time(), "unit": None},
                    conn=conn, increments={"failed": 1})

    # -- batch bookkeeping ----------------------------------------------------

    def batch_remaining(self, batch: str) -> int:
        """Units of *batch* not yet settled (pending or leased)."""
        row = self.store._read("batch.remaining").execute(
            "SELECT COUNT(*) AS n FROM units WHERE batch = ? "
            "AND status IN ('pending', 'leased')", (batch,)).fetchone()
        return row["n"]

    def claimable(self, batch: Optional[str] = None,
                  now: Optional[float] = None) -> int:
        """Units claimable right now (pending, or leased past expiry)."""
        now = time.time() if now is None else now
        where = "WHERE (status = 'pending' OR (status = 'leased' AND " \
                "lease_expires <= ?))"
        args: tuple = (now,)
        if batch is not None:
            where += " AND batch = ?"
            args += (batch,)
        row = self.store._read("claimable").execute(
            f"SELECT COUNT(*) AS n FROM units {where}", args).fetchone()
        return row["n"]

    def collect(self, batch: str, jobs: Sequence[Any],
                unit_ids: Optional[Sequence[str]] = None) -> List[Any]:
        """The batch's outcomes in job order.

        Quarantined units come back as :class:`JobFailure` carrying the
        original job — exactly the supervisor's merge surface.
        """
        if unit_ids is None:
            unit_ids = [f"{batch}/{slot:05d}" for slot in range(len(jobs))]
        rows = {row["unit_id"]: row for row in self.store._read(
            f"collect:{batch}").execute(
            "SELECT unit_id, status, result, attempts, error FROM units "
            "WHERE batch = ?", (batch,)).fetchall()}
        outcomes: List[Any] = []
        for unit_id, job in zip(unit_ids, jobs):
            row = rows.get(unit_id)
            if row is not None and row["status"] == "done":
                outcomes.append(pickle.loads(row["result"]))
            elif row is not None:
                outcomes.append(JobFailure(
                    job=job, error=row["error"] or f"unit {row['unit_id']} "
                    f"unresolved ({row['status']})",
                    attempts=row["attempts"], quarantined=True))
            else:
                outcomes.append(JobFailure(
                    job=job, error=f"unit {unit_id} missing from store",
                    attempts=0, quarantined=True))
        return outcomes


class _Heartbeat(threading.Thread):
    """Renew one claim's lease every ``heartbeat_interval`` until stopped."""

    def __init__(self, queue: WorkQueue, claim: Claim, worker: str):
        super().__init__(daemon=True)
        self.queue = queue
        self.claim = claim
        self.worker = worker
        self.stop = threading.Event()
        self.lost = False

    def run(self) -> None:
        while not self.stop.wait(self.queue.config.heartbeat_interval):
            try:
                fault_check("worker.heartbeat", token=self.claim.unit_id)
                if not self.queue.renew(self.claim, self.worker):
                    self.lost = True   # lease stolen: stop renewing
                    return
            except Exception:
                return                 # store unreachable: let the TTL decide


def _evaluate_claim(queue: WorkQueue, claim: Claim, worker: str,
                    trace_units: bool = False) -> None:
    """Run one claimed unit under heartbeat renewal and commit its result.

    ``trace_units`` wraps the evaluation in a ``distrib.unit`` span tagged
    with the unit id and worker name — the helper's traced mode, which is
    what cross-process stitching keys its per-unit lanes on.  It is an
    explicit flag (not ``tracer().enabled``) so a traced *driver*'s
    artifact keeps its exact historical shape.
    """
    from repro import obs

    saved_attempt = _set_plan_attempt(claim.attempt)
    heartbeat = _Heartbeat(queue, claim, worker)
    heartbeat.start()
    span = (obs.tracer().span("distrib.unit", cat="distrib",
                              unit=claim.unit_id, worker=worker)
            if trace_units else nullcontext())
    try:
        with span:
            spec = pickle.loads(claim.payload)
            try:
                result = spec["function"](spec["job"])
            except faults.InjectedCrash:
                raise
            except Exception as exc:
                heartbeat.stop.set()
                queue.release(claim, worker,
                              f"{type(exc).__name__}: {exc}")
                return
            heartbeat.stop.set()
            queue.complete(claim, worker, result)
    finally:
        heartbeat.stop.set()
        if saved_attempt is not None:
            _set_plan_attempt(saved_attempt)


def _worker_loop(queue: WorkQueue, worker: str, batch: Optional[str],
                 active: Callable[[], bool],
                 trace_units: bool = False) -> int:
    """Claim-evaluate-complete until nothing is left (or *active* is False).

    Exits when the batch has no unsettled units — or, scoped to no batch
    (helper mode), when *active* reports the campaign is over and nothing
    is claimable.  Polls through live foreign leases: if their owner stops
    heartbeating the next claim steals the unit, which is the liveness
    guarantee.
    """
    completed = 0
    while True:
        claim = queue.claim(worker, batch=batch)
        if claim is not None:
            _evaluate_claim(queue, claim, worker, trace_units=trace_units)
            completed += 1
            continue
        if batch is not None:
            if queue.batch_remaining(batch) == 0:
                return completed
        elif not active() and queue.claimable() == 0:
            return completed
        time.sleep(queue.config.poll_interval)


def _pool_worker(spec: dict) -> int:
    """Pool-process entry for one queue worker (mirrors the supervisor's)."""
    plan_spec = spec.get("fault_plan")
    plan = faults.FaultPlan.from_dict(plan_spec) if plan_spec else None
    if plan is not None:
        os.environ[faults._IN_WORKER_ENV] = "1"
    faults.install_plan(plan)
    store = CampaignStore(spec["store_path"])
    queue = WorkQueue(store, DistribConfig(
        store_path=spec["store_path"], lease_ttl=spec["lease_ttl"],
        heartbeat_interval=spec["heartbeat_interval"],
        max_attempts=spec["max_attempts"]))
    try:
        return _worker_loop(queue, spec["worker"], spec["batch"],
                            active=lambda: False)
    finally:
        store.close()


def queue_map(function: Callable[[dict], Any], jobs: Sequence[dict],
              store: CampaignStore, batch: str, config: DistribConfig,
              workers: int = 1, keys: Optional[Sequence[str]] = None) -> List[Any]:
    """Order-preserving map over *jobs* through the work-stealing queue.

    The drop-in replacement for :func:`repro.explore.parallel.map_jobs`
    when a campaign runs against a shared store: any process pointed at the
    store — the pool workers spawned here, a cooperating ``expresso``
    invocation, the driver itself — may evaluate any unit, and the batch
    result is collected in unit-id order regardless, so merges stay
    deterministic.  The driver participates once its pool drains or breaks
    (every worker crashed): campaigns terminate as long as *one* process
    survives, and a unit whose every lease dies is quarantined into a
    :class:`JobFailure` in its slot.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    queue = WorkQueue(store, config)
    driver = f"driver-{os.getpid()}"
    unit_ids = queue.enqueue(
        batch, [pickle.dumps({"function": function, "job": job})
                for job in jobs], keys=keys)
    futures = []
    pool = None
    if workers > 1 and len(jobs) > 1:
        plan = faults.active_plan()
        spec = {"store_path": str(store.path), "batch": batch,
                "lease_ttl": config.lease_ttl,
                "heartbeat_interval": config.heartbeat_interval,
                "max_attempts": config.max_attempts,
                "fault_plan": plan.to_dict() if plan is not None else None}
        store.close()                  # no SQLite handle across the fork
        pool = ProcessPoolExecutor(max_workers=min(workers, len(jobs)))
        futures = [pool.submit(_pool_worker,
                               {**spec, "worker": f"pool-{os.getpid()}-{i}"})
                   for i in range(min(workers, len(jobs)))]
    try:
        while queue.batch_remaining(batch) > 0:
            alive = [future for future in futures if not future.done()]
            if not alive:
                # No pool (workers=1) or every worker exited/crashed: the
                # driver works the queue itself — including stealing from
                # a cooperating process that died mid-lease.
                _worker_loop(queue, driver, batch, active=lambda: False)
                break
            wait(alive, timeout=config.poll_interval)
    finally:
        if pool is not None:
            # A hung worker would block a clean shutdown forever; reap it.
            if any(not future.done() for future in futures):
                _terminate_pool(pool)
            else:
                pool.shutdown(wait=True)
    return queue.collect(batch, jobs, unit_ids=unit_ids)


def run_helper(store_path, config: Optional[DistribConfig] = None,
               worker: Optional[str] = None,
               wait_for_store: float = 0.0,
               trace_units: bool = False) -> int:
    """Work a shared store as a cooperating process; returns units done.

    The second-invocation side of a multi-process campaign: claim any
    claimable unit (any batch), evaluate, complete, repeat — until the
    driver's liveness window (``active_until``, refreshed while the driver
    runs, cleared when it finishes) lapses and the queue drains.  The
    helper never merges or journals: the driver owns every artifact, so
    the final state is byte-identical to a single-process run whatever
    work the helper picked up.  ``wait_for_store`` additionally waits for
    the store file itself, so a helper may be started *before* the driver.
    """
    config = config or DistribConfig(store_path=str(store_path))
    deadline = time.time() + wait_for_store
    while not Path(store_path).exists():
        if time.time() >= deadline:
            return 0
        time.sleep(config.poll_interval)
    store = CampaignStore(store_path)
    queue = WorkQueue(store, config)
    name = worker or f"helper-{os.getpid()}"

    def driver_alive() -> bool:
        until = store.meta_get("active_until")
        return until is not None and until > time.time()

    # Give a driver that has created the store but not yet armed its
    # liveness window the same grace as the store file itself.
    while not driver_alive() and time.time() < deadline:
        if queue.claimable() > 0:
            break
        time.sleep(config.poll_interval)
    try:
        return _worker_loop(queue, name, batch=None, active=driver_alive,
                            trace_units=trace_units)
    finally:
        store.close()


def mark_active(store: CampaignStore, config: DistribConfig) -> None:
    """Refresh the driver's liveness window (helpers exit when it lapses).

    The same transaction refreshes the driver's telemetry heartbeat and
    records the campaign's lease knobs, so ``expresso status`` can classify
    worker health (live/expired/dead) without guessing the TTLs.
    """
    now = time.time()
    with store.transaction("mark_active") as conn:
        store.meta_set("active_until",
                       now + max(5 * config.lease_ttl, 30.0), conn=conn)
        store.meta_set("distrib.lease_ttl", config.lease_ttl, conn=conn)
        store.meta_set("distrib.heartbeat_interval",
                       config.heartbeat_interval, conn=conn)
        store.record_telemetry(f"driver-{os.getpid()}",
                               {"last_heartbeat": now, "role": "driver"},
                               conn=conn)


def mark_finished(store: CampaignStore) -> None:
    """Close the liveness window: cooperating helpers drain and exit."""
    store.meta_set("active_until", 0.0)
