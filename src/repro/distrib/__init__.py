"""Distributed campaign fabric: a crash-safe shared store + work stealing.

``expresso explore/fuzz`` campaigns historically coordinated through
in-process structures only: the cross-worker visited-state memo was a
``multiprocessing.Manager`` dict that died with the driver, and shards were
statically partitioned, so a skewed or killed shard stranded its work.
This package replaces both with two on-disk primitives any number of
*processes* — pool workers and entirely separate invocations pointing at
one ``--store PATH`` — can cooperate through:

* :mod:`repro.distrib.store` — :class:`CampaignStore`, a SQLite-WAL-backed
  store holding visited-state hashes, the fuzz corpus index, coverage maps
  and a checkpointed exploration frontier.  Every row carries a content
  checksum; all multi-row updates are single-writer transactional batches
  (``BEGIN IMMEDIATE``), so a concurrent reader never observes a torn
  snapshot; ``verify()``/``repair()`` are wired into ``expresso fuzz
  --repair``.
* :mod:`repro.distrib.queue` — :class:`WorkQueue`, a lease-based
  work-stealing queue in the same store: workers claim units under TTL
  leases with heartbeat renewal; an expired lease (crashed/hung worker)
  makes the unit claimable again with bounded attempts and
  quarantine-on-repeat, so a poisoned unit becomes an error record instead
  of a livelock.

Fault sites (see :mod:`repro.resilience.faults`): ``store.read`` and
``store.write`` (token = ``"<op>"`` or ``"<op>:<unit id>"``), ``lease.renew``
(token = unit id) and ``worker.heartbeat`` (token = unit id) — every failure
mode above is deterministically injectable.
"""

from repro.distrib.store import CampaignStore, StoreMismatchError, VisitedStore
from repro.distrib.queue import (
    DistribConfig,
    WorkQueue,
    mark_active,
    mark_finished,
    queue_map,
    run_helper,
)

__all__ = [
    "CampaignStore", "StoreMismatchError", "VisitedStore",
    "DistribConfig", "WorkQueue", "mark_active", "mark_finished",
    "queue_map", "run_helper",
]
