"""Cooperative (virtual-thread) versions of the automatic-signal runtimes.

The threaded runtimes in :mod:`repro.runtime.implicit` and
:mod:`repro.runtime.autosynch` block on real condition variables, so their
interleavings belong to the OS scheduler.  The classes here expose the same
``execute`` protocol as *generators* that yield **scheduler operations** at
every synchronization point:

* ``("acquire",)``          — block until the virtual monitor lock is free;
* ``("wait", key)``         — release the lock and sleep on condition *key*;
* ``("signal", key)``       — wake one virtual thread sleeping on *key*;
* ``("broadcast", key)``    — wake every virtual thread sleeping on *key*;
* ``("commit", label)``     — (bookkeeping) the CCR *label* is about to run
  its body; the differential oracle replays commits against the reference
  semantics;
* ``("release",)``          — release the lock at the end of the operation.

:class:`repro.explore.scheduler.CoopScheduler` drives these generators and
decides every scheduling choice, which makes whole executions deterministic,
replayable and enumerable.  The metrics accounting mirrors the threaded
runtimes so the two can be compared under identical schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.runtime.explicit_support import MonitorMetrics

#: A scheduler operation yielded by a cooperative monitor method.
SchedOp = Tuple[str, ...]


class CoopImplicitRuntime:
    """Cooperative broadcast-everything automatic signalling.

    The cooperative twin of :class:`repro.runtime.implicit.ImplicitRuntime`:
    every waiter sleeps on the single condition ``"all"`` and every completed
    operation broadcasts to it.
    """

    _COND = "all"

    def __init__(self, metrics: Optional[MonitorMetrics] = None):
        self.metrics = metrics or MonitorMetrics()

    def execute(self, guard: Callable[[], bool], body: Callable[[], None],
                label: Optional[str] = None) -> Iterator[SchedOp]:
        """Run ``waituntil (guard) { body }`` cooperatively."""
        yield ("acquire",)
        self.metrics.operations += 1
        self.metrics.predicate_evaluations += 1
        satisfied = guard()
        while not satisfied:
            self.metrics.waits += 1
            yield ("wait", self._COND)
            self.metrics.wakeups += 1
            self.metrics.predicate_evaluations += 1
            satisfied = guard()
            if not satisfied:
                self.metrics.spurious_wakeups += 1
        yield ("commit", label or "?")
        body()
        self.metrics.broadcasts += 1
        yield ("broadcast", self._COND)
        yield ("release",)


@dataclass
class _CoopWaiter:
    predicate: Callable[[], bool]
    admitted: bool = False


class CoopAutoSynchRuntime:
    """Cooperative AutoSynch-style predicate-tagged signalling.

    The cooperative twin of :class:`repro.runtime.autosynch.AutoSynchRuntime`:
    each waiter sleeps on a private condition key; on every monitor exit the
    leaving thread evaluates the waiting predicates and relays a wake-up to
    the first satisfied waiter.
    """

    def __init__(self, metrics: Optional[MonitorMetrics] = None):
        self.metrics = metrics or MonitorMetrics()
        self._waiters: Dict[str, _CoopWaiter] = {}
        self._counter = 0

    def execute(self, guard: Callable[[], bool], body: Callable[[], None],
                label: Optional[str] = None) -> Iterator[SchedOp]:
        """Run ``waituntil (guard) { body }`` cooperatively."""
        yield ("acquire",)
        self.metrics.operations += 1
        self.metrics.predicate_evaluations += 1
        if not guard():
            key = f"waiter{self._counter}"
            self._counter += 1
            waiter = _CoopWaiter(guard)
            self._waiters[key] = waiter
            self.metrics.waits += 1
            while True:
                while not waiter.admitted:
                    yield ("wait", key)
                    self.metrics.wakeups += 1
                self.metrics.predicate_evaluations += 1
                if guard():
                    break
                # Admitted but invalidated in between: relay and re-sleep.
                waiter.admitted = False
                self.metrics.spurious_wakeups += 1
                yield from self._notify_satisfied()
            del self._waiters[key]
        yield ("commit", label or "?")
        body()
        yield from self._notify_satisfied()
        yield ("release",)

    def _notify_satisfied(self) -> Iterator[SchedOp]:
        """Relay one wake-up to the first waiter whose predicate holds."""
        for key, waiter in self._waiters.items():
            if waiter.admitted:
                continue
            self.metrics.predicate_evaluations += 1
            if waiter.predicate():
                waiter.admitted = True
                self.metrics.signals += 1
                yield ("signal", key)
                return
