"""An AutoSynch-style automatic-signal runtime (Hung & Garg, PLDI'13).

AutoSynch removes spurious wake-ups from implicit-signal monitors by tagging
each waiting thread with its predicate (with thread-local values snapshotted
as run-time constants) and, on every monitor exit, evaluating the waiting
predicates to decide exactly which threads to wake.  The cost model is the
relevant part for the paper's comparison: no spurious wake-ups, but every
monitor exit pays run-time predicate evaluations proportional to the number
of waiters, plus the bookkeeping of the waiter structures.

This class reproduces that behaviour with per-waiter condition variables:
``execute`` blocks the caller until its predicate holds and, after running
the body, wakes precisely the waiters whose predicates now hold.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.runtime.explicit_support import MonitorMetrics


@dataclass
class _Waiter:
    predicate: Callable[[], bool]
    condition: threading.Condition
    admitted: bool = False


class AutoSynchRuntime:
    """Predicate-tagged automatic signalling."""

    def __init__(self, metrics: Optional[MonitorMetrics] = None):
        self.lock = threading.Lock()
        self.metrics = metrics or MonitorMetrics()
        self._waiters: List[_Waiter] = []

    def execute(self, guard: Callable[[], bool], body: Callable[[], None]) -> None:
        """Run ``waituntil (guard) { body }`` with AutoSynch-style signalling."""
        with self.lock:
            self.metrics.operations += 1
            self.metrics.predicate_evaluations += 1
            if not guard():
                waiter = _Waiter(guard, threading.Condition(self.lock))
                self._waiters.append(waiter)
                self.metrics.waits += 1
                while True:
                    while not waiter.admitted:
                        waiter.condition.wait()
                        self.metrics.wakeups += 1
                    # The predicate held when we were admitted, but another
                    # thread may have entered the monitor in between; re-check
                    # and go back to sleep in the (rare) invalidation case.
                    self.metrics.predicate_evaluations += 1
                    if guard():
                        break
                    waiter.admitted = False
                    self.metrics.spurious_wakeups += 1
                    # Keep the relay alive: pass the wake-up on before sleeping.
                    self._notify_satisfied_waiters()
                self._waiters.remove(waiter)
            body()
            self._notify_satisfied_waiters()

    def _notify_satisfied_waiters(self) -> None:
        """Evaluate waiting predicates and relay a wake-up to the first satisfied one.

        AutoSynch's relay design wakes a single satisfied waiter per monitor
        exit; when that waiter finishes its own critical region, this method
        runs again and relays to the next satisfied waiter, so every thread
        whose predicate stays true is eventually admitted without spurious
        wake-ups.
        """
        for waiter in self._waiters:
            if waiter.admitted:
                continue
            self.metrics.predicate_evaluations += 1
            if waiter.predicate():
                waiter.admitted = True
                self.metrics.signals += 1
                waiter.condition.notify()
                return
