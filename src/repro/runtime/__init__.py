"""Executable monitor runtimes.

The evaluation compares three signalling disciplines on the same monitor
logic (paper §7):

* **Explicit** — condition variables with statically placed signals; both the
  Expresso-generated and the hand-written monitors use this runtime.  The
  support classes here provide the waiter-snapshot table of §6 for guards
  that mention thread-local variables.
* **AutoSynch-style** — :class:`~repro.runtime.autosynch.AutoSynchRuntime`,
  a predicate-tagging automatic-signal runtime: no spurious wake-ups, but the
  exiting thread evaluates the waiting predicates at run time.
* **Naive implicit** — :class:`~repro.runtime.implicit.ImplicitRuntime`,
  broadcast-everything automatic signalling (the classic baseline the paper
  cites as 10-50x slower than explicit signals).
"""

from repro.runtime.explicit_support import GuardWaiters, MonitorMetrics
from repro.runtime.autosynch import AutoSynchRuntime
from repro.runtime.coop import CoopAutoSynchRuntime, CoopImplicitRuntime
from repro.runtime.implicit import ImplicitRuntime

__all__ = [
    "GuardWaiters", "MonitorMetrics", "AutoSynchRuntime", "ImplicitRuntime",
    "CoopAutoSynchRuntime", "CoopImplicitRuntime",
]
