"""Support classes for generated explicit-signal monitors.

:class:`GuardWaiters` is the run-time data structure of paper §6
("Instrumentation for predicates with local variables"): it tracks, for one
waited-on guard, the thread-local variable snapshots of every blocked thread,
so that a signalling thread can decide whether a *conditional* notification
should fire even though the predicate mentions variables it cannot see.

:class:`MonitorMetrics` counts the events the evaluation cares about
(wake-ups, spurious wake-ups, run-time predicate evaluations, signals and
broadcasts); the saturation harness reads it after each run.
"""

from __future__ import annotations

import threading
from dataclasses import MISSING, dataclass, field, fields
from typing import Callable, Dict, List, Optional


@dataclass
class MonitorMetrics:
    """Counters shared by all runtimes; thread-safe under the monitor lock."""

    operations: int = 0
    waits: int = 0
    wakeups: int = 0
    spurious_wakeups: int = 0
    signals: int = 0
    broadcasts: int = 0
    predicate_evaluations: int = 0

    # snapshot/reset are derived from the dataclass fields so that adding a
    # counter can never desynchronize them.

    def snapshot(self) -> Dict[str, int]:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    def reset(self) -> None:
        for spec in fields(self):
            if spec.default is not MISSING:
                value = spec.default
            elif spec.default_factory is not MISSING:
                value = spec.default_factory()
            else:
                value = 0
            setattr(self, spec.name, value)


class GuardWaiters:
    """Waiter-snapshot registry for one guard with thread-local variables.

    Blocked threads register their local-variable snapshot before waiting and
    deregister after being admitted; a signalling thread asks
    :meth:`any_satisfied` whether at least one registered snapshot satisfies
    the guard in the current shared state.  All calls must hold the monitor
    lock (the generated code guarantees this).
    """

    def __init__(self) -> None:
        self._snapshots: List[Dict[str, object]] = []

    def register(self, snapshot: Dict[str, object]) -> Dict[str, object]:
        self._snapshots.append(snapshot)
        return snapshot

    def deregister(self, snapshot: Dict[str, object]) -> None:
        try:
            self._snapshots.remove(snapshot)
        except ValueError:  # already removed (defensive; should not happen)
            pass

    def any_satisfied(self, predicate: Callable[[Dict[str, object]], bool],
                      metrics: Optional[MonitorMetrics] = None) -> bool:
        """True when some registered waiter's snapshot satisfies *predicate*."""
        for snapshot in self._snapshots:
            if metrics is not None:
                metrics.predicate_evaluations += 1
            if predicate(snapshot):
                return True
        return False

    def __len__(self) -> int:
        return len(self._snapshots)
