"""The naive implicit-signal (automatic monitor) runtime.

Every monitor operation acquires the single monitor lock, waits on one global
condition variable until its guard holds, runs its body, and then broadcasts
to *everyone* — the textbook automatic-monitor implementation whose overhead
(spurious wake-ups and context switches) motivates the paper.  It serves as
the worst-case baseline in the ablation benchmarks.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.runtime.explicit_support import MonitorMetrics


class ImplicitRuntime:
    """Broadcast-everything automatic signalling."""

    def __init__(self, metrics: Optional[MonitorMetrics] = None):
        self.lock = threading.Lock()
        self._condition = threading.Condition(self.lock)
        self.metrics = metrics or MonitorMetrics()

    def execute(self, guard: Callable[[], bool], body: Callable[[], None]) -> None:
        """Run ``waituntil (guard) { body }`` with implicit signalling."""
        with self._condition:
            self.metrics.operations += 1
            self.metrics.predicate_evaluations += 1
            satisfied = guard()
            while not satisfied:
                self.metrics.waits += 1
                self._condition.wait()
                self.metrics.wakeups += 1
                self.metrics.predicate_evaluations += 1
                satisfied = guard()
                if not satisfied:
                    self.metrics.spurious_wakeups += 1
            body()
            self.metrics.broadcasts += 1
            self._condition.notify_all()
