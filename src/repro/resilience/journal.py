"""A write-ahead journal with per-record checksums and torn-tail rollback.

The journal is an append-only file of newline-delimited JSON frames::

    {"record": {...}, "sha": "<blake2b-128 of the record's canonical JSON>"}

Appends are flushed and fsync'd, so once :meth:`Journal.append` returns the
record survives a crash.  A crash *during* an append can leave one torn
frame — half a line, or a full line whose checksum does not match — but
only at the tail: :meth:`Journal.replay` validates frames in order and
stops at the first bad one, so recovery is always "the longest valid
prefix".  :meth:`Journal.truncate_to_valid` rewrites the file to exactly
that prefix (atomically), which is what ``expresso fuzz --repair`` and the
``--resume`` path use to roll a corpus back to its last good record.

Fault sites: ``journal.append`` (token = the record's ``type`` field).  A
``crash`` action before the write models dying between state-file writes
and the commit record; tests also simulate *torn* appends by truncating the
file mid-frame — replay must degrade identically in both cases.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.resilience.atomic import atomic_write_text, checksum_payload
from repro.resilience.faults import fault_check


@dataclass
class JournalReplay:
    """The outcome of replaying a journal file."""

    records: List[Dict[str, Any]]
    #: Number of bytes holding the valid prefix (truncation point).
    valid_bytes: int
    #: True when a torn/corrupt frame was found after the valid prefix.
    torn: bool

    @property
    def last(self) -> Optional[Dict[str, Any]]:
        return self.records[-1] if self.records else None


class Journal:
    """Append-only, checksummed, crash-recoverable record log."""

    def __init__(self, path: Path):
        self.path = Path(path)
        #: Checksum of the last appended/replayed record (None = not known
        #: yet); lets :meth:`append_if_changed` stay O(1) per call.
        self._last_sha: Optional[str] = None

    def exists(self) -> bool:
        return self.path.exists()

    # -- writing -------------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record (flush + fsync before returning)."""
        sha = checksum_payload(record)
        fault_check("journal.append", token=str(record.get("type", "?")))
        frame = json.dumps({"record": record, "sha": sha}, sort_keys=True)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(frame + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._last_sha = sha

    def append_if_changed(self, record: Dict[str, Any]) -> bool:
        """Append unless *record* equals the journal's current last record.

        Keeps re-runs idempotent: resuming an already-finished campaign (or
        finalizing right after a round checkpoint) must not grow the journal
        — byte-identical trees are the resume-equivalence contract.
        """
        sha = checksum_payload(record)
        if self._last_sha is None and self.path.exists():
            records = self.replay().records
            self._last_sha = (checksum_payload(records[-1]) if records
                              else "")
        if sha == self._last_sha:
            return False
        self.append(record)
        return True

    # -- recovery ------------------------------------------------------------

    def replay(self) -> JournalReplay:
        """Validate frames in order; stop at the first torn/corrupt one."""
        if not self.path.exists():
            return JournalReplay(records=[], valid_bytes=0, torn=False)
        raw = self.path.read_bytes()
        records: List[Dict[str, Any]] = []
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline == -1:
                return JournalReplay(records, offset, torn=True)
            line = raw[offset:newline]
            try:
                frame = json.loads(line.decode("utf-8"))
                record = frame["record"]
                if frame["sha"] != checksum_payload(record):
                    return JournalReplay(records, offset, torn=True)
            except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                return JournalReplay(records, offset, torn=True)
            records.append(record)
            offset = newline + 1
        return JournalReplay(records, offset, torn=False)

    def truncate_to_valid(self) -> JournalReplay:
        """Atomically rewrite the journal to its longest valid prefix."""
        replay = self.replay()
        if replay.torn:
            raw = self.path.read_bytes()[:replay.valid_bytes]
            atomic_write_text(self.path, raw.decode("utf-8"))
        self._last_sha = (checksum_payload(replay.records[-1])
                          if replay.records else "")
        return replay
