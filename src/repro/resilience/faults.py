"""Deterministic fault injection at named sites (``FaultPlan``).

Every robustness mechanism in this repository — supervised workers,
journaled campaign state, solver degradation — is tested byte-for-byte by
replaying the *same* faults at the *same* points.  Wall-clock chaos (kill a
random worker, pull the plug mid-write) cannot do that, so instrumented code
declares **named fault sites** instead::

    fault_check("journal.append", token=record_type)
    fault_check("worker.job", token=entry_id)
    fault_check("disk.write", token=path.name)

The distributed campaign fabric (:mod:`repro.distrib`) adds four sites:
``store.read`` and ``store.write`` fire before every shared-store read /
write transaction (token = the operation, e.g. ``"claim"``,
``"enqueue:boot"``; additionally ``store.write`` fires with token
``"claim:<unit id>"`` right *after* a lease commits — a crash there is a
worker dying while holding a live lease), ``lease.renew`` and
``worker.heartbeat`` fire in the lease-renewal path (token = unit id), so
every failure mode of the lease protocol — torn store, mid-lease death,
missed heartbeat — is deterministically injectable.  During claim-boundary
checks and unit evaluation the plan's ``attempt`` context is the unit's
prior lease count, so default ``attempt=0`` rules kill only the first
claimant and steals/retries converge to the fault-free result.

and a :class:`FaultPlan` — a list of :class:`FaultRule` — decides, purely
from the site name, the token, and a per-site occurrence counter, whether
anything fires there.  With no plan installed every check is one module
attribute read; production code never pays for the machinery.

Actions
-------

``crash``
    Raise :class:`InjectedCrash` (a ``BaseException``, so ordinary
    ``except Exception`` recovery code cannot accidentally swallow it — the
    process state is exactly what a ``kill -9`` at that point would leave,
    minus already-flushed writes).  In pool workers the crash is escalated
    to ``os._exit`` so the driver sees a genuine ``BrokenProcessPool``.
``hang``
    Sleep for ``seconds`` (default far past any deadline) — exercises the
    supervisor's hang detection.
``error``
    Raise :class:`InjectedFault` (an ``OSError`` subclass) — a recoverable
    I/O failure at disk-write sites.
``unknown``
    Only meaningful at ``solver.query``: the solver returns UNKNOWN as if
    the per-query budget had expired, driving the degradation paths.

Determinism
-----------

Occurrence counters are **per process**.  A rule with ``at=(k, ...)`` fires
at the k-th check of its site in the process that reaches it — exact for
driver-side sites and for ``workers=1`` campaigns.  For pool workers,
prefer ``match`` (substring of the token, e.g. an entry id): firing is then
decided by *what* is being processed, never by scheduling.  ``attempt``
restricts a rule to the n-th supervised attempt of a job (default: first
attempt only — a retried job is not re-killed, which is what lets chaos
campaigns converge to the fault-free result).
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Environment variable naming a JSON fault-plan file.  Pool workers inherit
#: the parent's environment, so ``expresso ... --fault-plan FILE`` reaches
#: every process of a campaign without any explicit plumbing.
PLAN_ENV = "EXPRESSO_FAULT_PLAN"

_ACTIONS = ("crash", "hang", "error", "unknown")


class InjectedFault(OSError):
    """A recoverable injected failure (disk write refused, etc.)."""


class InjectedCrash(BaseException):
    """An injected process death.

    Derives from ``BaseException`` so recovery code written for real
    failures (``except Exception``) cannot swallow it: everything between
    the fault site and the test harness unwinds, exactly like a kill.
    """


@dataclass(frozen=True)
class FaultRule:
    """One deterministic trigger: fire *action* at *site*.

    ``at`` — per-site occurrence indices (0-based) at which to fire; empty
    means every occurrence.  ``match`` — substring the site token must
    contain (the occurrence counter then counts matching checks only).
    ``attempt`` — supervised-attempt number this rule is armed for
    (``None`` = any attempt; default 0 = first attempt only for crash/hang,
    so retries succeed).
    """

    site: str
    action: str = "crash"
    at: Tuple[int, ...] = ()
    match: Optional[str] = None
    attempt: Optional[int] = 0
    seconds: float = 3600.0        # hang duration

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; "
                             f"expected one of {_ACTIONS}")

    def to_dict(self) -> dict:
        return {"site": self.site, "action": self.action,
                "at": list(self.at), "match": self.match,
                "attempt": self.attempt, "seconds": self.seconds}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        return cls(site=data["site"], action=data.get("action", "crash"),
                   at=tuple(data.get("at", ())), match=data.get("match"),
                   attempt=data.get("attempt", 0),
                   seconds=data.get("seconds", 3600.0))


@dataclass
class FaultPlan:
    """A deterministic set of fault rules plus per-site occurrence state."""

    rules: Tuple[FaultRule, ...] = ()
    #: Occurrence counters, keyed by (site, rule index) so two rules on one
    #: site with different ``match`` filters count independently.
    _counters: Dict[Tuple[str, int], int] = field(default_factory=dict)
    #: The supervised-attempt context (set by the worker wrapper).
    attempt: int = 0
    #: Fired-rule log (site, token, action) — inspectable by tests.
    fired: List[Tuple[str, Optional[str], str]] = field(default_factory=list)

    def __init__(self, rules: Sequence[FaultRule] = ()):  # keep ctor simple
        self.rules = tuple(rules)
        self._counters = {}
        self.attempt = 0
        self.fired = []

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {"rules": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls([FaultRule.from_dict(rule) for rule in data.get("rules", ())])

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))

    # -- the hot check -------------------------------------------------------

    def check(self, site: str, token: Optional[str] = None) -> Optional[str]:
        """Fire any armed rule for *site*; return a non-raising action name.

        Raises :class:`InjectedCrash` / :class:`InjectedFault`, sleeps for
        hangs, and returns ``"unknown"`` for solver-budget injection (the
        only action the *call site* must act on).
        """
        for index, rule in enumerate(self.rules):
            if rule.site != site:
                continue
            if rule.match is not None and (token is None
                                           or rule.match not in token):
                continue
            key = (site, index)
            occurrence = self._counters.get(key, 0)
            self._counters[key] = occurrence + 1
            if rule.at and occurrence not in rule.at:
                continue
            if rule.attempt is not None and rule.attempt != self.attempt:
                continue
            self.fired.append((site, token, rule.action))
            if rule.action == "crash":
                if os.environ.get(_IN_WORKER_ENV):
                    os._exit(83)   # a genuine worker death: no unwinding
                raise InjectedCrash(f"injected crash at {site}"
                                    + (f" [{token}]" if token else ""))
            if rule.action == "hang":
                time.sleep(rule.seconds)
                return None
            if rule.action == "error":
                raise InjectedFault(f"injected I/O failure at {site}"
                                    + (f" [{token}]" if token else ""))
            return rule.action    # "unknown"
        return None


# ---------------------------------------------------------------------------
# Installation
# ---------------------------------------------------------------------------

_PLAN: Optional[FaultPlan] = None
_ENV_CHECKED = False
#: Set in supervised pool workers so ``crash`` becomes ``os._exit``.
_IN_WORKER_ENV = "EXPRESSO_FAULT_IN_WORKER"


def install_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install *plan* process-wide; returns the previously installed plan."""
    global _PLAN, _ENV_CHECKED
    previous = _PLAN
    _PLAN = plan
    _ENV_CHECKED = True           # an explicit install overrides the env var
    return previous


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, lazily loading ``$EXPRESSO_FAULT_PLAN`` once."""
    global _PLAN, _ENV_CHECKED
    if _PLAN is None and not _ENV_CHECKED:
        _ENV_CHECKED = True
        path = os.environ.get(PLAN_ENV)
        if path:
            try:
                _PLAN = FaultPlan.from_file(path)
            except (OSError, ValueError):
                _PLAN = None      # a broken plan file must not break the run
    return _PLAN


def fault_check(site: str, token: Optional[str] = None) -> Optional[str]:
    """The one-line hook instrumented code calls at a named fault site."""
    plan = active_plan()
    if plan is None:
        return None
    return plan.check(site, token)


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install *plan* for the duration of a ``with`` block (tests)."""
    previous = install_plan(plan)
    try:
        yield plan
    finally:
        install_plan(previous)
