"""Resilience: crash-safe state, worker supervision, fault injection.

The campaign layer (``expresso explore/fuzz/mutate``) is built to run
unattended at scale, which means three failure families must become
*per-job events* instead of campaign aborts:

* **process failures** — a worker killed by the OS (OOM, signal) breaks the
  whole ``ProcessPoolExecutor``; :mod:`repro.resilience.supervisor` turns
  that into a per-job error with bounded retry, per-job wall-clock
  deadlines (hang detection), and poison-job quarantine;
* **torn state** — a crash mid-write leaves a half-written JSON file;
  :mod:`repro.resilience.atomic` writes atomically (tmp + fsync +
  ``os.replace``) and :mod:`repro.resilience.journal` provides a
  write-ahead journal with per-record checksums so campaign state always
  rolls back to the last good record;
* **pathological queries** — one SMT query that never terminates hangs the
  pipeline; ``Solver(timeout_seconds=...)`` returns UNKNOWN instead and
  every caller degrades in the sound direction (see
  ``README.md#robustness--resume``).

All of it is testable byte-for-byte through
:class:`~repro.resilience.faults.FaultPlan` — deterministic, seeded
injection of crashes, hangs, solver timeouts, and disk-write failures at
named sites.
"""

from repro.resilience.atomic import (
    atomic_write_json,
    atomic_write_text,
    checksum_payload,
    checksum_text,
)
from repro.resilience.faults import (
    FaultPlan,
    FaultRule,
    InjectedCrash,
    InjectedFault,
    active_plan,
    fault_check,
    injected,
    install_plan,
)
from repro.resilience.journal import Journal, JournalReplay
from repro.resilience.supervisor import (
    JobFailure,
    SupervisorConfig,
    run_supervised,
)

__all__ = [
    "FaultPlan", "FaultRule", "InjectedCrash", "InjectedFault",
    "active_plan", "fault_check", "injected", "install_plan",
    "atomic_write_json", "atomic_write_text",
    "checksum_payload", "checksum_text",
    "Journal", "JournalReplay",
    "JobFailure", "SupervisorConfig", "run_supervised",
]
