"""Atomic, fsync'd file writes (crash-safe state files).

``path.write_text`` can tear: a crash between the truncate and the final
flush leaves a half-written file, and a half-written ``coverage.json`` used
to kill the next campaign.  :func:`atomic_write_text` writes to a temporary
sibling, flushes it to disk, then ``os.replace``\\ s it over the target —
POSIX rename atomicity guarantees every reader sees either the complete old
content or the complete new content, never a mixture.  The containing
directory is fsync'd afterwards so the rename itself survives power loss.

Fault sites (see :mod:`repro.resilience.faults`):

* ``disk.write`` (token = file name) — checked *before* the temporary file
  is created: an ``error`` action models a full/broken disk, a ``crash``
  models dying before any bytes reach the target;
* ``disk.replace`` (token = file name) — checked between writing the
  temporary file and renaming it: a ``crash`` here leaves a stale ``.tmp``
  sibling and the *old* target intact, the exact torn-window the atomic
  protocol exists to close.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from repro.resilience.faults import fault_check


def atomic_write_text(path: Path, text: str) -> None:
    """Write *text* to *path* atomically (tmp + fsync + ``os.replace``)."""
    path = Path(path)
    fault_check("disk.write", token=path.name)
    tmp = path.with_name(path.name + ".tmp")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        fault_check("disk.replace", token=path.name)
        os.replace(tmp, path)
    except BaseException:
        # Best-effort cleanup; an InjectedCrash deliberately skips it so the
        # stale .tmp survives like it would after a real kill.
        if not _crashing():
            try:
                os.unlink(tmp)
            except OSError:
                pass
        raise
    _fsync_dir(path.parent)


def atomic_write_json(path: Path, payload: Any) -> None:
    """Serialize *payload* (sorted keys, trailing newline) atomically."""
    atomic_write_text(Path(path),
                      json.dumps(payload, indent=2, sort_keys=True) + "\n")


def checksum_text(text: str) -> str:
    """Stable 128-bit content checksum (journal records, state validation)."""
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


def checksum_payload(payload: Any) -> str:
    """Checksum of a JSON payload's canonical serialization."""
    return checksum_text(json.dumps(payload, sort_keys=True))


def _crashing() -> bool:
    """True while an InjectedCrash is unwinding (keep the crash faithful)."""
    import sys

    from repro.resilience.faults import InjectedCrash

    return isinstance(sys.exc_info()[1], InjectedCrash)


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return                     # e.g. platforms without dir fds
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
