"""Worker supervision: deadlines, hang detection, retry, quarantine.

``ProcessPoolExecutor`` has a brutal failure mode: one worker dying (OOM
kill, segfault, injected ``os._exit``) breaks the *pool* — every pending
future raises ``BrokenProcessPool`` and a naive ``pool.map`` campaign loses
all completed work.  :func:`run_supervised` turns process failures into
per-job events:

1. **optimistic phase** — jobs run in waves of ``workers`` on one pool;
   completed results are kept whatever happens later;
2. **blame isolation** — jobs that failed with a *pool-level* error (broken
   pool, deadline expiry) cannot be attributed exactly while concurrent, so
   they are retried **serially**, one job per fresh pool: the job that
   breaks its own private pool is the poison one;
3. **bounded retry with exponential backoff** — each failed job is retried
   up to ``max_attempts`` times (sleep ``backoff_seconds * 2**attempt``
   between attempts, injectable for tests);
4. **quarantine** — a job still failing after its attempts is returned as
   :class:`JobFailure` (with the offending job dict and error) instead of
   aborting the campaign.

Hang detection: with ``deadline_seconds`` set, a wave that has not finished
by its deadline is abandoned — the pool is shut down, its processes
terminated, and the unfinished jobs treated as failed attempts.  A hung SMT
query or a livelocked worker thus costs one deadline, not the campaign.

Supervised workers run under a **fault context**: the driver's installed
:class:`~repro.resilience.faults.FaultPlan` is shipped to the worker and
re-installed with the job's attempt number, so crash/hang rules armed for
``attempt=0`` do not re-fire on the retry — which is exactly what lets a
chaos campaign converge to the fault-free result.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.resilience import faults


@dataclass
class SupervisorConfig:
    """Supervision knobs (deterministic except for wall-clock deadlines)."""

    workers: Optional[int] = None
    #: Per-wave wall-clock budget; ``None`` disables hang detection.
    deadline_seconds: Optional[float] = None
    #: Total attempts per job before quarantine.
    max_attempts: int = 3
    #: Base of the exponential retry backoff (seconds).
    backoff_seconds: float = 0.05
    #: Injectable sleep, so tests assert backoff without waiting it out.
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)


@dataclass
class JobFailure:
    """A job the supervisor gave up on — returned in place of its result."""

    job: Any
    error: str
    attempts: int
    quarantined: bool = False

    def error_dict(self, **extra: Any) -> Dict[str, Any]:
        """The failure as an outcome-shaped dict (campaign merge surface)."""
        return {"error": f"worker: {self.error}",
                "attempts": self.attempts,
                "quarantined": self.quarantined, **extra}


def _shipped_plan() -> Optional[dict]:
    plan = faults.active_plan()
    return plan.to_dict() if plan is not None else None


def _supervised_entry(payload: dict) -> Any:
    """Pool-process entry: install the fault context, then run the job."""
    plan_spec = payload.get("fault_plan")
    plan = faults.FaultPlan.from_dict(plan_spec) if plan_spec else None
    if plan is not None:
        plan.attempt = payload.get("attempt", 0)
        os.environ[faults._IN_WORKER_ENV] = "1"
    # Explicit install either way: fork-started workers inherit the driver's
    # plan object, and driver-side rules must not fire in workers.
    faults.install_plan(plan)
    return payload["function"](payload["job"])


def _run_local(function: Callable[[Any], Any], job: Any, attempt: int) -> Any:
    """One in-process attempt under the job's fault-attempt context."""
    plan = faults.active_plan()
    if plan is None:
        return function(job)
    saved = plan.attempt
    plan.attempt = attempt
    try:
        return function(job)
    finally:
        plan.attempt = saved


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Abandon a pool with a hung or dead worker without joining the hang."""
    # Private attribute, but the only way to reap a genuinely hung worker:
    # shutdown(wait=True) would block on it forever and shutdown(wait=False)
    # would leak it past interpreter exit.
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.terminate()
        except OSError:
            pass
    pool.shutdown(wait=True, cancel_futures=True)


class _Pending:
    __slots__ = ("index", "attempts", "errors")

    def __init__(self, index: int):
        self.index = index
        self.attempts = 0
        self.errors: List[str] = []


def run_supervised(function: Callable[[Any], Any], jobs: Sequence[Any],
                   config: Optional[SupervisorConfig] = None) -> List[Any]:
    """Map *function* over *jobs* with supervision; order-preserving.

    Returns one entry per job: the function's result, or a
    :class:`JobFailure` for jobs that exhausted their attempts.  Failures
    never cost sibling jobs their completed results.
    """
    config = config or SupervisorConfig()
    jobs = list(jobs)
    workers = config.workers or (os.cpu_count() or 2)
    results: List[Any] = [None] * len(jobs)
    done: List[bool] = [False] * len(jobs)
    pending = [_Pending(index) for index in range(len(jobs))]

    if workers <= 1 or len(jobs) <= 1:
        return _run_supervised_local(function, jobs, pending, results, config)

    plan_spec = _shipped_plan()

    def payload(item: _Pending) -> dict:
        return {"function": function, "job": jobs[item.index],
                "attempt": item.attempts, "fault_plan": plan_spec}

    # -- phase 1: optimistic waves on one shared pool -------------------------
    suspects: List[_Pending] = []
    pool = ProcessPoolExecutor(max_workers=min(workers, len(jobs)))
    pool_broken = False
    try:
        for start in range(0, len(pending), workers):
            if pool_broken:
                suspects.extend(pending[start:])
                break
            wave = pending[start:start + workers]
            futures = {pool.submit(_supervised_entry, payload(item)): item
                       for item in wave}
            deadline = (time.monotonic() + config.deadline_seconds
                        if config.deadline_seconds is not None else None)
            not_done = set(futures)
            while not_done:
                timeout = None
                if deadline is not None:
                    timeout = max(deadline - time.monotonic(), 0.0)
                finished, not_done = wait(not_done, timeout=timeout,
                                          return_when=FIRST_COMPLETED)
                for future in finished:
                    item = futures[future]
                    try:
                        results[item.index] = future.result()
                        done[item.index] = True
                    except BrokenProcessPool:
                        item.errors.append("process pool broken "
                                           "(worker died)")
                        item.attempts += 1
                        suspects.append(item)
                        pool_broken = True
                    except Exception as exc:
                        item.errors.append(f"{type(exc).__name__}: {exc}")
                        item.attempts += 1
                        suspects.append(item)
                if pool_broken:
                    for future in not_done:
                        item = futures[future]
                        item.errors.append("process pool broken (sibling "
                                           "worker died)")
                        item.attempts += 1
                        suspects.append(item)
                    break
                if not finished and not_done:
                    # Deadline expired with workers still running: hang.
                    for future in not_done:
                        item = futures[future]
                        item.errors.append(
                            f"deadline ({config.deadline_seconds}s) expired")
                        item.attempts += 1
                        suspects.append(item)
                    pool_broken = True
                    break
    finally:
        if pool_broken:
            _terminate_pool(pool)
        else:
            pool.shutdown(wait=True)

    # -- phase 2: serial blame isolation with bounded retry -------------------
    for item in sorted(suspects, key=lambda item: item.index):
        quarantined = False
        while not done[item.index] and item.attempts < config.max_attempts:
            config.sleep(config.backoff_seconds * (2 ** (item.attempts - 1)))
            solo = ProcessPoolExecutor(max_workers=1)
            solo_broken = False
            try:
                future = solo.submit(_supervised_entry, payload(item))
                try:
                    result = future.result(timeout=config.deadline_seconds)
                    results[item.index] = result
                    done[item.index] = True
                except BrokenProcessPool:
                    item.errors.append("worker died (isolated retry)")
                    item.attempts += 1
                    quarantined = True
                    solo_broken = True
                except FuturesTimeout:
                    item.errors.append(
                        f"hung past deadline ({config.deadline_seconds}s, "
                        f"isolated retry)")
                    item.attempts += 1
                    quarantined = True
                    solo_broken = True
                except Exception as exc:
                    item.errors.append(f"{type(exc).__name__}: {exc}")
                    item.attempts += 1
            finally:
                if solo_broken:
                    _terminate_pool(solo)
                else:
                    solo.shutdown(wait=True)
        if not done[item.index]:
            results[item.index] = JobFailure(
                job=jobs[item.index], error="; ".join(item.errors),
                attempts=item.attempts, quarantined=quarantined)
            done[item.index] = True
    return results


def _run_supervised_local(function: Callable[[Any], Any], jobs: List[Any],
                          pending: List[_Pending], results: List[Any],
                          config: SupervisorConfig) -> List[Any]:
    """The in-process path: same retry/quarantine contract, no deadlines.

    (A hang cannot be pre-empted in-process; callers wanting hang detection
    must run with ``workers >= 2``.  Injected crashes are ``BaseException``
    and propagate — in-process, a crash *is* a driver crash.)
    """
    for item in pending:
        while item.attempts < config.max_attempts:
            if item.attempts > 0:
                config.sleep(config.backoff_seconds
                             * (2 ** (item.attempts - 1)))
            try:
                results[item.index] = _run_local(function, jobs[item.index],
                                                 item.attempts)
                break
            except Exception as exc:
                item.errors.append(f"{type(exc).__name__}: {exc}")
                item.attempts += 1
        else:
            results[item.index] = JobFailure(
                job=jobs[item.index], error="; ".join(item.errors),
                attempts=item.attempts)
    return results
