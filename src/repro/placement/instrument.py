"""Instrumentation of the source monitor with placed notifications (Fig. 7).

Given the implicit-signal monitor and the mapping Σ computed by
:func:`repro.placement.algorithm.place_signals`, instrumentation produces the
explicit-signal monitor: every ``waituntil(p'){s}`` becomes
``waituntil(p'){s; signal(S1); broadcast(S2)}`` and every distinct waited-on
guard receives a condition variable (used later by code generation, §6).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.logic.terms import Expr
from repro.lang.ast import Monitor
from repro.placement.algorithm import PlacementResult
from repro.placement.target import ExplicitCCR, ExplicitMethod, ExplicitMonitor


def condition_var_names(monitor: Monitor) -> Tuple[Tuple[Expr, str], ...]:
    """Assign a condition-variable name to every distinct waited-on guard."""
    names: List[Tuple[Expr, str]] = []
    used: Dict[str, int] = {}
    for _method, ccr in monitor.ccrs():
        if ccr.is_trivial():
            continue
        if any(guard == ccr.guard for guard, _name in names):
            continue
        base = f"cond{len(names)}"
        # Prefer a name derived from the waiting method for readability.
        method_name = ccr.label.split("#")[0]
        candidate = f"{method_name}Cond"
        if candidate in used:
            used[candidate] += 1
            candidate = f"{candidate}{used[candidate]}"
        else:
            used[candidate] = 0
        names.append((ccr.guard, candidate or base))
    return tuple(names)


def instrument(monitor: Monitor, placement: PlacementResult) -> ExplicitMonitor:
    """Attach the placed notifications to every CCR (the paper's Figure 7)."""
    methods: List[ExplicitMethod] = []
    for method in monitor.methods:
        explicit_ccrs: List[ExplicitCCR] = []
        for ccr in method.ccrs:
            notifications = placement.notifications_for(ccr.label)
            explicit_ccrs.append(
                ExplicitCCR(ccr.guard, ccr.body, ccr.label, tuple(notifications))
            )
        methods.append(ExplicitMethod(method.name, method.params, tuple(explicit_ccrs)))
    return ExplicitMonitor(
        name=monitor.name,
        fields=monitor.fields,
        methods=tuple(methods),
        condition_vars=condition_var_names(monitor),
        invariant=placement.invariant,
        constants=monitor.constants,
    )
