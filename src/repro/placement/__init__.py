"""Signal placement: the paper's core contribution (Algorithm 1 + §4.2/§4.3).

* :mod:`repro.placement.target` — the explicit-signal target language
  (notifications ``(p, cond, bcast)``, explicit CCRs/monitors);
* :mod:`repro.placement.algorithm` — the ``PlaceSignals`` algorithm with
  thread-local renaming and the commutativity-based broadcast elimination;
* :mod:`repro.placement.instrument` — instrumentation of the source monitor
  with the computed notifications (Figure 7);
* :mod:`repro.placement.pipeline` — the end-to-end Expresso pipeline
  (parse → infer invariant → place signals → instrument → generate code).
"""

from repro.placement.target import (
    ExplicitCCR,
    ExplicitMethod,
    ExplicitMonitor,
    Notification,
)
from repro.placement.algorithm import (
    PlacementDecision,
    PlacementResult,
    generate_placement_triples,
    place_signals,
)
from repro.placement.instrument import instrument
from repro.placement.pipeline import ExpressoPipeline, ExpressoResult, compile_monitor

__all__ = [
    "Notification", "ExplicitCCR", "ExplicitMethod", "ExplicitMonitor",
    "PlacementDecision", "PlacementResult", "place_signals", "generate_placement_triples",
    "instrument",
    "ExpressoPipeline", "ExpressoResult", "compile_monitor",
]
