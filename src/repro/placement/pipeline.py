"""The end-to-end Expresso pipeline.

``compile_monitor`` (or :class:`ExpressoPipeline` for configurable use) takes
implicit-signal monitor source text and produces:

1. the parsed and checked :class:`~repro.lang.ast.Monitor`;
2. the inferred monitor invariant (Algorithm 2);
3. the signal placement (Algorithm 1 + §4.2/§4.3);
4. the instrumented explicit-signal monitor (Figure 7);

plus timing and solver statistics, which the evaluation harness uses to
reproduce the paper's Table 1 (compilation times).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

from repro import obs
from repro.logic import build
from repro.logic.pretty import pretty
from repro.logic.terms import Expr
from repro.lang import load_monitor
from repro.lang.ast import Monitor
from repro.analysis.invariants import InvariantInferenceResult, infer_monitor_invariant
from repro.analysis.lint import LintReport, lint_explicit
from repro.placement.algorithm import (
    PlacementResult,
    generate_placement_triples,
    place_signals,
)
from repro.placement.instrument import instrument
from repro.placement.target import ExplicitMonitor
from repro.smt.cache import FormulaCache
from repro.smt.solver import Solver


@dataclass(frozen=True)
class ExpressoResult:
    """Everything the pipeline produced for one monitor."""

    monitor: Monitor
    invariant: Expr
    invariant_details: InvariantInferenceResult
    placement: PlacementResult
    explicit: ExplicitMonitor
    elapsed_seconds: float
    solver_statistics: Dict[str, int]
    lint_report: Optional[LintReport] = None
    #: Wall time per pipeline phase (parse/invariants/placement/instrument/
    #: lint) — always recorded (two perf_counter reads per phase), so phase
    #: attribution is available even without an observability session.
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        """A short human-readable report (used by the CLI and examples)."""
        hits = self.solver_statistics.get("cache_hits", 0)
        misses = self.solver_statistics.get("cache_misses", 0)
        total = hits + misses
        hit_rate = f" ({hits / total:.0%} hit rate)" if total else ""
        lines = [
            f"monitor            : {self.monitor.name}",
            f"monitor invariant  : {pretty(self.invariant)}",
            f"notifications      : {self.placement.total_notifications()} "
            f"({self.placement.broadcast_count()} broadcasts)",
            f"analysis time      : {self.elapsed_seconds:.3f}s",
            f"validity queries   : {self.solver_statistics.get('validity_queries', 0)}",
            f"solver cache       : {hits} hits / {misses} misses{hit_rate}",
            f"commute cache      : "
            f"{self.solver_statistics.get('commute_cache_hits', 0)} hits / "
            f"{self.solver_statistics.get('commute_cache_misses', 0)} misses",
            f"static pre-filter  : "
            f"{self.solver_statistics.get('commute_static_skips', 0)} "
            f"commute queries skipped",
        ]
        if self.lint_report is not None:
            if self.lint_report.clean:
                lint_line = "clean"
            else:
                lint_line = (f"{len(self.lint_report.errors)} error(s), "
                             f"{len(self.lint_report.advisories)} advisory(ies)")
            lines.append(f"lint               : {lint_line}")
        return "\n".join(lines)


class ExpressoPipeline:
    """Configurable front door to the reproduction.

    Parameters
    ----------
    use_commutativity:
        Enable the §4.3 commutativity-based broadcast elimination.
    infer_invariant:
        Disable to run placement with ``I = true`` (used by the ablation
        benchmarks to show how much the invariant matters).
    extra_invariant_candidates:
        Additional candidate predicates seeded into Algorithm 2.
    solver:
        A (reusable, cached) solver shared across compiles.  When given, the
        same atom table, learned theory lemmas, and result cache serve every
        compile through this pipeline; per-compile statistics are still
        reported as deltas.  When omitted, each compile gets a fresh solver
        with its own result cache (the pipeline's hundreds of near-duplicate
        VCs make even a compile-local cache worthwhile).
    cache:
        A formula cache for the per-compile solvers (ignored when *solver*
        is given, which carries its own).  Pass a shared
        :class:`~repro.smt.cache.FormulaCache` to memoize across compiles
        without sharing solver state.
    lint:
        Run the static analyzer (:mod:`repro.analysis.lint`) on the placed
        monitor and attach its :class:`LintReport` to the result.  The
        missing-signal cross-check re-asks placement's own omission triples,
        which the formula cache answers for free; disable for benchmarking
        the bare synthesis path.  Lint never changes the produced artifacts.
    smt_timeout:
        Per-query wall-clock budget (seconds) for the per-compile solvers
        (ignored when *solver* is given, which carries its own).  Exhausting
        the budget yields UNKNOWN and every analysis degrades in its sound
        direction (see ``README.md#robustness--resume``), so a timeout can
        change results — it participates in :meth:`config_key`.
    """

    def __init__(self, use_commutativity: bool = True, infer_invariant: bool = True,
                 extra_invariant_candidates: Sequence[Expr] = (),
                 solver: Optional[Solver] = None,
                 cache: Optional[FormulaCache] = None,
                 lint: bool = True,
                 smt_timeout: Optional[float] = None):
        self.use_commutativity = use_commutativity
        self.infer_invariant = infer_invariant
        self.extra_invariant_candidates = tuple(extra_invariant_candidates)
        self._solver = solver
        self._cache = cache
        self.lint = lint
        self.smt_timeout = smt_timeout

    def config_key(self) -> Tuple:
        """A hashable key identifying the *semantic* pipeline configuration.

        Two pipelines with equal keys produce identical artifacts for the
        same monitor; solver/cache sharing deliberately does not participate
        (it changes speed, never results).  Used by the harness caches.
        """
        return (self.use_commutativity, self.infer_invariant,
                self.extra_invariant_candidates, self.lint, self.smt_timeout)

    def compile(self, source: Union[str, Monitor]) -> ExpressoResult:
        """Compile implicit-signal monitor source (or a parsed monitor)."""
        start = time.perf_counter()
        tracer = obs.tracer()
        solver = self._solver
        if solver is None:
            cache = self._cache if self._cache is not None else FormulaCache()
            solver = Solver(cache=cache, timeout_seconds=self.smt_timeout)
        stats_before = solver.snapshot_statistics()
        phases: Dict[str, float] = {}

        with tracer.span("compile", cat="compile") as root:
            mark = time.perf_counter()
            with tracer.span("compile.parse", cat="compile"):
                monitor = (source if isinstance(source, Monitor)
                           else load_monitor(source))
            phases["parse"] = time.perf_counter() - mark
            root.set(monitor=monitor.name)

            mark = time.perf_counter()
            with tracer.span("compile.invariants", cat="compile") as inv_span:
                if self.infer_invariant:
                    theta = generate_placement_triples(monitor, build.TRUE)
                    invariant_details = infer_monitor_invariant(
                        monitor, theta, solver,
                        extra_candidates=self.extra_invariant_candidates
                    )
                else:
                    invariant_details = InvariantInferenceResult(
                        invariant=build.TRUE, kept_predicates=(),
                        candidate_pool=(), iterations=0
                    )
                invariant = invariant_details.invariant
                inv_span.set(invariant=obs.formula_fingerprint(invariant),
                             iterations=invariant_details.iterations)
            phases["invariants"] = time.perf_counter() - mark

            mark = time.perf_counter()
            with tracer.span("compile.placement", cat="compile") as place_span:
                placement = place_signals(
                    monitor, invariant, solver,
                    use_commutativity=self.use_commutativity)
                place_span.set(
                    notifications=placement.total_notifications(),
                    broadcasts=placement.broadcast_count())
            phases["placement"] = time.perf_counter() - mark

            mark = time.perf_counter()
            with tracer.span("compile.instrument", cat="compile"):
                explicit = instrument(monitor, placement)
            phases["instrument"] = time.perf_counter() - mark

            lint_report = None
            if self.lint:
                mark = time.perf_counter()
                with tracer.span("compile.lint", cat="compile"):
                    lint_report = lint_explicit(explicit, solver=solver)
                phases["lint"] = time.perf_counter() - mark

        elapsed = time.perf_counter() - start
        # Shared solvers serve many compiles; report this compile's share only.
        stats_delta = {
            key: value - stats_before.get(key, 0)
            for key, value in solver.statistics.items()
        }
        return ExpressoResult(
            monitor=monitor,
            invariant=invariant,
            invariant_details=invariant_details,
            placement=placement,
            explicit=explicit,
            elapsed_seconds=elapsed,
            solver_statistics=stats_delta,
            lint_report=lint_report,
            phase_seconds=phases,
        )


def compile_monitor(source: Union[str, Monitor], **kwargs) -> ExpressoResult:
    """One-call convenience wrapper around :class:`ExpressoPipeline`."""
    return ExpressoPipeline(**kwargs).compile(source)
