"""The signal placement algorithm (paper §4, Algorithm 1).

For every conditional critical region *w* and every waited-on guard *p* in
the monitor, the algorithm decides:

1. whether executing *w* can make *p* true at all (if not, no notification);
2. whether the notification can be unconditional (``✓``) or must re-check the
   predicate at run time (``?``);
3. whether a single ``signal`` suffices or a ``broadcast`` is required —
   using the basic check of Algorithm 1 line 13 and, optionally, the §4.3
   commutativity-based strengthening (Equation 2).

Thread-local variables occurring in the blocked thread's guard are renamed to
fresh copies before validity checking (§4.2), which prevents the unsoundness
of Example 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.logic import build
from repro.logic.free_vars import free_vars
from repro.logic.terms import Expr
from repro.lang.ast import CCR, MethodDecl, Monitor, seq
from repro.analysis.hoare import HoareTriple, check_triple
from repro.analysis.commutativity import ccr_commutes_with_all
from repro.analysis.renaming import rename_stmt_locals, rename_thread_locals
from repro.placement.target import Notification
from repro.smt.solver import Solver


@dataclass(frozen=True)
class PlacementDecision:
    """The decision for one (CCR, guard) pair, with the triples that justify it."""

    ccr_label: str
    predicate: Expr
    needs_notification: bool
    conditional: bool = True
    broadcast: bool = True
    used_commutativity: bool = False
    checked_triples: Tuple[HoareTriple, ...] = ()

    def to_notification(self) -> Optional[Notification]:
        if not self.needs_notification:
            return None
        return Notification(self.predicate, self.conditional, self.broadcast)


@dataclass
class PlacementResult:
    """Output of :func:`place_signals`: notifications per CCR plus provenance."""

    monitor: Monitor
    invariant: Expr
    notifications: Dict[str, Tuple[Notification, ...]]
    decisions: Tuple[PlacementDecision, ...]

    def notifications_for(self, ccr_label: str) -> Tuple[Notification, ...]:
        return self.notifications.get(ccr_label, ())

    def total_notifications(self) -> int:
        return sum(len(notes) for notes in self.notifications.values())

    def broadcast_count(self) -> int:
        return sum(1 for notes in self.notifications.values()
                   for note in notes if note.broadcast)


def guard_thread_locals(monitor: Monitor, guard: Expr) -> frozenset:
    """Thread-local variable names appearing free in *guard*."""
    shared = set(monitor.field_names())
    return frozenset(var.name for var in free_vars(guard) if var.name not in shared)


def waiters_of(monitor: Monitor, guard: Expr) -> Tuple[Tuple[MethodDecl, CCR], ...]:
    """All CCRs whose guard is exactly *guard* (the threads that may block on it)."""
    return tuple((method, ccr) for method, ccr in monitor.ccrs() if ccr.guard == guard)


def generate_placement_triples(monitor: Monitor, invariant: Expr) -> List[HoareTriple]:
    """The triples Algorithm 1 would check under *invariant*.

    With ``invariant = true`` this is exactly the Θ input of the invariant
    inference (Algorithm 2).
    """
    triples: List[HoareTriple] = []
    for _method, ccr in monitor.ccrs():
        for predicate in monitor.guards():
            locals_in_p = guard_thread_locals(monitor, predicate)
            renamed_p = rename_thread_locals(predicate, locals_in_p, "theta")
            pre = build.land(invariant, ccr.guard, build.lnot(renamed_p))
            triples.append(HoareTriple(pre, ccr.body, build.lnot(renamed_p),
                                       purpose=f"no-signal {ccr.label}"))
            triples.append(HoareTriple(pre, ccr.body, renamed_p,
                                       purpose=f"unconditional {ccr.label}"))
    for predicate in monitor.guards():
        for _method, waiter in waiters_of(monitor, predicate):
            triples.append(HoareTriple(build.land(invariant, predicate), waiter.body,
                                       build.lnot(predicate),
                                       purpose=f"single-signal {waiter.label}"))
    return triples


def place_signals(monitor: Monitor, invariant: Expr,
                  solver: Optional[Solver] = None,
                  use_commutativity: bool = True) -> PlacementResult:
    """Run Algorithm 1 (with the §4.2 renaming and optional §4.3 improvement)."""
    solver = solver or Solver()
    notifications: Dict[str, List[Notification]] = {
        ccr.label: [] for _method, ccr in monitor.ccrs()
    }
    decisions: List[PlacementDecision] = []

    commutativity_cache: Dict[str, bool] = {}

    def commutes(ccr: CCR) -> bool:
        if ccr.label not in commutativity_cache:
            commutativity_cache[ccr.label] = ccr_commutes_with_all(ccr, monitor, solver)
        return commutativity_cache[ccr.label]

    tracer = obs.tracer()
    guards = monitor.guards()
    for method, ccr in monitor.ccrs():
        for predicate in guards:
            with tracer.span("placement.decide", cat="placement",
                             ccr=ccr.label,
                             predicate=obs.formula_fingerprint(predicate)) as span:
                decision = _decide(monitor, method, ccr, predicate, invariant,
                                   solver, use_commutativity, commutes)
                span.set(needs_notification=decision.needs_notification,
                         conditional=decision.conditional,
                         broadcast=decision.broadcast,
                         used_commutativity=decision.used_commutativity)
            decisions.append(decision)
            notification = decision.to_notification()
            if notification is not None:
                notifications[ccr.label].append(notification)

    return PlacementResult(
        monitor=monitor,
        invariant=invariant,
        notifications={label: tuple(notes) for label, notes in notifications.items()},
        decisions=tuple(decisions),
    )


def _proved(triple: HoareTriple, solver: Solver) -> bool:
    """``check_triple`` with degradation accounting.

    An UNKNOWN verdict already falls on the sound side everywhere in
    Algorithm 1 — an unproven triple keeps the notification, makes it
    conditional, or forces a broadcast, so a degraded solver can only
    over-signal, never lose a wakeup.  This wrapper surfaces each such
    degradation as ``degraded.placement`` plus a trace instant.
    """
    ok = check_triple(triple, solver)
    if not ok and solver.consume_unknown() is not None:
        obs.registry().inc("degraded.placement")
        obs.tracer().instant("degraded.placement", cat="smt",
                             triple=triple.purpose)
    return ok


def _decide(monitor: Monitor, method: MethodDecl, ccr: CCR, predicate: Expr,
            invariant: Expr, solver: Solver, use_commutativity: bool,
            commutes) -> PlacementDecision:
    """Decide whether/how *ccr* must notify threads blocked on *predicate*."""
    checked: List[HoareTriple] = []
    locals_in_p = guard_thread_locals(monitor, predicate)
    # §4.2: the blocked thread's locals are renamed apart from the running thread's.
    other_p = rename_thread_locals(predicate, locals_in_p, "blk")

    # Line 7: is a notification needed at all?
    pre = build.land(invariant, ccr.guard, build.lnot(other_p))
    no_signal = HoareTriple(pre, ccr.body, build.lnot(other_p),
                            purpose=f"{ccr.label} cannot wake {_short(predicate)}")
    checked.append(no_signal)
    if _proved(no_signal, solver):
        return PlacementDecision(ccr.label, predicate, needs_notification=False,
                                 checked_triples=tuple(checked))

    # Lines 9-12: conditional vs unconditional notification.
    unconditional = HoareTriple(pre, ccr.body, other_p,
                                purpose=f"{ccr.label} guarantees {_short(predicate)}")
    checked.append(unconditional)
    conditional = not _proved(unconditional, solver)

    # Lines 13-16 (+ §4.3): signal one thread or broadcast to all?
    # The woken thread executes the waiter's body; the postcondition talks about
    # a *different* thread that stays blocked on the same predicate, so its
    # thread-locals are renamed apart (§4.2, Example 4.2).
    broadcast = False
    used_comm = False
    for _waiter_method, waiter in waiters_of(monitor, predicate):
        single = HoareTriple(build.land(invariant, predicate), waiter.body,
                             build.lnot(other_p),
                             purpose=f"{waiter.label} consumes {_short(predicate)}")
        checked.append(single)
        if _proved(single, solver):
            continue
        if use_commutativity and commutes(waiter):
            # Equation 2: prove that running the signalling body followed by the
            # woken thread's body falsifies the predicate for any other waiter.
            # Three thread namespaces are involved: the running thread
            # (unrenamed), the woken waiter (suffix "wkn"), and the thread that
            # remains blocked (suffix "blk", shared with `other_p`).
            waiter_locals = monitor.thread_local_names(_method_of(monitor, waiter))
            renamed_body = rename_stmt_locals(waiter.body, waiter_locals, "wkn")
            composed = HoareTriple(
                build.land(invariant, ccr.guard, build.lnot(other_p)),
                seq(ccr.body, renamed_body),
                build.lnot(other_p),
                purpose=f"{ccr.label};{waiter.label} consumes {_short(predicate)} (Eq. 2)",
            )
            checked.append(composed)
            if _proved(composed, solver):
                used_comm = True
                continue
        broadcast = True
        break

    return PlacementDecision(ccr.label, predicate, needs_notification=True,
                             conditional=conditional, broadcast=broadcast,
                             used_commutativity=used_comm,
                             checked_triples=tuple(checked))


def _method_of(monitor: Monitor, target: CCR) -> MethodDecl:
    for method, ccr in monitor.ccrs():
        if ccr is target:
            return method
    raise KeyError(target.label)


def _short(predicate: Expr) -> str:
    from repro.logic.pretty import pretty

    text = pretty(predicate)
    return text if len(text) <= 40 else text[:37] + "..."
