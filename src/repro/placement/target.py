"""The explicit-signal target language (paper §3.3).

A target-language ``waituntil`` carries two notification sets: ``Signals(w)``
(wake a single thread blocked on the predicate) and ``Broadcasts(w)`` (wake
all of them).  Each notification is a pair ``(p, c)`` with ``c ∈ {?, ✓}``:
``?`` means the predicate is evaluated at run time before notifying, ``✓``
means the notification is unconditional.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.logic.pretty import pretty
from repro.logic.terms import Expr
from repro.lang.ast import FieldDecl, Param, Stmt


@dataclass(frozen=True)
class Notification:
    """A placed notification ``(predicate, conditional, broadcast)``.

    ``conditional`` corresponds to the paper's ``?`` marker (evaluate the
    predicate at run time before waking anyone); ``broadcast`` selects
    ``signalAll`` over ``signal``.
    """

    predicate: Expr
    conditional: bool
    broadcast: bool

    @property
    def marker(self) -> str:
        """The paper's ``?`` / ``✓`` marker for this notification."""
        return "?" if self.conditional else "✓"

    def describe(self) -> str:
        kind = "broadcast" if self.broadcast else "signal"
        return f"{kind}[{self.marker}]({pretty(self.predicate)})"


@dataclass(frozen=True)
class ExplicitCCR:
    """A target-language ``waituntil(guard){body; signal(S1); broadcast(S2)}``."""

    guard: Expr
    body: Stmt
    label: str
    notifications: Tuple[Notification, ...] = ()

    @property
    def signals(self) -> Tuple[Notification, ...]:
        """``Signals(w)`` — single-thread notifications."""
        return tuple(n for n in self.notifications if not n.broadcast)

    @property
    def broadcasts(self) -> Tuple[Notification, ...]:
        """``Broadcasts(w)`` — notify-all notifications."""
        return tuple(n for n in self.notifications if n.broadcast)


@dataclass(frozen=True)
class ExplicitMethod:
    """An explicit-signal monitor method."""

    name: str
    params: Tuple[Param, ...]
    ccrs: Tuple[ExplicitCCR, ...]


@dataclass(frozen=True)
class ExplicitMonitor:
    """An explicit-signal monitor: the output of the placement algorithm.

    ``condition_vars`` assigns a condition-variable name to every distinct
    waited-on guard (the §6 code-generation scheme); ``invariant`` records the
    monitor invariant used to justify the placement.
    """

    name: str
    fields: Tuple[FieldDecl, ...]
    methods: Tuple[ExplicitMethod, ...]
    condition_vars: Tuple[Tuple[Expr, str], ...]
    invariant: Expr
    constants: Tuple[Tuple[str, int], ...] = ()

    def condition_var_for(self, guard: Expr) -> Optional[str]:
        """The condition-variable name associated with *guard*, if any."""
        for predicate, name in self.condition_vars:
            if predicate == guard:
                return name
        return None

    def method(self, name: str) -> ExplicitMethod:
        for method in self.methods:
            if method.name == name:
                return method
        raise KeyError(name)

    def total_notifications(self) -> int:
        """Total number of placed notifications (a code-quality metric)."""
        return sum(len(ccr.notifications) for method in self.methods for ccr in method.ccrs)

    def notification_sites(self) -> Tuple[Tuple[str, int], ...]:
        """Every placed notification as a (ccr_label, index) address."""
        sites = []
        for method in self.methods:
            for ccr in method.ccrs:
                for index in range(len(ccr.notifications)):
                    sites.append((ccr.label, index))
        return tuple(sites)

    def without_notification(self, ccr_label: str, index: int) -> "ExplicitMonitor":
        """A copy with one placed notification deleted (mutation testing).

        The exploration engine uses these mutants as injected lost-wakeup
        bugs: a correct placement minus one signal must be caught by the
        differential oracle, which validates the whole detection pipeline.
        """
        methods = []
        found = False
        for method in self.methods:
            ccrs = []
            for ccr in method.ccrs:
                if ccr.label == ccr_label:
                    if not 0 <= index < len(ccr.notifications):
                        raise IndexError(
                            f"{ccr_label} has {len(ccr.notifications)} notifications, "
                            f"cannot drop #{index}")
                    notifications = (ccr.notifications[:index]
                                     + ccr.notifications[index + 1:])
                    ccrs.append(ExplicitCCR(ccr.guard, ccr.body, ccr.label,
                                            notifications))
                    found = True
                else:
                    ccrs.append(ccr)
            methods.append(ExplicitMethod(method.name, method.params, tuple(ccrs)))
        if not found:
            raise KeyError(ccr_label)
        return ExplicitMonitor(
            name=self.name,
            fields=self.fields,
            methods=tuple(methods),
            condition_vars=self.condition_vars,
            invariant=self.invariant,
            constants=self.constants,
        )
