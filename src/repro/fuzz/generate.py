"""Seeded monitor generation: the corpus bootstrap and the random baseline.

Migrated from ``explore/genmon.py`` (which keeps a thin shim) and reworked in
two ways the fuzzing campaign depends on:

* **independent derived seeds** — every corpus entry draws from its own RNG
  seeded by ``derive_seed(campaign_seed, index)`` (a stable blake2b digest,
  not Python's salted ``hash``), and every family *slot* inside a monitor
  draws its parameters from its own sub-seed.  Previously one shared RNG
  served all of a monitor's families, so teaching one generator a new knob
  (an extra draw) silently reshuffled every later family and corpus index;
  now a generator's internal draw count is isolated.  Family *selection* uses
  rendezvous hashing (highest derived digest wins), so growing the generator
  set only changes the slots the new family actually wins — existing corpora
  stay stable instead of reshuffling wholesale.
* **serializable roles** — a workload role is data, not a closure: a tuple of
  ``(method, args, per_op)`` op specs (``per_op=False`` ops run once as
  setup).  Corpus entries persist roles as JSON and mutation operators edit
  them alongside the monitor AST.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.benchmarks_lib.spec import ThreadOps, Workload
from repro.explore.engine import ExplorationResult, explore_explicit

#: One role op spec: (method name, call args, repeated per workload op?).
OpSpec = Tuple[str, Tuple, bool]
#: One role: the op specs a thread of that role runs.
RoleSpec = Tuple[OpSpec, ...]


def derive_seed(*parts) -> int:
    """A stable 64-bit seed derived from *parts* (process/run independent)."""
    text = ":".join(str(part) for part in parts)
    digest = hashlib.blake2b(text.encode(), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


def expand_role(role: RoleSpec, ops: int) -> ThreadOps:
    """Expand a role spec into one thread's operation sequence."""
    program: ThreadOps = []
    for method, args, per_op in role:
        repeat = ops if per_op else 1
        program.extend((method, tuple(args)) for _ in range(repeat))
    return program


def balanced_workload(roles: Sequence[RoleSpec], threads: int, ops: int) -> Workload:
    """A balanced workload: every role gets the same number of threads.

    Balancing (plus idle leftovers) keeps complementary roles — producer and
    consumer, raise and lower — in matching op counts, so schedules can run
    to completion; when *threads* < number of roles the workload degrades to
    benign stalls, which the oracle classifies as such.
    """
    if not roles:
        return [[] for _ in range(threads)]
    per_role = threads // len(roles)
    if per_role == 0:
        return [expand_role(roles[index], ops) for index in range(threads)]
    workload: Workload = []
    for index in range(threads):
        role = index // per_role
        workload.append(expand_role(roles[role], ops) if role < len(roles) else [])
    return workload


def roles_to_json(roles: Sequence[RoleSpec]) -> list:
    return [[[method, list(args), per_op] for method, args, per_op in role]
            for role in roles]


def roles_from_json(data: Sequence) -> Tuple[RoleSpec, ...]:
    return tuple(
        tuple((method, tuple(args), bool(per_op)) for method, args, per_op in role)
        for role in data)


@dataclass(frozen=True)
class GeneratedMonitor:
    """A generated monitor plus its balanced workload roles (all data)."""

    name: str
    source: str
    families: Tuple[str, ...]
    roles: Tuple[RoleSpec, ...] = ()

    def workload(self, threads: int, ops: int) -> Workload:
        return balanced_workload(self.roles, threads, ops)


# ---------------------------------------------------------------------------
# Families
# ---------------------------------------------------------------------------


def _counter_family(rng: random.Random, tag: int):
    cap = rng.randint(1, 4)
    fname = f"c{tag}"
    lines = [
        f"    unsigned int {fname} = 0;",
        f"    atomic void put{tag}() {{ waituntil ({fname} < {cap}) {{ {fname}++; }} }}",
        f"    atomic void take{tag}() {{ waituntil ({fname} > 0) {{ {fname}--; }} }}",
    ]
    roles = (((f"put{tag}", (), True),),
             ((f"take{tag}", (), True),))
    return f"counter(cap={cap})", lines, roles


def _flag_family(rng: random.Random, tag: int):
    fname = f"flag{tag}"
    lines = [
        f"    boolean {fname} = false;",
        f"    atomic void raise{tag}() {{ waituntil (!{fname}) {{ {fname} = true; }} }}",
        f"    atomic void lower{tag}() {{ waituntil ({fname}) {{ {fname} = false; }} }}",
    ]
    roles = (((f"raise{tag}", (), True),),
             ((f"lower{tag}", (), True),))
    return "flag", lines, roles


def _ticket_family(rng: random.Random, tag: int):
    # Thread-local guard (serving == t) + a two-CCR method: exercises the §6
    # waiter-snapshot tables and cross-CCR locals through the whole pipeline.
    lines = [
        f"    int next{tag} = 0;",
        f"    int serving{tag} = 0;",
        f"    atomic void ticket{tag}() {{",
        f"        int t = next{tag};",
        f"        next{tag}++;",
        f"        waituntil (serving{tag} == t) {{ serving{tag}++; }}",
        f"    }}",
    ]
    roles = (((f"ticket{tag}", (), True),),)
    return "ticket", lines, roles


def _gate_family(rng: random.Random, tag: int):
    lines = [
        f"    boolean open{tag} = false;",
        f"    int entered{tag} = 0;",
        f"    atomic void open{tag}_() {{ open{tag} = true; }}",
        f"    atomic void enter{tag}() {{ waituntil (open{tag}) {{ entered{tag}++; }} }}",
    ]
    roles = (((f"open{tag}_", (), False), (f"enter{tag}", (), True)),
             ((f"enter{tag}", (), True),))
    return "gate", lines, roles


def _branchy_family(rng: random.Random, tag: int):
    # Conditional body over an auxiliary unguarded field: exercises If
    # statements through wp/placement/codegen.
    cap = rng.randint(2, 4)
    pivot = rng.randint(1, cap - 1)
    lines = [
        f"    unsigned int b{tag} = 0;",
        f"    int aux{tag} = 0;",
        f"    atomic void push{tag}() {{",
        f"        waituntil (b{tag} < {cap}) {{",
        f"            b{tag}++;",
        f"            if (b{tag} > {pivot}) {{ aux{tag} = aux{tag} + 1; }} else {{ aux{tag} = 0; }}",
        f"        }}",
        f"    }}",
        f"    atomic void pop{tag}() {{ waituntil (b{tag} > 0) {{ b{tag}--; }} }}",
    ]
    roles = (((f"push{tag}", (), True),),
             ((f"pop{tag}", (), True),))
    return f"branchy(cap={cap},pivot={pivot})", lines, roles


_FAMILIES = (_counter_family, _flag_family, _ticket_family, _gate_family,
             _branchy_family)
_FAMILY_NAMES = tuple(family.__name__.strip("_") for family in _FAMILIES)


def family_lines(family_name: str, rng: random.Random, tag: int):
    """Instantiate one family by name (the mutation layer's add-method source)."""
    family = _FAMILIES[_FAMILY_NAMES.index(family_name)]
    return family(rng, tag)


def _pick_family(seed: int, index: int, tag: int):
    """Rendezvous-hash the family for one slot: adding a new generator only
    changes the slots the newcomer wins, never reshuffles the others."""
    return max(_FAMILIES,
               key=lambda family: derive_seed(seed, index, tag, family.__name__))


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------


def random_monitor(seed: int, index: int = 0) -> GeneratedMonitor:
    """Generate monitor *index* of the corpus seeded by *seed*.

    Every (monitor, family slot) pair draws from its own derived seed, so
    generated corpora are stable under generator-set growth: adding draws to
    one family, or a whole new family, leaves unrelated entries untouched.
    """
    master = random.Random(derive_seed(seed, index))
    count = master.randint(1, 3)
    names: List[str] = []
    body_lines: List[str] = []
    roles: List[RoleSpec] = []
    for tag in range(count):
        family = _pick_family(seed, index, tag)
        rng = random.Random(derive_seed(seed, index, tag, family.__name__, "params"))
        name, lines, family_roles = family(rng, tag)
        names.append(name)
        body_lines.extend(lines)
        roles.extend(family_roles)
    # Negative seeds are legal CLI input; '-' is not a legal identifier char.
    monitor_name = f"Fuzz{seed}x{index}".replace("-", "n")
    source = "\n".join([f"monitor {monitor_name} {{", *body_lines, "}"])
    return GeneratedMonitor(monitor_name, source, tuple(names), tuple(roles))


# ---------------------------------------------------------------------------
# The random baseline: blind generate-and-explore (PR 2 behaviour)
# ---------------------------------------------------------------------------


@dataclass
class FuzzReport:
    """Outcome of a blind (non-coverage-guided) campaign over a generated corpus."""

    seed: int
    monitors: int = 0
    compile_errors: List[Tuple[str, str]] = field(default_factory=list)
    results: List[ExplorationResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.compile_errors and all(r.ok for r in self.results)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "monitors": self.monitors,
            "ok": self.ok,
            "compile_errors": [{"monitor": name, "error": error}
                               for name, error in self.compile_errors],
            "results": [result.to_dict() for result in self.results],
        }


def fuzz_pipeline(count: int = 10, seed: int = 0, threads: int = 3, ops: int = 2,
                  strategy: str = "random", budget: int = 100,
                  max_steps: int = 20_000, pipeline=None,
                  stop_on_failure: bool = True, **explore_kwargs) -> FuzzReport:
    """Compile and explore *count* random monitors; collect every finding.

    This is the purely random baseline the coverage-guided campaign is
    measured against (``benchmarks/bench_fuzz.py``): fresh generation every
    iteration, no corpus, no feedback.
    """
    from repro.placement.pipeline import ExpressoPipeline

    pipeline = pipeline if pipeline is not None else ExpressoPipeline()
    report = FuzzReport(seed=seed)
    for index in range(count):
        generated = random_monitor(seed, index)
        report.monitors += 1
        try:
            compiled = pipeline.compile(generated.source)
        except Exception as exc:
            report.compile_errors.append(
                (generated.name, f"{type(exc).__name__}: {exc}"))
            if stop_on_failure:
                break
            continue
        result = explore_explicit(
            compiled.explicit, compiled.monitor,
            generated.workload(threads, ops),
            strategy=strategy, budget=budget, seed=derive_seed(seed, index) % (2 ** 31),
            max_steps=max_steps, stop_on_failure=stop_on_failure,
            benchmark=generated.name, discipline="expresso", **explore_kwargs)
        report.results.append(result)
        if not result.ok and stop_on_failure:
            break
    return report
