"""Structural mutation and crossover operators on monitor ASTs.

Each operator is a **named, seeded, individually testable transform**: it
takes a candidate (monitor source + workload roles + thread/op bounds), an
operator-local :class:`random.Random`, and optionally a mate (for crossover),
and returns a mutated candidate or ``None`` when it does not apply.  The
campaign records ``(operator name, operator seed, mate id)`` trails, so any
corpus entry can be rebuilt from the campaign seed plus its trail
(:func:`repro.fuzz.corpus.rebuild_source` tests exactly that).

Operators work on the parsed :class:`~repro.lang.ast.Monitor` — not on raw
text — and re-serialize through :func:`~repro.lang.pretty.pretty_monitor`,
which round-trips through the parser; CCR labels are re-assigned on re-parse,
so transforms never have to maintain them.  Every result is validated by a
full parse + check before it is returned: an operator either yields a
well-formed monitor or ``None``.
"""

from __future__ import annotations

import dataclasses
import random
import re
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fuzz.generate import RoleSpec, family_lines
from repro.lang import load_monitor
from repro.lang.ast import CCR, MethodDecl, Monitor, Seq
from repro.lang.pretty import pretty_monitor
from repro.logic.terms import Expr, Ge, Gt, IntConst, Le, Lt


@dataclasses.dataclass(frozen=True)
class Candidate:
    """A fuzzing input: monitor source, workload roles, and bounds."""

    name: str
    source: str
    roles: Tuple[RoleSpec, ...]
    threads: int
    ops: int

    def workload(self):
        from repro.fuzz.generate import balanced_workload

        return balanced_workload(self.roles, self.threads, self.ops)


#: Operator signature: (candidate, rng, mate) -> mutated candidate or None.
Operator = Callable[[Candidate, random.Random, Optional[Candidate]],
                    Optional[Candidate]]

#: Growth caps: mutants stay small enough for bounded exploration to bite.
MAX_METHODS = 8
MAX_FIELDS = 10
THREAD_RANGE = (2, 4)
OPS_RANGE = (1, 3)


def _parse(candidate: Candidate) -> Optional[Monitor]:
    try:
        return load_monitor(candidate.source)
    except Exception:
        return None


def _emit(candidate: Candidate, monitor: Monitor,
          roles: Sequence[RoleSpec], suffix: str,
          threads: Optional[int] = None,
          ops: Optional[int] = None) -> Optional[Candidate]:
    """Serialize a mutated AST and validate it end to end (parse + check)."""
    name = f"{monitor.name}{suffix}" if suffix else monitor.name
    monitor = dataclasses.replace(monitor, name=_legal_name(name))
    source = pretty_monitor(monitor)
    try:
        load_monitor(source)
    except Exception:
        return None
    live_roles = _prune_roles(roles, monitor)
    if not live_roles:
        return None
    return Candidate(monitor.name, source, live_roles,
                     threads if threads is not None else candidate.threads,
                     ops if ops is not None else candidate.ops)


def _legal_name(name: str) -> str:
    cleaned = re.sub(r"[^A-Za-z0-9_]", "", name)
    # Monitor names double as class-ish identifiers in reports; keep bounded.
    return cleaned[:48] or "FuzzMutant"


def _prune_roles(roles: Sequence[RoleSpec], monitor: Monitor) -> Tuple[RoleSpec, ...]:
    """Drop role ops whose method no longer exists, then empty roles."""
    known = set(method.name for method in monitor.methods)
    pruned: List[RoleSpec] = []
    for role in roles:
        kept = tuple(op for op in role if op[0] in known)
        if kept:
            pruned.append(kept)
    return tuple(pruned)


def _fresh_method_name(monitor: Monitor, base: str) -> str:
    existing = {method.name for method in monitor.methods}
    for k in range(1, 100):
        name = f"{base}_c{k}"
        if name not in existing:
            return name
    return f"{base}_cX"


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------


def clone_method(candidate: Candidate, rng: random.Random,
                 mate: Optional[Candidate] = None) -> Optional[Candidate]:
    """Duplicate one method under a fresh name and call it from a new role.

    The clone contends on the same guards/fields as the original, so it
    multiplies waiter diversity without changing the state space's fields.
    """
    monitor = _parse(candidate)
    if monitor is None or len(monitor.methods) >= MAX_METHODS:
        return None
    method = rng.choice(monitor.methods)
    clone = dataclasses.replace(method,
                                name=_fresh_method_name(monitor, method.name))
    mutated = dataclasses.replace(monitor, methods=monitor.methods + (clone,))
    roles = list(candidate.roles)
    donor = next((role for role in roles
                  if any(op[0] == method.name for op in role)), None)
    if donor is not None:
        roles.append(tuple((clone.name if m == method.name else m, args, per_op)
                           for m, args, per_op in donor))
    else:
        roles.append(((clone.name, (), True),))
    return _emit(candidate, mutated, roles, "Cl")


def add_method(candidate: Candidate, rng: random.Random,
               mate: Optional[Candidate] = None) -> Optional[Candidate]:
    """Graft a freshly instantiated generator family onto the monitor."""
    monitor = _parse(candidate)
    if monitor is None or len(monitor.methods) >= MAX_METHODS - 1:
        return None
    if len(monitor.fields) >= MAX_FIELDS - 1:
        return None
    from repro.fuzz.generate import _FAMILY_NAMES

    family = rng.choice(_FAMILY_NAMES)
    tag = _fresh_tag(monitor)
    _name, lines, family_roles = family_lines(family, rng, tag)
    trimmed = candidate.source.rstrip()
    if not trimmed.endswith("}"):
        return None
    source = trimmed[:-1] + "\n".join(lines) + "\n}"
    try:
        merged = load_monitor(source)
    except Exception:
        return None
    return _emit(candidate, merged, tuple(candidate.roles) + tuple(family_roles),
                 "Ad")


def _fresh_tag(monitor: Monitor) -> int:
    taken = set()
    for name in monitor.field_names():
        match = re.search(r"(\d+)$", name)
        if match:
            taken.add(int(match.group(1)))
    tag = 0
    while tag in taken:
        tag += 1
    return tag


def drop_method(candidate: Candidate, rng: random.Random,
                mate: Optional[Candidate] = None) -> Optional[Candidate]:
    """Remove one method (and the role ops that called it)."""
    monitor = _parse(candidate)
    if monitor is None or len(monitor.methods) < 2:
        return None
    victim = rng.choice(monitor.methods)
    remaining = tuple(m for m in monitor.methods if m.name != victim.name)
    mutated = dataclasses.replace(monitor, methods=remaining)
    return _emit(candidate, mutated, candidate.roles, "Dr")


def _rewrite_guard_constant(guard: Expr, delta: int) -> Optional[Expr]:
    """Shift the constant side of the outermost integer comparison by *delta*.

    Results are clamped to [0, 9]: generated fields are unsigned-ish small
    counters, and a negative bound either trivializes or kills the guard
    rather than reshaping it.
    """
    for kind in (Lt, Le, Gt, Ge):
        if isinstance(guard, kind):
            if isinstance(guard.right, IntConst):
                value = guard.right.value + delta
                if not 0 <= value <= 9 or value == guard.right.value:
                    return None
                return dataclasses.replace(guard, right=IntConst(value))
            if isinstance(guard.left, IntConst):
                value = guard.left.value - delta
                if not 0 <= value <= 9 or value == guard.left.value:
                    return None
                return dataclasses.replace(guard, left=IntConst(value))
    return None


def _mutate_guards(candidate: Candidate, rng: random.Random,
                   delta_of, suffix: str) -> Optional[Candidate]:
    monitor = _parse(candidate)
    if monitor is None:
        return None
    editable: List[Tuple[int, int]] = []
    for mi, method in enumerate(monitor.methods):
        for ci, ccr in enumerate(method.ccrs):
            if not ccr.is_trivial() and delta_of(ccr.guard) is not None:
                editable.append((mi, ci))
    if not editable:
        return None
    mi, ci = rng.choice(editable)
    method = monitor.methods[mi]
    ccr = method.ccrs[ci]
    new_guard = delta_of(ccr.guard)
    new_ccr = dataclasses.replace(ccr, guard=new_guard)
    new_method = dataclasses.replace(
        method, ccrs=method.ccrs[:ci] + (new_ccr,) + method.ccrs[ci + 1:])
    mutated = dataclasses.replace(
        monitor,
        methods=monitor.methods[:mi] + (new_method,) + monitor.methods[mi + 1:])
    return _emit(candidate, mutated, candidate.roles, suffix)


def widen_guard(candidate: Candidate, rng: random.Random,
                mate: Optional[Candidate] = None) -> Optional[Candidate]:
    """Relax one numeric guard bound (``x < c`` → ``x < c+1``)."""

    def widen(guard):
        if isinstance(guard, (Lt, Le)):
            return _rewrite_guard_constant(guard, +1)
        if isinstance(guard, (Gt, Ge)):
            return _rewrite_guard_constant(guard, -1)
        return None

    return _mutate_guards(candidate, rng, widen, "Wg")


def narrow_guard(candidate: Candidate, rng: random.Random,
                 mate: Optional[Candidate] = None) -> Optional[Candidate]:
    """Tighten one numeric guard bound (``x < c`` → ``x < c-1``)."""

    def narrow(guard):
        if isinstance(guard, (Lt, Le)):
            return _rewrite_guard_constant(guard, -1)
        if isinstance(guard, (Gt, Ge)):
            return _rewrite_guard_constant(guard, +1)
        return None

    return _mutate_guards(candidate, rng, narrow, "Ng")


def permute_statements(candidate: Candidate, rng: random.Random,
                       mate: Optional[Candidate] = None) -> Optional[Candidate]:
    """Swap two adjacent statements inside one CCR body.

    A swap that moves a local's use before its declaration fails the
    validating re-parse and the operator answers ``None``.
    """
    monitor = _parse(candidate)
    if monitor is None:
        return None
    sites: List[Tuple[int, int]] = []
    for mi, method in enumerate(monitor.methods):
        for ci, ccr in enumerate(method.ccrs):
            if isinstance(ccr.body, Seq) and len(ccr.body.stmts) >= 2:
                sites.append((mi, ci))
    if not sites:
        return None
    mi, ci = rng.choice(sites)
    method = monitor.methods[mi]
    ccr = method.ccrs[ci]
    stmts = list(ccr.body.stmts)
    cut = rng.randrange(len(stmts) - 1)
    stmts[cut], stmts[cut + 1] = stmts[cut + 1], stmts[cut]
    new_ccr = dataclasses.replace(ccr, body=Seq(tuple(stmts)))
    new_method = dataclasses.replace(
        method, ccrs=method.ccrs[:ci] + (new_ccr,) + method.ccrs[ci + 1:])
    mutated = dataclasses.replace(
        monitor,
        methods=monitor.methods[:mi] + (new_method,) + monitor.methods[mi + 1:])
    return _emit(candidate, mutated, candidate.roles, "Pm")


def _rename_identifiers(source: str, names: Sequence[str], suffix: str) -> str:
    for name in sorted(names, key=len, reverse=True):
        source = re.sub(rf"\b{re.escape(name)}\b", f"{name}{suffix}", source)
    return source


def splice(candidate: Candidate, rng: random.Random,
           mate: Optional[Candidate] = None) -> Optional[Candidate]:
    """Crossover: merge the mate's fields/methods into the candidate.

    The mate's identifiers are suffix-renamed first, so the two monitors'
    regions coexist; the spliced workload runs both region's roles.
    """
    if mate is None:
        return None
    monitor = _parse(candidate)
    mate_monitor = _parse(mate)
    if monitor is None or mate_monitor is None:
        return None
    if (len(monitor.methods) + len(mate_monitor.methods) > MAX_METHODS
            or len(monitor.fields) + len(mate_monitor.fields) > MAX_FIELDS):
        return None
    mate_names = list(mate_monitor.field_names())
    mate_names += [method.name for method in mate_monitor.methods]
    renamed_source = _rename_identifiers(mate.source, mate_names, "s")
    try:
        renamed = load_monitor(renamed_source)
    except Exception:
        return None
    ours = set(monitor.field_names()) | {m.name for m in monitor.methods}
    theirs = set(renamed.field_names()) | {m.name for m in renamed.methods}
    if ours & theirs:
        return None
    merged = dataclasses.replace(
        monitor,
        fields=monitor.fields + renamed.fields,
        methods=monitor.methods + renamed.methods,
        constants=monitor.constants + renamed.constants)
    mate_roles = tuple(
        tuple((f"{m}s", args, per_op) for m, args, per_op in role)
        for role in mate.roles)
    return _emit(candidate, merged, tuple(candidate.roles) + mate_roles, "Sp")


def resize_bounds(candidate: Candidate, rng: random.Random,
                  mate: Optional[Candidate] = None) -> Optional[Candidate]:
    """Re-draw the workload's thread/op bounds within the campaign range."""
    choices = [(threads, ops)
               for threads in range(THREAD_RANGE[0], THREAD_RANGE[1] + 1)
               for ops in range(OPS_RANGE[0], OPS_RANGE[1] + 1)
               if (threads, ops) != (candidate.threads, candidate.ops)]
    threads, ops = rng.choice(choices)
    return dataclasses.replace(candidate, threads=threads, ops=ops)


#: The operator registry, keyed by the names recorded in mutation trails.
OPERATORS: Dict[str, Operator] = {
    "add-method": add_method,
    "clone-method": clone_method,
    "drop-method": drop_method,
    "widen-guard": widen_guard,
    "narrow-guard": narrow_guard,
    "permute-statements": permute_statements,
    "splice": splice,
    "resize-bounds": resize_bounds,
}

#: Operators that need a second parent.
CROSSOVER_OPERATORS = frozenset({"splice"})


def apply_operator(name: str, candidate: Candidate, seed: int,
                   mate: Optional[Candidate] = None) -> Optional[Candidate]:
    """Apply one named operator with its own derived RNG (trail-replayable)."""
    operator = OPERATORS[name]
    return operator(candidate, random.Random(seed), mate)
