"""Coverage-guided monitor fuzzing.

A corpus-driven search layer on top of the exploration engine: instead of
enumerating schedules of fixed benchmarks (``expresso explore``) or blindly
generating random monitors (the PR 2 fuzzer), the campaign keeps a persistent
corpus of *interesting* monitors, mutates them structurally, and feeds the
coverage every exploration run produces back into the next round of mutation —
the AFL/libFuzzer loop instantiated over signal-placement inputs:

* :mod:`repro.fuzz.generate` — the seeded monitor generators (migrated from
  ``explore/genmon.py``) with per-entry derived seeds;
* :mod:`repro.fuzz.mutate`   — named, seeded structural mutation and
  crossover operators on monitor ASTs;
* :mod:`repro.fuzz.coverage` — the multi-axis coverage map (scheduler-state
  shapes, independence-matrix shape, DPOR/symmetry class counts, placement
  decisions, oracle verdict kinds) and per-run fingerprints;
* :mod:`repro.fuzz.corpus`   — the JSON-on-disk corpus store with provenance
  trails and fingerprint dedup;
* :mod:`repro.fuzz.campaign` — the deterministic campaign driver
  (``expresso fuzz``), sharded over :mod:`repro.explore.parallel`.
"""

from repro.fuzz.campaign import (
    FuzzCampaignResult,
    FuzzConfig,
    run_campaign,
)
from repro.fuzz.corpus import CorpusEntry, CorpusStore, CorruptCorpusError
from repro.fuzz.coverage import COVERAGE_AXES, CoverageMap, state_shape
from repro.fuzz.generate import (
    FuzzReport,
    GeneratedMonitor,
    derive_seed,
    fuzz_pipeline,
    random_monitor,
)
from repro.fuzz.mutate import OPERATORS, apply_operator

__all__ = [
    "FuzzCampaignResult", "FuzzConfig", "run_campaign",
    "CorpusEntry", "CorpusStore", "CorruptCorpusError",
    "COVERAGE_AXES", "CoverageMap", "state_shape",
    "FuzzReport", "GeneratedMonitor", "derive_seed", "fuzz_pipeline",
    "random_monitor",
    "OPERATORS", "apply_operator",
]
