"""The persistent fuzzing corpus: JSON-on-disk seeds with provenance.

Layout of a corpus directory::

    <dir>/meta.json            campaign seed + completed-round counter
    <dir>/coverage.json        the merged CoverageMap (sorted, byte-stable)
    <dir>/findings.json        deduplicated findings with witnesses
    <dir>/entries/<id>.json    one file per corpus entry
    <dir>/journal.jsonl        write-ahead checkpoint journal (crash safety)

Crash safety: every file write is atomic (tmp + fsync + ``os.replace``), so
state files can never tear — only the *set* of files can be inconsistent
after a crash.  The campaign driver closes that window with the journal:
each completed unit of work (bootstrap, every mutation round, finalize)
appends one **self-contained checkpoint record** — the admission-ordered
entry-id list, the power-schedule pick counts, the full coverage map,
findings and result counters — so recovery never needs the state files at
all: :meth:`CorpusStore.restore_checkpoint` rewrites them from the last
valid record, and :meth:`~repro.resilience.Journal.truncate_to_valid`
handles a torn tail.  Entry files written by a crashed round are *orphans*
(absent from every checkpoint's admission list); the resumed round re-runs
deterministically and rewrites them byte-identically, so they are never
deleted, only superseded.  The converse window — a journal *ahead* of the
entry files — closes too: each checkpoint embeds its newly admitted
entries' full records (``entry_records``), and
:meth:`CorpusStore.roll_forward` replays those committed frames to rebuild
a lost ``entries/<id>.json`` byte-identically on resume or repair.

Every entry records *provenance*, not just its artifact: generated roots
carry their ``(campaign seed, index)`` derivation, mutants their parent id,
operator name, operator seed and optional crossover mate — the **mutation
trail**.  :func:`rebuild_candidate` re-derives any entry's source from seed +
trail alone, which is what makes corpora replayable and auditable.  Nothing
in any artifact depends on wall-clock time or process identity.

Dedup is by coverage fingerprint: an entry whose run's full feature set
matches an existing entry's is not admitted, so one behaviour cannot flood
the corpus however many mutants re-discover it.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fuzz.generate import (
    derive_seed,
    random_monitor,
    roles_from_json,
    roles_to_json,
)
from repro.fuzz.mutate import Candidate, apply_operator
from repro.resilience import Journal, atomic_write_json, checksum_payload


class CorruptCorpusError(RuntimeError):
    """A corpus directory is in a state the campaign refuses to build on.

    Raised instead of a traceback deep in the loader, with the offending
    path and a one-line diagnosis; ``expresso fuzz`` maps it to exit code 2
    and points at ``--resume`` / ``--repair``.
    """

    def __init__(self, root, detail: str):
        self.root = Path(root) if root is not None else None
        self.detail = detail
        super().__init__(f"corrupt corpus at {self.root}: {detail}")


@dataclasses.dataclass
class CorpusEntry:
    """One corpus seed: a monitor candidate plus provenance and coverage."""

    entry_id: str
    name: str
    source: str
    roles: Tuple
    threads: int
    ops: int
    #: Provenance: generated roots have (gen_seed, gen_index); mutants have
    #: parent/op/op_seed (+ mate for crossover).
    gen_seed: Optional[int] = None
    gen_index: Optional[int] = None
    parent: Optional[str] = None
    op: Optional[str] = None
    op_seed: Optional[int] = None
    mate: Optional[str] = None
    #: Coverage bookkeeping (all deterministic; no timing anywhere).
    fingerprint: Optional[str] = None
    features: Optional[dict] = None
    gain: int = 0                  # new features this entry's run added
    schedules_run: int = 0
    #: Power-schedule state (not persisted: rebuilt per campaign).
    picks: int = dataclasses.field(default=0, compare=False)

    def candidate(self) -> Candidate:
        return Candidate(self.name, self.source, roles_from_json(self.roles),
                         self.threads, self.ops)

    def to_dict(self) -> dict:
        record = {
            "entry_id": self.entry_id,
            "name": self.name,
            "source": self.source,
            "roles": roles_to_json(roles_from_json(self.roles)),
            "threads": self.threads,
            "ops": self.ops,
            "gen_seed": self.gen_seed,
            "gen_index": self.gen_index,
            "parent": self.parent,
            "op": self.op,
            "op_seed": self.op_seed,
            "mate": self.mate,
            "fingerprint": self.fingerprint,
            "features": ({axis: sorted(values)
                          for axis, values in sorted(self.features.items())}
                         if self.features is not None else None),
            "gain": self.gain,
            "schedules_run": self.schedules_run,
        }
        return record

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusEntry":
        return cls(
            entry_id=data["entry_id"], name=data["name"], source=data["source"],
            roles=tuple(roles_from_json(data["roles"])),
            threads=data["threads"], ops=data["ops"],
            gen_seed=data.get("gen_seed"), gen_index=data.get("gen_index"),
            parent=data.get("parent"), op=data.get("op"),
            op_seed=data.get("op_seed"), mate=data.get("mate"),
            fingerprint=data.get("fingerprint"),
            features=data.get("features"), gain=data.get("gain", 0),
            schedules_run=data.get("schedules_run", 0))


def entry_from_generated(seed: int, index: int) -> CorpusEntry:
    """A corpus root: monitor *index* of the generated corpus for *seed*."""
    generated = random_monitor(seed, index)
    return CorpusEntry(
        entry_id=f"gen-{seed}-{index}".replace("--", "-n"),
        name=generated.name, source=generated.source,
        roles=generated.roles,
        threads=3, ops=2, gen_seed=seed, gen_index=index)


def rebuild_candidate(entry: CorpusEntry,
                      lookup: Dict[str, CorpusEntry]) -> Optional[Candidate]:
    """Re-derive an entry's candidate from provenance alone (seed + trail).

    Generated roots regenerate from ``(gen_seed, gen_index)``; mutants
    rebuild their parent (and mate) recursively, then re-apply the recorded
    operator with its recorded seed.  Returns ``None`` when the trail is
    broken (missing parent) — corpora imported from elsewhere may legally
    carry source-only entries.
    """
    if entry.gen_seed is not None and entry.gen_index is not None:
        generated = random_monitor(entry.gen_seed, entry.gen_index)
        return Candidate(generated.name, generated.source, generated.roles,
                         entry.threads, entry.ops)
    if entry.parent is None or entry.op is None:
        return None
    parent = lookup.get(entry.parent)
    if parent is None:
        return None
    parent_candidate = rebuild_candidate(parent, lookup)
    if parent_candidate is None:
        return None
    # A mutated root keeps the *parent's* stored bounds (resize-bounds is the
    # only operator that changes them, and it does so deterministically).
    parent_candidate = dataclasses.replace(
        parent_candidate, threads=parent.threads, ops=parent.ops)
    mate_candidate = None
    if entry.mate is not None:
        mate_entry = lookup.get(entry.mate)
        if mate_entry is None:
            return None
        mate_candidate = rebuild_candidate(mate_entry, lookup)
        if mate_candidate is None:
            return None
    return apply_operator(entry.op, parent_candidate, entry.op_seed,
                          mate_candidate)


class CorpusStore:
    """Load/save the corpus directory (or run fully in memory with ``None``)."""

    JOURNAL_NAME = "journal.jsonl"
    STATE_FILES = ("coverage.json", "findings.json", "meta.json")

    def __init__(self, root: Optional[str] = None):
        self.root = Path(root) if root is not None else None

    def journal(self) -> Optional[Journal]:
        """The corpus's write-ahead checkpoint journal (``None`` in-memory)."""
        if self.root is None:
            return None
        return Journal(self.root / self.JOURNAL_NAME)

    # -- loading --------------------------------------------------------------

    def load_entries(self, ids: Optional[Sequence[str]] = None) -> List[CorpusEntry]:
        """Load corpus entries: all of them (id-sorted), or exactly *ids*.

        With *ids* — a checkpoint's admission-ordered list — entries come
        back in that order (the power schedule's tie-break order), orphan
        files from crashed rounds are skipped, and a *missing* admitted
        entry raises :class:`CorruptCorpusError`: the journal says it was
        admitted, so its absence means the directory was tampered with or
        lost writes the journal fsync'd.
        """
        if self.root is None:
            return []
        entries_dir = self.root / "entries"
        if ids is not None:
            entries = []
            for entry_id in ids:
                path = entries_dir / f"{entry_id}.json"
                try:
                    entries.append(CorpusEntry.from_dict(
                        json.loads(path.read_text())))
                except (OSError, ValueError, KeyError) as exc:
                    raise CorruptCorpusError(
                        self.root, f"admitted entry {entry_id!r} unreadable "
                        f"({type(exc).__name__}); run --repair") from exc
            return entries
        if not entries_dir.is_dir():
            return []
        entries = []
        for path in sorted(entries_dir.glob("*.json")):
            try:
                entries.append(CorpusEntry.from_dict(
                    json.loads(path.read_text())))
            except (ValueError, KeyError):
                continue  # a torn cache file must not kill the campaign
        return entries

    def load_coverage(self) -> Optional[dict]:
        return self._read_json("coverage.json")

    def load_findings(self) -> List[dict]:
        return self._read_json("findings.json") or []

    def load_meta(self) -> dict:
        return self._read_json("meta.json") or {}

    def _read_json(self, name: str):
        if self.root is None:
            return None
        path = self.root / name
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except ValueError:
            return None

    # -- saving ---------------------------------------------------------------

    def save_entry(self, entry: CorpusEntry) -> None:
        if self.root is None:
            return
        entries_dir = self.root / "entries"
        entries_dir.mkdir(parents=True, exist_ok=True)
        self._write_json(entries_dir / f"{entry.entry_id}.json", entry.to_dict())

    def save_state(self, coverage: dict, findings: Sequence[dict],
                   meta: dict) -> None:
        if self.root is None:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        self._write_json(self.root / "coverage.json", coverage)
        self._write_json(self.root / "findings.json", list(findings))
        self._write_json(self.root / "meta.json", meta)

    @staticmethod
    def _write_json(path: Path, payload) -> None:
        # Atomic even outside the journal path: a kill mid-write must leave
        # the previous version intact, never a torn file.
        atomic_write_json(path, payload)

    # -- crash recovery -------------------------------------------------------

    def restore_checkpoint(self, record: dict) -> None:
        """Rewrite the state files from a self-contained checkpoint record.

        Used by resume/repair to roll the directory back to its last
        journaled state — including the files-ahead-of-journal window (a
        crash after the state writes but before the checkpoint append).
        """
        if self.root is None:
            return
        self.clean_stale_tmp()
        self.save_state(record["coverage"], record["findings"], record["meta"])

    def rollback_uncommitted(self) -> List[str]:
        """Roll a store whose journal has *no* records back to empty.

        A crash before the first checkpoint append leaves entry and state
        files the journal never committed; a resume must not let them seed
        the fresh start (they may even belong to a different configuration —
        without a checkpoint record there is no fingerprint to compare).
        Returns the removed paths (relative to the root).
        """
        removed = self.clean_stale_tmp()
        if self.root is None or not self.root.is_dir():
            return removed
        entries_dir = self.root / "entries"
        state_paths = [self.root / name for name in self.STATE_FILES]
        entry_paths = (sorted(entries_dir.glob("*.json"))
                       if entries_dir.is_dir() else [])
        for path in state_paths + entry_paths:
            try:
                path.unlink()
                removed.append(str(path.relative_to(self.root)))
            except OSError:
                pass
        return removed

    def roll_forward(self, records: Sequence[dict]) -> List[str]:
        """Rebuild admitted entry files the journal committed but the
        directory lost.

        Checkpoint records embed each newly admitted entry's full record
        (``entry_records``), so when the journal is *ahead* of the entry
        files — a missing or torn ``entries/<id>.json`` the journal fsync'd
        an admission for — the committed frames are replayed instead of
        giving up: the file is rewritten through the same canonical atomic
        JSON writer ``save_entry`` used, hence byte-identically.  Entries
        admitted by journals that predate ``entry_records`` stay
        unrecoverable and are left for :meth:`load_entries`/:meth:`repair`
        to report.  Returns the restored entry ids (sorted).
        """
        if self.root is None:
            return []
        committed: Dict[str, dict] = {}
        for record in records:
            committed.update(record.get("entry_records") or {})
        if not committed:
            return []
        entries_dir = self.root / "entries"
        restored = []
        for entry_id, payload in committed.items():
            path = entries_dir / f"{entry_id}.json"
            try:
                json.loads(path.read_text())
                continue               # present and readable: leave it be
            except (OSError, ValueError):
                pass
            entries_dir.mkdir(parents=True, exist_ok=True)
            self._write_json(path, payload)
            restored.append(entry_id)
        return sorted(restored)

    def clean_stale_tmp(self) -> List[str]:
        """Remove ``*.tmp`` siblings left by writes a crash interrupted."""
        removed = []
        if self.root is None or not self.root.is_dir():
            return removed
        for directory in (self.root, self.root / "entries"):
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob("*.tmp")):
                try:
                    path.unlink()
                    removed.append(str(path.relative_to(self.root)))
                except OSError:
                    pass
        return removed

    def validate(self) -> List[str]:
        """Diagnose the directory; one human-readable line per problem.

        Checks, in dependency order: journal integrity (torn tail), state
        files against the last checkpoint's content (detects both torn
        writes and the crash window between state writes and the journal
        commit), and the presence of every admitted entry file.
        """
        problems: List[str] = []
        if self.root is None:
            return problems
        if not self.root.is_dir():
            return [f"{self.root} is not a directory"]
        journal = self.journal()
        replay = journal.replay()
        if replay.torn:
            problems.append(
                f"journal has a torn tail after {len(replay.records)} "
                f"valid record(s)")
        record = replay.last
        expected = {}
        if record is not None:
            expected = {"coverage.json": record["coverage"],
                        "findings.json": record["findings"],
                        "meta.json": record["meta"]}
        for name in self.STATE_FILES:
            path = self.root / name
            if not path.exists():
                if record is not None:
                    problems.append(f"{name} missing (journal has it)")
                continue
            try:
                payload = json.loads(path.read_text())
            except ValueError:
                problems.append(f"{name} is not valid JSON (torn write?)")
                continue
            if record is not None and (checksum_payload(payload)
                                       != checksum_payload(expected[name])):
                problems.append(f"{name} does not match the last journal "
                                f"checkpoint")
        if record is not None:
            entries_dir = self.root / "entries"
            for entry_id in record["entries"]:
                if not (entries_dir / f"{entry_id}.json").exists():
                    problems.append(f"admitted entry {entry_id} has no file")
        return problems

    def repair(self) -> dict:
        """Roll the directory back to its last valid journaled state.

        Truncates a torn journal tail, deletes stale ``*.tmp`` files,
        rolls missing admitted entry files *forward* from the committed
        checkpoint frames (:meth:`roll_forward`), and rewrites the state
        files from the last checkpoint.  Returns a summary dict (what was
        truncated/removed/restored).  Raises :class:`CorruptCorpusError`
        only when an admitted entry file is gone *and* no journal frame
        carries its record (pre-``entry_records`` journals) — that state is
        unrecoverable without re-running the campaign.
        """
        summary = {"journal_records": 0, "journal_truncated": False,
                   "tmp_removed": [], "entries_restored": [],
                   "state_restored": False}
        if self.root is None or not self.root.is_dir():
            return summary
        journal = self.journal()
        replay = journal.truncate_to_valid()
        summary["journal_records"] = len(replay.records)
        summary["journal_truncated"] = replay.torn
        summary["tmp_removed"] = self.clean_stale_tmp()
        if replay.last is not None:
            summary["entries_restored"] = self.roll_forward(replay.records)
            missing = [entry_id for entry_id in replay.last["entries"]
                       if not (self.root / "entries"
                               / f"{entry_id}.json").exists()]
            if missing:
                raise CorruptCorpusError(
                    self.root, f"admitted entries lost: {', '.join(missing)}")
            self.restore_checkpoint(replay.last)
            summary["state_restored"] = True
        else:
            # No committed record at all: everything on disk is uncommitted.
            summary["tmp_removed"] += self.rollback_uncommitted()
        return summary
