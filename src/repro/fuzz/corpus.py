"""The persistent fuzzing corpus: JSON-on-disk seeds with provenance.

Layout of a corpus directory::

    <dir>/meta.json            campaign seed + completed-round counter
    <dir>/coverage.json        the merged CoverageMap (sorted, byte-stable)
    <dir>/findings.json        deduplicated findings with witnesses
    <dir>/entries/<id>.json    one file per corpus entry

Every entry records *provenance*, not just its artifact: generated roots
carry their ``(campaign seed, index)`` derivation, mutants their parent id,
operator name, operator seed and optional crossover mate — the **mutation
trail**.  :func:`rebuild_candidate` re-derives any entry's source from seed +
trail alone, which is what makes corpora replayable and auditable.  Nothing
in any artifact depends on wall-clock time or process identity.

Dedup is by coverage fingerprint: an entry whose run's full feature set
matches an existing entry's is not admitted, so one behaviour cannot flood
the corpus however many mutants re-discover it.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fuzz.generate import (
    derive_seed,
    random_monitor,
    roles_from_json,
    roles_to_json,
)
from repro.fuzz.mutate import Candidate, apply_operator


@dataclasses.dataclass
class CorpusEntry:
    """One corpus seed: a monitor candidate plus provenance and coverage."""

    entry_id: str
    name: str
    source: str
    roles: Tuple
    threads: int
    ops: int
    #: Provenance: generated roots have (gen_seed, gen_index); mutants have
    #: parent/op/op_seed (+ mate for crossover).
    gen_seed: Optional[int] = None
    gen_index: Optional[int] = None
    parent: Optional[str] = None
    op: Optional[str] = None
    op_seed: Optional[int] = None
    mate: Optional[str] = None
    #: Coverage bookkeeping (all deterministic; no timing anywhere).
    fingerprint: Optional[str] = None
    features: Optional[dict] = None
    gain: int = 0                  # new features this entry's run added
    schedules_run: int = 0
    #: Power-schedule state (not persisted: rebuilt per campaign).
    picks: int = dataclasses.field(default=0, compare=False)

    def candidate(self) -> Candidate:
        return Candidate(self.name, self.source, roles_from_json(self.roles),
                         self.threads, self.ops)

    def to_dict(self) -> dict:
        record = {
            "entry_id": self.entry_id,
            "name": self.name,
            "source": self.source,
            "roles": roles_to_json(roles_from_json(self.roles)),
            "threads": self.threads,
            "ops": self.ops,
            "gen_seed": self.gen_seed,
            "gen_index": self.gen_index,
            "parent": self.parent,
            "op": self.op,
            "op_seed": self.op_seed,
            "mate": self.mate,
            "fingerprint": self.fingerprint,
            "features": ({axis: sorted(values)
                          for axis, values in sorted(self.features.items())}
                         if self.features is not None else None),
            "gain": self.gain,
            "schedules_run": self.schedules_run,
        }
        return record

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusEntry":
        return cls(
            entry_id=data["entry_id"], name=data["name"], source=data["source"],
            roles=tuple(roles_from_json(data["roles"])),
            threads=data["threads"], ops=data["ops"],
            gen_seed=data.get("gen_seed"), gen_index=data.get("gen_index"),
            parent=data.get("parent"), op=data.get("op"),
            op_seed=data.get("op_seed"), mate=data.get("mate"),
            fingerprint=data.get("fingerprint"),
            features=data.get("features"), gain=data.get("gain", 0),
            schedules_run=data.get("schedules_run", 0))


def entry_from_generated(seed: int, index: int) -> CorpusEntry:
    """A corpus root: monitor *index* of the generated corpus for *seed*."""
    generated = random_monitor(seed, index)
    return CorpusEntry(
        entry_id=f"gen-{seed}-{index}".replace("--", "-n"),
        name=generated.name, source=generated.source,
        roles=generated.roles,
        threads=3, ops=2, gen_seed=seed, gen_index=index)


def rebuild_candidate(entry: CorpusEntry,
                      lookup: Dict[str, CorpusEntry]) -> Optional[Candidate]:
    """Re-derive an entry's candidate from provenance alone (seed + trail).

    Generated roots regenerate from ``(gen_seed, gen_index)``; mutants
    rebuild their parent (and mate) recursively, then re-apply the recorded
    operator with its recorded seed.  Returns ``None`` when the trail is
    broken (missing parent) — corpora imported from elsewhere may legally
    carry source-only entries.
    """
    if entry.gen_seed is not None and entry.gen_index is not None:
        generated = random_monitor(entry.gen_seed, entry.gen_index)
        return Candidate(generated.name, generated.source, generated.roles,
                         entry.threads, entry.ops)
    if entry.parent is None or entry.op is None:
        return None
    parent = lookup.get(entry.parent)
    if parent is None:
        return None
    parent_candidate = rebuild_candidate(parent, lookup)
    if parent_candidate is None:
        return None
    # A mutated root keeps the *parent's* stored bounds (resize-bounds is the
    # only operator that changes them, and it does so deterministically).
    parent_candidate = dataclasses.replace(
        parent_candidate, threads=parent.threads, ops=parent.ops)
    mate_candidate = None
    if entry.mate is not None:
        mate_entry = lookup.get(entry.mate)
        if mate_entry is None:
            return None
        mate_candidate = rebuild_candidate(mate_entry, lookup)
        if mate_candidate is None:
            return None
    return apply_operator(entry.op, parent_candidate, entry.op_seed,
                          mate_candidate)


class CorpusStore:
    """Load/save the corpus directory (or run fully in memory with ``None``)."""

    def __init__(self, root: Optional[str] = None):
        self.root = Path(root) if root is not None else None

    # -- loading --------------------------------------------------------------

    def load_entries(self) -> List[CorpusEntry]:
        if self.root is None:
            return []
        entries_dir = self.root / "entries"
        if not entries_dir.is_dir():
            return []
        entries = []
        for path in sorted(entries_dir.glob("*.json")):
            try:
                entries.append(CorpusEntry.from_dict(
                    json.loads(path.read_text())))
            except (ValueError, KeyError):
                continue  # a torn cache file must not kill the campaign
        return entries

    def load_coverage(self) -> Optional[dict]:
        return self._read_json("coverage.json")

    def load_findings(self) -> List[dict]:
        return self._read_json("findings.json") or []

    def load_meta(self) -> dict:
        return self._read_json("meta.json") or {}

    def _read_json(self, name: str):
        if self.root is None:
            return None
        path = self.root / name
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except ValueError:
            return None

    # -- saving ---------------------------------------------------------------

    def save_entry(self, entry: CorpusEntry) -> None:
        if self.root is None:
            return
        entries_dir = self.root / "entries"
        entries_dir.mkdir(parents=True, exist_ok=True)
        self._write_json(entries_dir / f"{entry.entry_id}.json", entry.to_dict())

    def save_state(self, coverage: dict, findings: Sequence[dict],
                   meta: dict) -> None:
        if self.root is None:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        self._write_json(self.root / "coverage.json", coverage)
        self._write_json(self.root / "findings.json", list(findings))
        self._write_json(self.root / "meta.json", meta)

    @staticmethod
    def _write_json(path: Path, payload) -> None:
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
