"""The multi-signal coverage map: what an exploration run *discovered*.

Every fuzzing run is fingerprinted along five axes, all derived from
artifacts the pipeline and engine already produce (and previously threw
away between runs):

* ``state``     — abstracted scheduler-state shapes (:func:`state_shape`
  applied to every fingerprint the run visited);
* ``matrix``    — the shape of the SMT-proven semantic-independence matrix
  (method-index pairs proven independent, names abstracted away);
* ``dpor``      — per-run DPOR/symmetry class counts, log-bucketed so noise
  does not masquerade as coverage;
* ``placement`` — the decision pattern :mod:`repro.placement.algorithm`
  chose (signal/broadcast, conditional, §4.3 usage) as a multiset;
* ``verdict``   — the oracle verdict kinds the run produced.

Features are canonical *strings* (so maps serialize byte-identically),
grouped per axis.  :class:`CoverageMap` unions features deterministically,
reports how many were new — the power-schedule signal — and fingerprints a
run's full feature set (the corpus/finding dedup key).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

#: The canonical axis order (serialization and reporting follow it).
COVERAGE_AXES: Tuple[str, ...] = (
    "state", "matrix", "dpor", "placement", "verdict")


# ---------------------------------------------------------------------------
# The scheduler-state shape abstraction
# ---------------------------------------------------------------------------


def _abstract_value(value) -> str:
    """Abstract one shared-field value: exact small ints, clamped large ones."""
    if isinstance(value, bool):
        return "T" if value else "F"
    if isinstance(value, int):
        return str(value) if -4 <= value <= 4 else ("big" if value > 0 else "neg")
    if value is None:
        return "?"
    if isinstance(value, tuple):
        return f"t{len(value)}"
    return "o"


def state_shape(fingerprint: tuple) -> tuple:
    """Abstract a raw scheduler fingerprint into a name-free *shape*.

    Field and method identifiers are dropped (values keep their name-sorted
    order, so structure survives) and thread entries reduce to
    ``(status, sleeping?, op index)``; a mutant that merely renames a method
    therefore discovers nothing, while one that adds a field, another waiter
    or a new reachable value combination genuinely does.  Used identically
    for the coverage-guided campaign and the random baseline, so
    coverage-per-schedule comparisons are apples to apples.
    """
    if not fingerprint:
        return ()
    shared = fingerprint[0]
    threads = fingerprint[1] if len(fingerprint) > 1 else ()
    values = tuple(_abstract_value(value) for _name, value in shared)
    entries = []
    for entry in threads:
        if entry and isinstance(entry[0], tuple):
            entries.extend(entry)  # symmetry-canonicalized group
        else:
            entries.append(entry)
    thread_part = tuple(sorted(
        (entry[0], entry[1] is not None, entry[2] if len(entry) > 2 else 0)
        for entry in entries if isinstance(entry, tuple) and len(entry) >= 2))
    return (values, thread_part)


# ---------------------------------------------------------------------------
# Feature extraction
# ---------------------------------------------------------------------------


def _bucket(count: int) -> int:
    """Log-bucket a counter (0, 1, 2, 3-4, 5-8, ...)."""
    return count if count <= 2 else count.bit_length() + 1


def matrix_features(explicit, matrix) -> Set[str]:
    """The semantic-independence-matrix shape as features.

    Method names are mapped to their declaration index, so two monitors
    whose matrices have the same *shape* share the feature regardless of
    naming; the method count itself is a feature too.
    """
    order = {method.name: index for index, method in enumerate(explicit.methods)}
    features = {f"methods:{len(order)}"}
    if not matrix:
        return features
    pairs = sorted(
        tuple(sorted((order.get(a, -1), order.get(b, -1))))
        for (a, b), independent in matrix.items() if independent)
    digest = hashlib.blake2b(repr(pairs).encode(), digest_size=8).hexdigest()
    features.add(f"shape:{digest}")
    features.add(f"independent:{_bucket(len(pairs))}")
    return features


def placement_features(signature: Sequence[Tuple]) -> Set[str]:
    """The placement-decision pattern as a multiset of decision kinds."""
    counts: Dict[str, int] = {}
    for _label, needs, conditional, broadcast, used_comm in signature:
        if not needs:
            kind = "none"
        else:
            kind = "broadcast" if broadcast else "signal"
            kind += "?" if conditional else "!"
            if used_comm:
                kind += "+4.3"
        counts[kind] = counts.get(kind, 0) + 1
    return {f"{kind}:{_bucket(count)}" for kind, count in counts.items()}


def dpor_features(result) -> Set[str]:
    """Log-bucketed reduction statistics of one exploration run."""
    return {
        f"judged:{_bucket(result.schedules_run)}",
        f"states:{_bucket(result.distinct_states)}",
        f"por:{_bucket(result.por_skipped)}",
        f"sym:{_bucket(result.symmetry_skipped)}",
        f"exhausted:{result.exhausted}",
    }


def verdict_features(result) -> Set[str]:
    features = set()
    if result.completed:
        features.add("completed")
    if result.stalls:
        features.add("stall")
    for failure in result.failures:
        features.add(f"failure:{failure.kind}")
    return features or {"empty"}


def run_features(result, explicit=None, matrix=None,
                 placement_signature=None) -> Dict[str, Set[str]]:
    """All coverage features of one exploration run, grouped by axis."""
    features: Dict[str, Set[str]] = {
        "state": {format(shape, "x") for shape in (result.state_shapes or ())},
        "dpor": dpor_features(result),
        "verdict": verdict_features(result),
        "matrix": (matrix_features(explicit, matrix)
                   if explicit is not None else set()),
        "placement": (placement_features(placement_signature)
                      if placement_signature else set()),
    }
    return features


# ---------------------------------------------------------------------------
# The map
# ---------------------------------------------------------------------------


def coverage_fingerprint(features: Mapping[str, Iterable[str]]) -> str:
    """A stable hex fingerprint of one run's full feature set."""
    canonical = [(axis, sorted(set(features.get(axis, ()))))
                 for axis in COVERAGE_AXES]
    digest = hashlib.blake2b(repr(canonical).encode(), digest_size=16)
    return digest.hexdigest()


class CoverageMap:
    """The campaign-global union of discovered features, per axis.

    Merging is pure set union applied in a deterministic order (the campaign
    folds worker results by batch-slot index), so the serialized map is
    byte-identical across runs and worker counts.
    """

    def __init__(self, axes: Mapping[str, Iterable[str]] = ()):
        self.axes: Dict[str, Set[str]] = {axis: set() for axis in COVERAGE_AXES}
        if axes:
            for axis, values in dict(axes).items():
                self.axes.setdefault(axis, set()).update(values)

    def add(self, features: Mapping[str, Iterable[str]]) -> int:
        """Union one run's features in; returns how many were new."""
        new = 0
        for axis, values in features.items():
            bucket = self.axes.setdefault(axis, set())
            for value in values:
                if value not in bucket:
                    bucket.add(value)
                    new += 1
        return new

    def preview(self, features: Mapping[str, Iterable[str]]) -> int:
        """How many of *features* would be new, without adding them."""
        new = 0
        for axis, values in features.items():
            bucket = self.axes.get(axis, set())
            new += sum(1 for value in set(values) if value not in bucket)
        return new

    def total(self) -> int:
        return sum(len(values) for values in self.axes.values())

    def counts(self) -> Dict[str, int]:
        return {axis: len(self.axes.get(axis, ())) for axis in COVERAGE_AXES}

    def to_dict(self) -> dict:
        return {axis: sorted(self.axes.get(axis, ()))
                for axis in COVERAGE_AXES}

    @classmethod
    def from_dict(cls, data: Mapping[str, Iterable[str]]) -> "CoverageMap":
        return cls(data)
