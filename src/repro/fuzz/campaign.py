"""The coverage-guided fuzzing campaign driver (``expresso fuzz``).

The loop is the classic greybox cycle instantiated over monitor programs:

1. **bootstrap** — evaluate generated roots until the corpus has seeds;
2. **select** — a power schedule picks parents, favouring entries whose run
   added new coverage (``gain``) and spreading picks across the corpus;
3. **mutate** — a rendezvous-hashed operator (deterministic per
   ``(campaign seed, round, slot)``) transforms the parent's monitor AST,
   falling back through the operator order and finally to fresh generation;
4. **evaluate** — candidates are sharded over the
   :func:`repro.explore.parallel.map_jobs` worker pool: each job compiles the
   monitor, explores it, and extracts coverage features + findings (with
   Definition 3.4 witnesses);
5. **merge** — results are folded in batch-slot order: the coverage map
   unions deterministically, fingerprint-novel candidates join the corpus,
   findings are deduplicated by (kind, minimized schedule, coverage
   fingerprint).

Everything observable — the corpus, the coverage map, the finding set — is a
pure function of the campaign seed, the starting corpus and the budget; the
worker count only changes wall-clock time.  The budget counts **judged
schedules**, so equal-budget comparisons against the blind
:func:`repro.fuzz.generate.fuzz_pipeline` baseline are fair.

Crash safety: with an on-disk store, the driver appends one self-contained
**checkpoint record** to the corpus journal after the bootstrap and after
every mutation round — admission-ordered entry ids, power-schedule picks,
coverage, findings, and the result counters.  ``resume=True`` restores the
last checkpoint and continues the *same* invocation; because checkpoints
carry no timing and every round is a pure function of (seed, round index,
restored state), a campaign killed at any point and resumed produces a
byte-identical corpus directory — journal included — to one that never
crashed.  Candidate evaluation runs under the worker supervisor: a worker
death or hang is retried and, at worst, quarantined into
``compile_errors`` as a per-candidate ``worker:`` error.

Distributed campaigns: with ``config.distrib`` pointing at a shared
:class:`~repro.distrib.CampaignStore`, candidate batches are dispatched
through the store's lease-based work-stealing queue
(:func:`repro.distrib.queue_map`) instead of a statically partitioned pool.
Any process pointed at the store — the driver, its pool workers, extra
``expresso fuzz --store PATH --helper`` invocations — claims units under TTL
leases; a crashed worker's unit is stolen after the lease expires.  Unit ids
are keyed by entry id, so a resumed driver re-enqueueing a replayed round
reuses stored results and merges stay deterministic.  The driver mirrors
every checkpoint into the store (corpus index, coverage map, checkpoint
frontier) and checkpoint records additionally embed each newly admitted
entry's full record (``entry_records``), so a corpus directory whose journal
is *ahead* of its entry files rolls forward on resume/repair instead of
failing.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.distrib import (
    CampaignStore,
    DistribConfig,
    mark_active,
    mark_finished,
    queue_map,
)
from repro.explore.parallel import map_jobs
from repro.fuzz.corpus import (
    CorpusEntry,
    CorpusStore,
    CorruptCorpusError,
    entry_from_generated,
)
from repro.fuzz.coverage import CoverageMap, coverage_fingerprint, run_features
from repro.fuzz.generate import balanced_workload, derive_seed, roles_from_json, roles_to_json
from repro.fuzz.mutate import CROSSOVER_OPERATORS, OPERATORS, apply_operator
from repro.resilience import JobFailure, SupervisorConfig, fault_check


@dataclass
class FuzzConfig:
    """Campaign knobs (all deterministic inputs)."""

    seed: int = 0
    budget: int = 2000            # total judged schedules this invocation
    per_run_budget: int = 120     # engine budget per candidate
    threads: int = 3              # bootstrap workload bounds (mutable by
    ops: int = 2                  # the resize-bounds operator)
    batch_size: int = 8
    bootstrap: int = 8
    max_findings: int = 10
    max_rounds: int = 1000
    workers: int = 1
    strategy: str = "dfs"
    max_steps: int = 20_000
    trace: bool = False           # flight recorder: per-candidate shard traces
    #: Continue the last journaled invocation (rolling the corpus back to
    #: its last valid checkpoint first) instead of starting a new one.
    resume: bool = False
    #: Worker supervision knobs (per-job deadline, retry budget); ``None``
    #: uses the supervisor defaults.
    supervisor: Optional[SupervisorConfig] = None
    #: Distributed fabric: when set (with a ``store_path``), candidate
    #: batches go through the shared store's work-stealing queue so
    #: cooperating processes evaluate units too.
    distrib: Optional[DistribConfig] = None

    def fingerprint_dict(self) -> dict:
        """The deterministic inputs a resumed invocation must match.

        ``workers``, ``trace`` and ``distrib`` (store topology and lease
        knobs) are excluded: they change wall-clock behaviour only, never
        the campaign's observable results.
        """
        return {"seed": self.seed, "budget": self.budget,
                "per_run_budget": self.per_run_budget,
                "threads": self.threads, "ops": self.ops,
                "batch_size": self.batch_size, "bootstrap": self.bootstrap,
                "max_findings": self.max_findings,
                "max_rounds": self.max_rounds, "strategy": self.strategy,
                "max_steps": self.max_steps}


@dataclass
class FuzzCampaignResult:
    """Everything one campaign invocation produced (timing kept out of
    :meth:`to_dict` so artifacts stay byte-stable)."""

    seed: int
    budget: int
    workers: int
    strategy: str
    rounds: int = 0
    monitors: int = 0
    schedules_run: int = 0
    corpus_size: int = 0
    corpus_added: int = 0
    new_features: int = 0
    coverage_counts: Dict[str, int] = field(default_factory=dict)
    coverage_total: int = 0
    findings: List[dict] = field(default_factory=list)
    duplicate_findings: int = 0
    compile_errors: List[dict] = field(default_factory=list)
    operator_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    #: Flight-recorder payloads (driver shard first, then candidate shards in
    #: batch-slot order) — excluded from :meth:`to_dict` like all timing.
    trace_shards: Optional[List[list]] = field(default=None, repr=False)
    metrics_snapshot: Optional[Dict[str, int]] = field(default=None, repr=False)
    #: Shared-store lease counters (``distrib.*``) when the campaign ran
    #: against a distributed store; ``None`` — and absent from
    #: :meth:`to_dict` — otherwise, keeping legacy artifacts byte-stable.
    distrib: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def coverage_per_schedule(self) -> float:
        if self.schedules_run <= 0:
            return 0.0
        return self.coverage_total / self.schedules_run

    def to_dict(self) -> dict:
        record = {
            "seed": self.seed,
            "budget": self.budget,
            "workers": self.workers,
            "strategy": self.strategy,
            "rounds": self.rounds,
            "monitors": self.monitors,
            "schedules_run": self.schedules_run,
            "corpus_size": self.corpus_size,
            "corpus_added": self.corpus_added,
            "new_features": self.new_features,
            "coverage_counts": dict(sorted(self.coverage_counts.items())),
            "coverage_total": self.coverage_total,
            "findings": list(self.findings),
            "duplicate_findings": self.duplicate_findings,
            "compile_errors": list(self.compile_errors),
            "operator_stats": {name: dict(sorted(stats.items()))
                               for name, stats in
                               sorted(self.operator_stats.items())},
            "ok": self.ok,
        }
        # Lease counters are timing-dependent (renewals, steals), so they
        # only appear when a shared store was actually in play.
        if self.distrib is not None:
            record["distrib"] = {name: int(value) for name, value in
                                 sorted(self.distrib.items())}
        return record


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


#: One pipeline (with a shared formula cache) per worker process: SMT
#: compilation dominates campaign wall time and mutants share most of their
#: bodies with their parents, so memoized validity/commute verdicts pay for
#: themselves immediately.  Caches change speed, never verdicts, so
#: determinism is unaffected.
_WORKER_PIPELINE = None


def _worker_pipeline():
    global _WORKER_PIPELINE
    if _WORKER_PIPELINE is None:
        from repro.placement.pipeline import ExpressoPipeline
        from repro.smt.cache import FormulaCache

        _WORKER_PIPELINE = ExpressoPipeline(cache=FormulaCache())
    return _WORKER_PIPELINE


def _evaluate_candidate(job: dict) -> dict:
    """Compile + explore one candidate and extract its coverage (pool job).

    Traced jobs run inside their own observability session (sessions nest by
    save/restore, so the in-process ``workers=1`` path behaves exactly like a
    pool worker) and ship the raw events + counter snapshot home with the
    outcome; the driver merges them in batch-slot order.
    """
    fault_check("fuzz.candidate", token=job["entry_id"])
    if not job.get("trace"):
        return _evaluate_candidate_inner(job)
    with obs.observe(trace=True) as session:
        with session.tracer.span("fuzz.candidate", cat="fuzz",
                                 entry=job["entry_id"]) as span:
            outcome = _evaluate_candidate_inner(job)
            span.set(ok=outcome.get("ok", False),
                     error="error" in outcome)
    outcome["trace_events"] = session.tracer.events
    outcome["metrics"] = session.registry.snapshot()
    return outcome


def _evaluate_candidate_inner(job: dict) -> dict:
    from repro.explore.engine import coop_class_for_explicit, explore_class
    from repro.fuzz.coverage import state_shape

    base = {"entry_id": job["entry_id"], "schedules_run": 0}
    try:
        compiled = _worker_pipeline().compile(job["source"])
    except Exception as exc:
        return {**base, "error": f"compile: {type(exc).__name__}: {exc}"}
    try:
        semantic = job["strategy"] == "dfs"
        coop_class = coop_class_for_explicit(
            compiled.explicit, semantic=semantic, placement=compiled.placement)
        # The codegen hook embedded the placement signature in the class;
        # read it back so coverage extraction and any worker that rebuilds
        # the class from source consume the same artifact.
        signature = coop_class._coop_placement
        programs = balanced_workload(roles_from_json(job["roles"]),
                                     job["threads"], job["ops"])
        result = explore_class(
            compiled.monitor, coop_class, programs,
            strategy=job["strategy"], budget=job["budget"],
            seed=job["explore_seed"], max_steps=job["max_steps"],
            stop_on_failure=True, minimize=True,
            benchmark=job["name"], discipline="fuzz",
            por=True, semantic=semantic, symmetry=True,
            state_shape=state_shape, witness=True)
    except Exception as exc:
        return {**base, "error": f"explore: {type(exc).__name__}: {exc}"}
    features = run_features(
        result, explicit=compiled.explicit,
        matrix=getattr(coop_class, "_coop_semantic", None),
        placement_signature=signature)
    outcome = {
        "entry_id": job["entry_id"],
        "features": {axis: sorted(values) for axis, values in features.items()},
        "fingerprint": coverage_fingerprint(features),
        "schedules_run": result.schedules_run,
        "summary": {
            "schedules_run": result.schedules_run,
            "completed": result.completed,
            "stalls": result.stalls,
            "distinct_states": result.distinct_states,
            "exhausted": result.exhausted,
        },
        "ok": result.ok,
        "failures": [failure.to_dict() for failure in result.failures],
    }
    # A dirty static analysis on a generated monitor is triage signal for any
    # dynamic finding; clean reports stay out to keep artifacts stable.
    if compiled.lint_report is not None and not compiled.lint_report.clean:
        outcome["lint"] = compiled.lint_report.to_dict()
    return outcome


# ---------------------------------------------------------------------------
# Selection
# ---------------------------------------------------------------------------


def _select_parent(entries: Sequence[CorpusEntry],
                   exclude: Optional[str] = None) -> Optional[CorpusEntry]:
    """Power schedule: favour high-gain seeds, spread picks across the corpus.

    Score is ``(gain + 1) / (picks + 1)`` — a seed whose last run added new
    coverage outranks exhausted ones, and every pick decays the seed so the
    schedule cycles through the corpus instead of fixating.  Ties break by
    corpus order, which is deterministic (load order, then admission order).
    """
    best = None
    best_score = None
    for index, entry in enumerate(entries):
        if entry.entry_id == exclude:
            continue
        score = ((entry.gain + 1) / (entry.picks + 1), -index)
        if best_score is None or score > best_score:
            best, best_score = entry, score
    return best


def _select_operator(slot_seed: int, corpus_size: int) -> List[str]:
    """Operator preference order for one slot (rendezvous-hashed).

    Returns the full registry sorted by each operator's derived digest, so
    the driver can fall through deterministically when an operator does not
    apply; crossover is excluded while the corpus cannot supply a mate.
    """
    names = [name for name in OPERATORS
             if corpus_size >= 2 or name not in CROSSOVER_OPERATORS]
    return sorted(names, key=lambda name: derive_seed(slot_seed, name),
                  reverse=True)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def _entry_job(entry: CorpusEntry, config: FuzzConfig) -> dict:
    return {
        "entry_id": entry.entry_id,
        "name": entry.name,
        "source": entry.source,
        "roles": roles_to_json(roles_from_json(entry.roles)),
        "threads": entry.threads,
        "ops": entry.ops,
        "strategy": config.strategy,
        "budget": config.per_run_budget,
        "max_steps": config.max_steps,
        "explore_seed": derive_seed(config.seed, entry.entry_id) % (2 ** 31),
        "trace": config.trace,
    }


def run_campaign(config: FuzzConfig,
                 store: Optional[CorpusStore] = None) -> FuzzCampaignResult:
    """Run one deterministic coverage-guided campaign invocation."""
    if config.trace and not obs.tracer().enabled:
        # Open the flight recorder once and re-enter: the driver's own spans
        # and power-schedule counters land in this session, each candidate's
        # events arrive as worker shards on the outcome dicts.
        with obs.observe(trace=True) as session:
            result = run_campaign(config, store)
        result.trace_shards = ([session.tracer.events]
                               + (result.trace_shards or []))
        result.metrics_snapshot = session.registry.snapshot()
        return result
    store = store or CorpusStore(None)
    start = time.perf_counter()
    result = FuzzCampaignResult(seed=config.seed, budget=config.budget,
                                workers=config.workers,
                                strategy=config.strategy)
    dstore: Optional[CampaignStore] = None
    if config.distrib is not None and config.distrib.store_path:
        dstore = CampaignStore(config.distrib.store_path)
        dstore.bind_campaign(config.fingerprint_dict())
        mark_active(dstore, config.distrib)

    # -- journal recovery / restore -------------------------------------------
    journal = store.journal()
    checkpoint_record = None
    journal_records: List[dict] = []
    if journal is not None and journal.exists():
        if config.resume:
            replay = journal.truncate_to_valid()
        else:
            replay = journal.replay()
            if replay.torn:
                raise CorruptCorpusError(
                    store.root, "journal has a torn tail; rerun with "
                    "--resume (or --repair) to roll back to the last "
                    "valid checkpoint")
        checkpoint_record = replay.last
        journal_records = replay.records
    resuming = config.resume and checkpoint_record is not None
    if resuming:
        if checkpoint_record["config"] != config.fingerprint_dict():
            raise CorruptCorpusError(
                store.root, "checkpoint was written by a campaign with "
                "different parameters; resume with the original flags")
        store.restore_checkpoint(checkpoint_record)
        # A journal ahead of the entry files (lost/tampered directory, but
        # committed frames survive) rolls forward instead of failing: the
        # checkpoint records carry every admitted entry's full record.
        store.roll_forward(journal_records)
        entries = store.load_entries(ids=checkpoint_record["entries"])
        picks = checkpoint_record["picks"]
        for entry in entries:
            entry.picks = int(picks.get(entry.entry_id, 0))
        counters = checkpoint_record["result"]
        result.monitors = counters["monitors"]
        result.schedules_run = counters["schedules_run"]
        result.corpus_added = counters["corpus_added"]
        result.new_features = counters["new_features"]
        result.duplicate_findings = counters["duplicate_findings"]
        result.compile_errors = [dict(item) for item
                                 in counters["compile_errors"]]
        result.operator_stats = {name: dict(stats) for name, stats in
                                 counters["operator_stats"].items()}
    else:
        if config.resume:
            # Nothing journaled yet: nothing was ever committed, so the
            # resume is a fresh start — and any entry/state files a crash
            # left behind before the first checkpoint are uncommitted and
            # must not seed it.
            store.rollback_uncommitted()
        elif checkpoint_record is not None:
            problems = store.validate()
            if problems:
                raise CorruptCorpusError(
                    store.root, "state files disagree with the journal "
                    f"({'; '.join(problems)}); rerun with --resume or "
                    "--repair")
        entries = store.load_entries()
    known_ids = {entry.entry_id for entry in entries}
    checkpointed_ids = set(known_ids)
    coverage = CoverageMap.from_dict(store.load_coverage() or {})
    fingerprints = {entry.fingerprint for entry in entries
                    if entry.fingerprint}
    findings: Dict[Tuple, dict] = {}
    for record in store.load_findings():
        key = (record.get("kind"), tuple(record.get("minimized", ())),
               record.get("coverage_fingerprint"))
        findings[key] = record
    if resuming:
        round_index = int(checkpoint_record["round_index"])
        rounds_restored = int(checkpoint_record["rounds_this_run"])
        bootstrap_done = bool(checkpoint_record["bootstrap_done"])
    else:
        meta = store.load_meta()
        round_index = int(meta.get("rounds_completed", 0))
        rounds_restored = 0
        bootstrap_done = False
    tracer = obs.tracer()
    metrics = obs.registry() if tracer.enabled else None
    worker_shards: List[list] = []

    def operator_stat(name: str) -> Dict[str, int]:
        return result.operator_stats.setdefault(
            name, {"applied": 0, "rejected": 0, "new_coverage": 0, "findings": 0})

    def merge_outcome(outcome, entry: CorpusEntry, op_name: Optional[str]) -> None:
        if isinstance(outcome, JobFailure):
            # The supervisor quarantined this candidate's worker: record it
            # like a compile error — per-candidate, never campaign-fatal.
            outcome = outcome.error_dict(entry_id=entry.entry_id)
        if metrics is not None:
            events = outcome.pop("trace_events", None)
            if events:
                worker_shards.append(events)
            worker_metrics = outcome.pop("metrics", None)
            if worker_metrics:
                metrics.merge(worker_metrics)
            metrics.inc("fuzz.candidates")
        result.monitors += 1
        result.schedules_run += outcome.get("schedules_run", 0)
        if "error" in outcome:
            result.compile_errors.append({"entry_id": outcome["entry_id"],
                                          "error": outcome["error"]})
            return
        entry.fingerprint = outcome["fingerprint"]
        entry.features = outcome["features"]
        entry.schedules_run = outcome["summary"]["schedules_run"]
        gain = coverage.add(outcome["features"])
        entry.gain = gain
        result.new_features += gain
        if op_name is not None and gain:
            operator_stat(op_name)["new_coverage"] += 1
        novel = entry.fingerprint not in fingerprints
        if gain and novel:
            fingerprints.add(entry.fingerprint)
            entries.append(entry)
            known_ids.add(entry.entry_id)
            store.save_entry(entry)
            result.corpus_added += 1
        for failure in outcome.get("failures", ()):
            key = (failure.get("kind"), tuple(failure.get("minimized", ())),
                   outcome["fingerprint"])
            if key in findings:
                result.duplicate_findings += 1
                continue
            if op_name is not None:
                operator_stat(op_name)["findings"] += 1
            findings[key] = {
                "entry_id": entry.entry_id,
                "monitor": entry.name,
                "source": entry.source,
                "roles": roles_to_json(roles_from_json(entry.roles)),
                "threads": entry.threads,
                "ops": entry.ops,
                "coverage_fingerprint": outcome["fingerprint"],
                **failure,
            }
            if "lint" in outcome:
                findings[key]["lint"] = outcome["lint"]

    def budget_left() -> bool:
        return (result.schedules_run < config.budget
                and len(findings) < config.max_findings)

    def evaluate_batch(jobs: List[dict], batch: str,
                       keys: List[str]) -> List:
        """Dispatch one candidate batch: work-stealing queue or pool.

        With a shared store, unit ids are ``<batch>/<entry id>`` — stable
        across resumes even though a replayed round skips already-admitted
        entries, so stored results always line back up with their jobs.
        """
        if dstore is not None:
            mark_active(dstore, config.distrib)
            return queue_map(_evaluate_candidate, jobs, dstore, batch,
                             config.distrib, workers=config.workers,
                             keys=keys)
        return map_jobs(_evaluate_candidate, jobs, config.workers,
                        supervisor=config.supervisor)

    def ordered_findings_list() -> List[dict]:
        return sorted(
            findings.values(),
            key=lambda record: (record.get("entry_id", ""),
                                record.get("kind", ""),
                                tuple(record.get("minimized", ()))))

    def checkpoint() -> None:
        """Persist state files + append one self-contained journal record.

        The record carries everything a resume needs (no timing, nothing
        invocation-specific), so a killed-and-resumed campaign appends the
        *same* records an uninterrupted one would — the journal itself
        converges byte-identically.  Entries admitted since the previous
        checkpoint ride along in full (``entry_records``): committed journal
        frames are then sufficient to rebuild a lost entry file
        byte-identically (see :meth:`CorpusStore.roll_forward`).
        """
        if journal is None:
            return
        meta = {"seed": config.seed, "rounds_completed": round_index,
                "schedules_last_run": result.schedules_run}
        current_findings = ordered_findings_list()
        store.save_state(coverage.to_dict(), current_findings, meta)
        fresh = [entry for entry in entries
                 if entry.entry_id not in checkpointed_ids]
        record = {
            "type": "checkpoint",
            "config": config.fingerprint_dict(),
            "bootstrap_done": bootstrap_done,
            "round_index": round_index,
            "rounds_this_run": rounds_this_run,
            "entries": [entry.entry_id for entry in entries],
            "entry_records": {entry.entry_id: entry.to_dict()
                              for entry in fresh},
            "picks": {entry.entry_id: entry.picks for entry in entries
                      if entry.picks},
            "coverage": coverage.to_dict(),
            "findings": current_findings,
            "meta": meta,
            "result": {
                "monitors": result.monitors,
                "schedules_run": result.schedules_run,
                "corpus_added": result.corpus_added,
                "new_features": result.new_features,
                "duplicate_findings": result.duplicate_findings,
                "compile_errors": result.compile_errors,
                "operator_stats": result.operator_stats,
            },
        }
        journal.append_if_changed(record)
        checkpointed_ids.update(entry.entry_id for entry in fresh)
        if dstore is not None:
            # Mirror the committed checkpoint into the shared store in one
            # transaction: corpus index, coverage map, and the frontier —
            # a cooperating process reads a consistent snapshot or nothing.
            with dstore.transaction("checkpoint.mirror") as conn:
                dstore.set_frontier("fuzz/checkpoint", record, conn=conn)
                dstore.merge_coverage(record["coverage"], conn=conn)
                dstore.index_entries(record["entry_records"], conn=conn)
                dstore.record_telemetry(
                    f"driver-{os.getpid()}",
                    {"last_heartbeat": time.time(), "role": "driver",
                     "round_index": round_index,
                     "schedules_run": result.schedules_run,
                     "corpus_entries": len(entries)}, conn=conn)

    # -- bootstrap ------------------------------------------------------------
    rounds_this_run = rounds_restored
    boot_jobs: List[Tuple[CorpusEntry, dict]] = []
    if not bootstrap_done:
        for index in range(config.bootstrap):
            entry = entry_from_generated(config.seed, index)
            entry.threads, entry.ops = config.threads, config.ops
            if entry.entry_id in known_ids:
                continue
            boot_jobs.append((entry, _entry_job(entry, config)))
    bootstrap_done = True
    if boot_jobs and budget_left():
        with tracer.span("fuzz.bootstrap", cat="fuzz", batch=len(boot_jobs)):
            outcomes = evaluate_batch(
                [job for _entry, job in boot_jobs], "boot",
                [entry.entry_id for entry, _job in boot_jobs])
        for (entry, _job), outcome in zip(boot_jobs, outcomes):
            if isinstance(outcome, JobFailure):
                outcome = outcome.error_dict(entry_id=entry.entry_id)
            # Bootstrap roots always join the corpus (dedup still applies to
            # their fingerprints for later mutants); they are the search's
            # anchors even when an earlier root covered the same features.
            merge_outcome(outcome, entry, None)
            if entry.entry_id not in known_ids and "error" not in outcome:
                entries.append(entry)
                known_ids.add(entry.entry_id)
                fingerprints.add(entry.fingerprint)
                store.save_entry(entry)
        checkpoint()

    # -- mutation rounds ------------------------------------------------------
    while budget_left() and entries and rounds_this_run < config.max_rounds:
        batch: List[Tuple[CorpusEntry, Optional[str], dict]] = []
        for slot in range(config.batch_size):
            slot_seed = derive_seed(config.seed, "round", round_index, slot)
            parent = _select_parent(entries)
            if parent is None:
                break
            parent.picks += 1
            if metrics is not None:
                metrics.inc("fuzz.power.picks")
            candidate = None
            used_op = None
            mate_entry = None
            for op_name in _select_operator(slot_seed, len(entries)):
                op_seed = derive_seed(slot_seed, op_name)
                mate_entry = None
                mate = None
                if op_name in CROSSOVER_OPERATORS:
                    mate_entry = _select_parent(entries, exclude=parent.entry_id)
                    if mate_entry is None:
                        continue
                    mate = mate_entry.candidate()
                candidate = apply_operator(op_name, parent.candidate(),
                                           op_seed, mate)
                if candidate is not None:
                    used_op = op_name
                    operator_stat(op_name)["applied"] += 1
                    break
                operator_stat(op_name)["rejected"] += 1
            if candidate is None:
                # Every operator refused: inject a fresh generated root.
                fresh_seed = derive_seed(config.seed, "fresh", round_index, slot)
                entry = entry_from_generated(fresh_seed, 0)
                entry.entry_id = f"gen-fresh-{config.seed}-{round_index}-{slot}"
                entry.threads, entry.ops = config.threads, config.ops
                operator_stat("fresh-generation")["applied"] += 1
                if metrics is not None:
                    metrics.inc("fuzz.power.fresh")
            else:
                entry = CorpusEntry(
                    entry_id=f"mut-{config.seed}-{round_index}-{slot}",
                    name=candidate.name, source=candidate.source,
                    roles=candidate.roles,
                    threads=candidate.threads, ops=candidate.ops,
                    parent=parent.entry_id, op=used_op,
                    op_seed=derive_seed(slot_seed, used_op),
                    mate=mate_entry.entry_id if mate_entry else None)
            if entry.entry_id in known_ids:
                continue  # replayed round against a resumed corpus
            batch.append((entry, used_op, _entry_job(entry, config)))
        if not batch:
            round_index += 1
            rounds_this_run += 1
            continue
        with tracer.span("fuzz.round", cat="fuzz", round=round_index,
                         batch=len(batch)):
            outcomes = evaluate_batch(
                [job for _e, _op, job in batch], f"r{round_index:06d}",
                [entry.entry_id for entry, _op, _job in batch])
        for (entry, op_name, _job), outcome in zip(batch, outcomes):
            if isinstance(outcome, JobFailure):
                outcome = outcome.error_dict(entry_id=entry.entry_id)
            merge_outcome(outcome, entry, op_name or "fresh-generation")
        round_index += 1
        rounds_this_run += 1
        checkpoint()

    # -- finalize -------------------------------------------------------------
    result.rounds = rounds_this_run
    result.corpus_size = len(entries)
    result.coverage_counts = coverage.counts()
    result.coverage_total = coverage.total()
    result.findings = ordered_findings_list()
    result.elapsed_seconds = time.perf_counter() - start
    if metrics is not None:
        for name, stats in sorted(result.operator_stats.items()):
            for key, value in sorted(stats.items()):
                if value:
                    metrics.inc(f"fuzz.operator.{name}.{key}", value)
        result.trace_shards = worker_shards
    checkpoint()
    if journal is None:
        # In-memory stores have no journal but keep the save_state contract
        # (a no-op for ``CorpusStore(None)``, the state files otherwise).
        store.save_state(coverage.to_dict(), result.findings, {
            "seed": config.seed,
            "rounds_completed": round_index,
            "schedules_last_run": result.schedules_run,
        })
    if dstore is not None:
        result.distrib = dstore.counters()
        # The store's transactional aggregates are authoritative: mirror
        # them into the session registry so one namespace serves observe()
        # snapshots, reports and the exporter.
        obs.mirror_store_counters(result.distrib)
        # Close the liveness window so cooperating helpers drain and exit;
        # a *crashed* driver instead lets it lapse, keeping helpers around
        # long enough for a resumed driver to take over.
        mark_finished(dstore)
        dstore.close()
    return result
