"""Command-line interface for the Expresso reproduction.

Usage examples::

    # Compile an implicit-signal monitor and print the generated Java code.
    expresso compile path/to/monitor.mon --emit java

    # Show the inferred invariant and placement decisions.
    expresso explain path/to/monitor.mon

    # Reproduce a figure series or Table 1 on the built-in benchmarks.
    expresso bench --figure 8 --threads 2 4 8 --ops 20
    expresso bench --table 1
    expresso bench --table 1 --parallel --workers 8
    expresso bench --summary --threads 4 8 --seed 7 --json

    # Systematically explore schedules of the compiled monitors.
    expresso explore --benchmark BoundedBuffer --strategy dfs
    expresso explore --strategy random --schedules 500 --seed 42 --json
    expresso explore --strategy random --schedules 20000 --workers 4
    expresso explore --fuzz 25 --seed 1 --schedules 100
    expresso explore --replay failure.json

    # Coverage-guided fuzzing with a persistent corpus.
    expresso fuzz --budget 2000 --seed 1 --corpus-dir .fuzz-corpus --workers 4
    expresso fuzz --budget 500 --json

    # Drop every placed notification; each must yield a counterexample.
    expresso mutate --threads 3 --ops 2 --workers 4

    # Statically analyze monitors (placement cross-check + smells).
    expresso lint path/to/monitor.mon
    expresso lint --suite --json
    expresso lint --benchmark BoundedBuffer --benchmark "Readers-Writers"

    # List the built-in benchmarks.
    expresso list
    expresso list --json

    # Campaign console: inspect a shared store without joining it.
    expresso status --store campaign.sqlite3 --json
    expresso watch --store campaign.sqlite3 --interval 2
    expresso watch --store campaign.sqlite3 --ticks 5 --now 0  # deterministic
    expresso report --store campaign.sqlite3 --profile prof.json --out report/
    expresso stitch driver-trace.json helper-trace.json --out stitched.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.benchmarks_lib import ALL_BENCHMARKS, FIGURE8_BENCHMARKS, FIGURE9_BENCHMARKS
from repro.codegen import generate_java, generate_python_explicit
from repro.harness.compile_time import measure_compile_times
from repro.harness.report import (
    figure_report,
    render_explore_table,
    render_figure_table,
    render_table1,
    speedup_summary,
)
from repro.lang.pretty import pretty_monitor
from repro.logic.pretty import pretty
from repro.placement.pipeline import ExpressoPipeline


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _add_resilience_args(cmd: argparse.ArgumentParser) -> None:
    """Worker-supervision and fault-injection flags shared by the campaigns."""
    cmd.add_argument("--job-deadline", type=_positive_float, default=None,
                     metavar="SECONDS",
                     help="per-job wall-clock deadline; a job past it is "
                          "treated as hung, its worker killed and the job "
                          "retried (default: no deadline)")
    cmd.add_argument("--job-retries", type=_positive_int, default=None,
                     metavar="N",
                     help="attempts per job before it is quarantined as a "
                          "per-job error (default: 3)")
    cmd.add_argument("--fault-plan", metavar="FILE", default=None,
                     help="JSON FaultPlan injecting deterministic crashes/"
                          "hangs/solver timeouts at named sites (testing; "
                          "see README 'Robustness & resume')")


def _add_distrib_args(cmd: argparse.ArgumentParser) -> None:
    """Shared-store (distributed campaign fabric) flags for explore/fuzz."""
    cmd.add_argument("--store", metavar="PATH", default=None,
                     help="shared on-disk campaign store (SQLite WAL): pool "
                          "workers and other expresso invocations pointed at "
                          "PATH cooperate through its lease-based "
                          "work-stealing queue")
    cmd.add_argument("--lease-ttl", type=_positive_float, default=30.0,
                     metavar="SECONDS",
                     help="work-unit lease TTL: a unit whose lease expires "
                          "(crashed or hung worker) becomes claimable by a "
                          "sibling, with bounded attempts (default: 30)")
    cmd.add_argument("--heartbeat-interval", type=_positive_float,
                     default=5.0, metavar="SECONDS",
                     help="lease renewal period; the TTL must exceed twice "
                          "the heartbeat (default: 5)")
    cmd.add_argument("--helper", action="store_true",
                     help="run as a cooperating worker against --store: "
                          "claim and evaluate work units until the driving "
                          "invocation finishes (no local artifacts)")
    cmd.add_argument("--helper-wait", type=_positive_float, default=30.0,
                     metavar="SECONDS",
                     help="how long --helper waits for the store (and the "
                          "driver's liveness window) to appear "
                          "(default: 30)")


def _distrib_from_args(args):
    """Build the DistribConfig from CLI flags; ``(config, exit_code)``."""
    from repro.distrib import DistribConfig

    if args.helper and not args.store:
        print("error: --helper needs --store (the shared campaign store to "
              "work)", file=sys.stderr)
        return None, 2
    if args.store is None:
        return None, None
    try:
        return DistribConfig(store_path=args.store,
                             lease_ttl=args.lease_ttl,
                             heartbeat_interval=args.heartbeat_interval), None
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None, 2


def _run_helper_mode(args, distrib) -> int:
    """`--helper`: work the shared store until the driver finishes.

    With ``--trace`` the helper records its own flight recording — one
    ``distrib.unit`` span per unit it evaluated — which ``expresso stitch``
    merges with the driver's trace into a single cross-process timeline.
    """
    from repro.distrib import run_helper

    trace_path = getattr(args, "trace", None)
    if trace_path:
        from repro import obs

        with obs.observe(trace=True) as session:
            completed = run_helper(args.store, distrib,
                                   wait_for_store=args.helper_wait,
                                   trace_units=True)
        obs.write_trace(trace_path, [session.tracer.events],
                        session.registry.snapshot())
        print(f"trace written to {trace_path}", file=sys.stderr)
    else:
        completed = run_helper(args.store, distrib,
                               wait_for_store=args.helper_wait)
    print(f"helper finished: {completed} unit(s) completed",
          file=sys.stderr)
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="expresso",
        description="Symbolic signal placement for implicit-signal monitors "
                    "(reproduction of Ferles et al., PLDI 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_cmd = sub.add_parser("compile", help="compile a monitor to explicit-signal code")
    compile_cmd.add_argument("path", help="path to the implicit-signal monitor source")
    compile_cmd.add_argument("--emit", choices=("java", "python", "dsl"), default="java",
                             help="output language (default: java)")
    compile_cmd.add_argument("--lazy-broadcast", action="store_true",
                             help="emit lazy broadcasts in Java output (paper §6)")
    compile_cmd.add_argument("--no-commutativity", action="store_true",
                             help="disable the §4.3 broadcast-elimination improvement")
    compile_cmd.add_argument("--no-invariant", action="store_true",
                             help="run placement with I = true (ablation)")
    compile_cmd.add_argument("--trace", metavar="FILE", default=None,
                             help="write a deterministic Chrome-trace-event "
                                  "JSON flight recording (Perfetto-loadable)")
    compile_cmd.add_argument("--smt-timeout", type=_positive_float, default=None,
                             metavar="SECONDS",
                             help="per-SMT-query budget; an exhausted query "
                                  "returns UNKNOWN and the analyses degrade "
                                  "soundly (default: no budget)")

    explain_cmd = sub.add_parser("explain", help="show invariant and placement decisions")
    explain_cmd.add_argument("path", help="path to the implicit-signal monitor source")

    bench_cmd = sub.add_parser("bench", help="reproduce the paper's figures and tables")
    bench_cmd.add_argument("--figure", choices=("8", "9"), help="reproduce one figure")
    bench_cmd.add_argument("--table", choices=("1",), help="reproduce Table 1")
    bench_cmd.add_argument("--summary", action="store_true",
                           help="print the aggregate speedup summary")
    bench_cmd.add_argument("--benchmark", help="restrict to a single benchmark by name")
    bench_cmd.add_argument("--threads", type=int, nargs="+",
                           help="thread ladder override (default: per-benchmark)")
    bench_cmd.add_argument("--ops", type=int, default=None,
                           help="operations per thread (default: per-benchmark)")
    bench_cmd.add_argument("--parallel", action="store_true",
                           help="compile the benchmark suite on a process pool "
                                "(Table 1 only)")
    bench_cmd.add_argument("--workers", type=_positive_int, default=None,
                           help="process-pool size for --parallel "
                                "(default: one per CPU)")
    bench_cmd.add_argument("--seed", type=int, default=None,
                           help="reproducibly permute which thread runs which "
                                "operation sequence")
    bench_cmd.add_argument("--json", action="store_true",
                           help="emit machine-readable JSON instead of text tables")

    explore_cmd = sub.add_parser(
        "explore", help="systematically explore schedules of compiled monitors")
    explore_cmd.add_argument("--benchmark", action="append", default=None,
                             help="benchmark to explore (repeatable; default: all)")
    explore_cmd.add_argument("--discipline", default="expresso",
                             choices=("expresso", "explicit", "autosynch", "implicit"),
                             help="which compiled discipline to schedule "
                                  "(default: expresso)")
    explore_cmd.add_argument("--strategy", default="random",
                             choices=("dfs", "random", "pct"),
                             help="exploration strategy (default: random)")
    explore_cmd.add_argument("--schedules", type=_positive_int, default=200,
                             help="schedule budget per benchmark (default: 200)")
    explore_cmd.add_argument("--threads", type=_positive_int, default=3,
                             help="virtual threads per schedule (default: 3)")
    explore_cmd.add_argument("--ops", type=_positive_int, default=2,
                             help="operations per virtual thread (default: 2)")
    explore_cmd.add_argument("--seed", type=int, default=0,
                             help="base seed for random/pct walks (default: 0)")
    explore_cmd.add_argument("--max-steps", type=_positive_int, default=20_000,
                             help="per-schedule step bound (default: 20000)")
    explore_cmd.add_argument("--fuzz", type=_positive_int, default=None, metavar="N",
                             help="instead of the registry, generate and explore "
                                  "N random monitors end to end")
    explore_cmd.add_argument("--keep-going", action="store_true",
                             help="keep exploring after the first divergence")
    explore_cmd.add_argument("--workers", type=_positive_int, default=1,
                             help="shard the campaign over a process pool "
                                  "(default: 1 = in-process)")
    explore_cmd.add_argument("--no-por", dest="por", action="store_false",
                             help="disable partial-order reduction for the "
                                  "dfs strategy (plain enumeration; also "
                                  "disables semantic POR and symmetry)")
    explore_cmd.add_argument("--no-semantic-por", dest="semantic",
                             action="store_false",
                             help="ignore the SMT-proven semantic independence "
                                  "matrix and value-sensitive checks (fall "
                                  "back to syntactic footprints only)")
    explore_cmd.add_argument("--no-symmetry", dest="symmetry",
                             action="store_false",
                             help="disable wake-order canonicalization and "
                                  "symmetric-state merging")
    explore_cmd.add_argument("--replay", metavar="FILE", default=None,
                             help="re-run schedules from a JSON file written "
                                  "by --json (or a minimal "
                                  "{benchmark, schedule} object)")
    explore_cmd.add_argument("--witness", action="store_true",
                             help="attach a Definition 3.4 implicit-vs-"
                                  "explicit trace witness to every finding")
    explore_cmd.add_argument("--trace", metavar="FILE", default=None,
                             help="write a deterministic Chrome-trace-event "
                                  "JSON flight recording (per-schedule spans "
                                  "with prune provenance; shard-merged)")
    explore_cmd.add_argument("--state-dir", default=None, metavar="DIR",
                             help="journal per-benchmark results to DIR so an "
                                  "interrupted campaign can continue with "
                                  "--resume (excludes --trace/--fuzz/--replay)")
    explore_cmd.add_argument("--resume", action="store_true",
                             help="skip benchmarks already completed in "
                                  "--state-dir's journal (same configuration "
                                  "required)")
    explore_cmd.add_argument("--json", action="store_true",
                             help="emit machine-readable JSON instead of text")
    _add_resilience_args(explore_cmd)
    _add_distrib_args(explore_cmd)

    fuzz_cmd = sub.add_parser(
        "fuzz", help="coverage-guided fuzzing campaign over generated monitors")
    fuzz_cmd.add_argument("--budget", type=_positive_int, default=2000,
                          help="total judged-schedule budget (default: 2000)")
    fuzz_cmd.add_argument("--seed", type=int, default=0,
                          help="campaign seed (default: 0)")
    fuzz_cmd.add_argument("--corpus-dir", default=None,
                          help="persistent corpus directory (default: "
                               "in-memory, nothing persisted)")
    fuzz_cmd.add_argument("--workers", type=_positive_int, default=1,
                          help="shard candidate evaluation over a process "
                               "pool (default: 1 = in-process)")
    fuzz_cmd.add_argument("--threads", type=_positive_int, default=3,
                          help="bootstrap workload threads (default: 3)")
    fuzz_cmd.add_argument("--ops", type=_positive_int, default=2,
                          help="bootstrap operations per thread (default: 2)")
    fuzz_cmd.add_argument("--per-run-budget", type=_positive_int, default=120,
                          help="schedule budget per candidate (default: 120)")
    fuzz_cmd.add_argument("--batch-size", type=_positive_int, default=8,
                          help="candidates per mutation round (default: 8)")
    fuzz_cmd.add_argument("--bootstrap", type=_positive_int, default=8,
                          help="generated corpus roots (default: 8)")
    fuzz_cmd.add_argument("--max-findings", type=_positive_int, default=10,
                          help="stop after this many deduplicated findings "
                               "(default: 10)")
    fuzz_cmd.add_argument("--strategy", default="dfs",
                          choices=("dfs", "random", "pct"),
                          help="per-candidate exploration strategy "
                               "(default: dfs)")
    fuzz_cmd.add_argument("--max-steps", type=_positive_int, default=20_000,
                          help="per-schedule step bound (default: 20000)")
    fuzz_cmd.add_argument("--trace", metavar="FILE", default=None,
                          help="write a deterministic Chrome-trace-event "
                               "JSON flight recording of the whole campaign")
    fuzz_cmd.add_argument("--resume", action="store_true",
                          help="continue the last checkpointed campaign in "
                               "--corpus-dir, rolling a torn journal tail "
                               "back to the last good record first")
    fuzz_cmd.add_argument("--repair", action="store_true",
                          help="roll --corpus-dir back to its last valid "
                               "journal record (truncate torn tail, drop "
                               "stale tmp files, rewrite state), then resume")
    fuzz_cmd.add_argument("--json", action="store_true",
                          help="emit machine-readable JSON instead of text")
    _add_resilience_args(fuzz_cmd)
    _add_distrib_args(fuzz_cmd)

    mutate_cmd = sub.add_parser(
        "mutate", help="drop every placed notification; each must be caught")
    mutate_cmd.add_argument("--benchmark", action="append", default=None,
                            help="benchmark to mutate (repeatable; default: all)")
    mutate_cmd.add_argument("--threads", type=_positive_int, default=3,
                            help="virtual threads per schedule (default: 3)")
    mutate_cmd.add_argument("--ops", type=_positive_int, default=2,
                            help="operations per virtual thread (default: 2)")
    mutate_cmd.add_argument("--schedules", type=_positive_int, default=20_000,
                            help="DFS budget per mutant (default: 20000)")
    mutate_cmd.add_argument("--workers", type=_positive_int, default=None,
                            help="process-pool size (default: one per CPU)")
    mutate_cmd.add_argument("--json", action="store_true",
                            help="emit machine-readable JSON instead of text")
    _add_resilience_args(mutate_cmd)

    profile_cmd = sub.add_parser(
        "profile", help="profile SMT solver time by phase, caller site and "
                        "formula hash across compiles")
    profile_cmd.add_argument("paths", nargs="*",
                             help="implicit-signal monitor source files")
    profile_cmd.add_argument("--benchmark", action="append", default=None,
                             help="registry benchmark to profile (repeatable)")
    profile_cmd.add_argument("--suite", action="store_true",
                             help="profile every registry benchmark")
    profile_cmd.add_argument("--top", type=_positive_int, default=10,
                             help="hot-query table size (default: 10)")
    profile_cmd.add_argument("--trace", metavar="FILE", default=None,
                             help="also write the session's Chrome-trace-"
                                  "event JSON (with real timestamps)")
    profile_cmd.add_argument("--json", action="store_true",
                             help="emit machine-readable JSON instead of text")

    lint_cmd = sub.add_parser(
        "lint", help="statically analyze monitors: placement cross-check, "
                     "concurrency smells, coop-emission shapes")
    lint_cmd.add_argument("paths", nargs="*",
                          help="implicit-signal monitor source files")
    lint_cmd.add_argument("--benchmark", action="append", default=None,
                          help="registry benchmark to lint (repeatable)")
    lint_cmd.add_argument("--suite", action="store_true",
                          help="lint every registry benchmark")
    lint_cmd.add_argument("--smt-timeout", type=_positive_float, default=None,
                          metavar="SECONDS",
                          help="per-SMT-query budget; UNKNOWN verdicts "
                               "suppress the affected advisory rather than "
                               "report an unproven one (default: no budget)")
    lint_cmd.add_argument("--json", action="store_true",
                          help="emit machine-readable JSON instead of text")

    list_cmd = sub.add_parser("list", help="list the built-in benchmarks")
    list_cmd.add_argument("--json", action="store_true",
                          help="emit machine-readable JSON (external tooling "
                               "and the report generator consume this)")

    status_cmd = sub.add_parser(
        "status", help="one-shot read-only snapshot of a shared campaign "
                       "store (units, leases, worker health, progress)")
    status_cmd.add_argument("--store", metavar="PATH", required=True,
                            help="the campaign store to inspect (opened "
                                 "read-only; never binds or repairs)")
    status_cmd.add_argument("--now", type=float, default=None,
                            metavar="EPOCH",
                            help="fix the clock for age computations "
                                 "(deterministic snapshots; default: wall "
                                 "clock)")
    status_cmd.add_argument("--json", action="store_true",
                            help="emit the byte-deterministic JSON snapshot")

    watch_cmd = sub.add_parser(
        "watch", help="poll a campaign store's status; nonzero exit when "
                      "the anomaly watchdog fires (stalled lease, no "
                      "progress)")
    watch_cmd.add_argument("--store", metavar="PATH", required=True,
                           help="the campaign store to watch (read-only)")
    watch_cmd.add_argument("--interval", type=_positive_float, default=2.0,
                           metavar="SECONDS",
                           help="poll period (default: 2)")
    watch_cmd.add_argument("--ticks", type=_positive_int, default=None,
                           metavar="N",
                           help="stop after N polls (default: run until "
                                "interrupted)")
    watch_cmd.add_argument("--stall-ticks", type=_positive_int, default=3,
                           metavar="N",
                           help="consecutive stalled polls before an "
                                "anomaly fires (default: 3)")
    watch_cmd.add_argument("--now", type=float, default=None, metavar="EPOCH",
                           help="simulate the clock from EPOCH (advances "
                                "--interval per tick, no sleeping — the "
                                "deterministic test mode)")

    report_cmd = sub.add_parser(
        "report", help="write a self-contained HTML+markdown run report "
                       "plus an OpenMetrics textfile")
    report_cmd.add_argument("--store", metavar="PATH", default=None,
                            help="campaign store to snapshot into the "
                                 "report (read-only)")
    report_cmd.add_argument("--profile", metavar="FILE", default=None,
                            help="`expresso profile --json` output: phase "
                                 "timings and hot SMT queries")
    report_cmd.add_argument("--trace", metavar="FILE", action="append",
                            default=None,
                            help="Chrome-trace recording to fold in "
                                 "(repeatable)")
    report_cmd.add_argument("--out", metavar="DIR", default="report",
                            help="output directory for report.md / "
                                 "report.html / metrics.prom "
                                 "(default: report/)")
    report_cmd.add_argument("--title", default="expresso run report",
                            help="report title")
    report_cmd.add_argument("--now", type=float, default=None,
                            metavar="EPOCH",
                            help="fix the clock for the store snapshot "
                                 "(deterministic reports)")

    stitch_cmd = sub.add_parser(
        "stitch", help="merge driver + helper Chrome traces into one "
                       "pid/unit-keyed timeline with logical clocks")
    stitch_cmd.add_argument("traces", nargs="+", metavar="TRACE",
                            help="input trace files, driver first (one pid "
                                 "lane per file)")
    stitch_cmd.add_argument("--out", metavar="FILE", required=True,
                            help="stitched trace output path")
    stitch_cmd.add_argument("--label", action="append", default=None,
                            help="process label per input, in order "
                                 "(default: file stems)")
    return parser


def _pipeline_from_args(args) -> ExpressoPipeline:
    return ExpressoPipeline(
        use_commutativity=not getattr(args, "no_commutativity", False),
        infer_invariant=not getattr(args, "no_invariant", False),
        smt_timeout=getattr(args, "smt_timeout", None),
    )


def _supervisor_from_args(args):
    """A SupervisorConfig from --job-deadline/--job-retries, or None."""
    deadline = getattr(args, "job_deadline", None)
    retries = getattr(args, "job_retries", None)
    if deadline is None and retries is None:
        return None
    from repro.resilience import SupervisorConfig

    config = SupervisorConfig(deadline_seconds=deadline)
    if retries is not None:
        config = dataclasses.replace(config, max_attempts=retries)
    return config


def _install_fault_plan(args) -> Optional[int]:
    """Install --fault-plan process-wide; an exit code on failure."""
    path = getattr(args, "fault_plan", None)
    if not path:
        return None
    from repro.resilience import FaultPlan, install_plan
    from repro.resilience.faults import PLAN_ENV

    try:
        plan = FaultPlan.from_file(path)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load fault plan {path}: {exc}", file=sys.stderr)
        return 2
    # Workers spawned outside the supervisor's plan-shipping path (plain
    # pools) pick the plan up from the environment.
    os.environ[PLAN_ENV] = str(Path(path).resolve())
    install_plan(plan)
    return None


def _cmd_compile(args) -> int:
    source = Path(args.path).read_text()
    if args.trace:
        from repro import obs

        with obs.observe(trace=True) as session:
            result = _pipeline_from_args(args).compile(source)
        obs.write_trace(args.trace, [session.tracer.events],
                        session.registry.snapshot())
        print(f"// trace written to {args.trace}", file=sys.stderr)
    else:
        result = _pipeline_from_args(args).compile(source)
    if args.emit == "java":
        print(generate_java(result.explicit, lazy_broadcast=args.lazy_broadcast))
    elif args.emit == "python":
        print(generate_python_explicit(result.explicit))
    else:
        print(pretty_monitor(result.monitor))
    print("//", result.summary().replace("\n", "\n// "), file=sys.stderr)
    return 0


def _cmd_explain(args) -> int:
    source = Path(args.path).read_text()
    result = ExpressoPipeline().compile(source)
    print(result.summary())
    print()
    print("placement decisions:")
    for decision in result.placement.decisions:
        action = "no signal"
        if decision.needs_notification:
            kind = "broadcast" if decision.broadcast else "signal"
            marker = "?" if decision.conditional else "✓"
            action = f"{kind}[{marker}]"
            if decision.used_commutativity:
                action += " (via §4.3 commutativity)"
        print(f"  {decision.ccr_label:24s} -> {pretty(decision.predicate):48s} {action}")
    return 0


def _cmd_bench(args) -> int:
    ladder = tuple(args.threads) if args.threads else None
    if args.table == "1":
        start = time.perf_counter()
        rows = measure_compile_times(parallel=args.parallel,
                                     max_workers=args.workers)
        wall = time.perf_counter() - start
        if args.json:
            print(json.dumps({"table": 1, "wall_seconds": wall,
                              "rows": [dataclasses.asdict(row) for row in rows]},
                             indent=2))
            return 0
        print(render_table1(rows))
        mode = f"parallel x{args.workers or 'auto'}" if args.parallel else "sequential"
        print(f"\nsuite wall clock: {wall:.2f}s ({mode})")
        return 0
    if args.benchmark:
        specs = [ALL_BENCHMARKS[args.benchmark]] if args.benchmark in ALL_BENCHMARKS else []
        if not specs:
            from repro.benchmarks_lib.registry import get_benchmark

            specs = [get_benchmark(args.benchmark)]
    elif args.figure == "8":
        specs = FIGURE8_BENCHMARKS
    elif args.figure == "9":
        specs = FIGURE9_BENCHMARKS
    else:
        specs = list(ALL_BENCHMARKS.values())
    all_series = []
    for spec in specs:
        series = figure_report(spec, thread_ladder=ladder or spec.thread_ladder[:3],
                               ops_per_thread=args.ops, seed=args.seed)
        all_series.append(series)
        if not args.json:
            print(render_figure_table(series))
            print()
    want_summary = args.summary or not (args.figure or args.benchmark)
    summary = speedup_summary(all_series) if want_summary else {}
    if args.json:
        print(json.dumps({"seed": args.seed,
                          "series": [series.to_dict() for series in all_series],
                          "speedup_summary": summary}, indent=2))
        return 0
    if want_summary:
        print("Expresso geometric-mean speedup over:")
        for baseline, speedup in sorted(summary.items()):
            print(f"  {baseline:12s} {speedup:.2f}x")
    return 0


def _replay_jobs_from_file(path: str) -> List[dict]:
    """Normalize a replay file into per-schedule replay jobs.

    Accepts the full ``explore --json`` document (``{"results": [...]}``), a
    single result object, or a minimal ``{"benchmark", "schedule"}`` object.
    Each job carries benchmark/discipline/threads/ops context plus one
    schedule (the minimized one for recorded failures).
    """
    document = json.loads(Path(path).read_text())
    results = (document.get("results", [document])
               if isinstance(document, dict) else list(document))
    jobs: List[dict] = []
    for result in results:
        context = {
            "benchmark": result.get("benchmark"),
            "discipline": result.get("discipline", "expresso"),
            "threads": result.get("threads", 3),
            "ops": result.get("ops", 2),
        }
        if context["benchmark"] is None:
            raise ValueError(f"replay entry without a benchmark name: {result}")
        if "schedule" in result:
            jobs.append({**context, "schedule": result["schedule"],
                         "kind": result.get("kind")})
        for failure in result.get("failures", []):
            schedule = failure.get("minimized") or failure.get("schedule") or []
            jobs.append({**context, "schedule": schedule,
                         "kind": failure.get("kind")})
    if not jobs:
        raise ValueError(f"{path} contains no schedules to replay")
    return jobs


def _cmd_replay(args) -> int:
    from repro.benchmarks_lib.registry import get_benchmark
    from repro.explore import coop_monitor_and_class, replay_schedule
    from repro.explore.trace import render_trace

    try:
        jobs = _replay_jobs_from_file(args.replay)
    except (OSError, ValueError) as exc:  # ValueError covers JSONDecodeError
        print(f"error: cannot replay {args.replay}: {exc}", file=sys.stderr)
        return 2
    any_failure = False
    payload = []
    for job in jobs:
        spec = get_benchmark(job["benchmark"])
        monitor, coop_class = coop_monitor_and_class(spec, job["discipline"])
        programs = spec.workload(job["threads"], job["ops"])
        run, verdict = replay_schedule(monitor, coop_class, programs,
                                       job["schedule"],
                                       max_steps=args.max_steps)
        any_failure = any_failure or verdict.is_failure
        payload.append({
            "benchmark": job["benchmark"],
            "discipline": job["discipline"],
            "schedule": list(job["schedule"]),
            "expected_kind": job.get("kind"),
            "outcome": run.outcome,
            "ok": verdict.ok,
            "kind": verdict.kind,
            "detail": verdict.detail,
        })
        if not args.json:
            status = "ok" if verdict.ok else f"{verdict.kind} — {verdict.detail}"
            print(f"{job['benchmark']}/{job['discipline']} "
                  f"schedule={list(job['schedule'])}: {status}")
            if verdict.is_failure:
                print(render_trace(run, programs, verdict))
    if args.json:
        print(json.dumps({"replays": payload, "ok": not any_failure}, indent=2))
    return 1 if any_failure else 0


def _cmd_explore(args) -> int:
    from repro.explore import explore_benchmark
    from repro.explore.genmon import fuzz_pipeline
    from repro.explore.parallel import parallel_explore_benchmark

    if args.replay is not None:
        if args.fuzz is not None or args.benchmark:
            print("error: --replay re-runs recorded schedules; it cannot be "
                  "combined with --fuzz or --benchmark", file=sys.stderr)
            return 2
        return _cmd_replay(args)

    if args.trace and args.fuzz is not None:
        print("error: --trace records registry-benchmark explorations; "
              "use `expresso fuzz --trace` for campaign recordings",
              file=sys.stderr)
        return 2

    if args.resume and not (args.state_dir or args.store):
        print("error: --resume needs --state-dir or --store (the campaign "
              "state to continue from)", file=sys.stderr)
        return 2
    if args.state_dir and (args.fuzz is not None or args.replay or args.trace):
        print("error: --state-dir checkpoints registry-benchmark campaigns; "
              "it cannot be combined with --fuzz, --replay or --trace",
              file=sys.stderr)
        return 2
    if args.store and args.state_dir:
        print("error: --store and --state-dir are alternative campaign "
              "persistence mechanisms; pick one", file=sys.stderr)
        return 2
    if args.store and (args.fuzz is not None or args.replay):
        print("error: --store drives registry-benchmark campaigns; it "
              "cannot be combined with --fuzz or --replay", file=sys.stderr)
        return 2
    failed = _install_fault_plan(args)
    if failed is not None:
        return failed
    distrib, failed = _distrib_from_args(args)
    if failed is not None:
        return failed
    if args.helper:
        return _run_helper_mode(args, distrib)
    supervisor = _supervisor_from_args(args)

    if args.fuzz is not None:
        if args.benchmark or args.discipline != "expresso":
            print("error: --fuzz generates its own monitors and always explores "
                  "the expresso-compiled placement; it cannot be combined with "
                  "--benchmark or --discipline", file=sys.stderr)
            return 2
        report = fuzz_pipeline(count=args.fuzz, seed=args.seed,
                               threads=args.threads, ops=args.ops,
                               strategy=args.strategy, budget=args.schedules,
                               max_steps=args.max_steps,
                               stop_on_failure=not args.keep_going,
                               witness=args.witness)
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(render_explore_table(report.results))
            for name, error in report.compile_errors:
                print(f"\nCOMPILE ERROR in {name}: {error}")
            for result in report.results:
                for failure in result.failures:
                    print(f"\n{result.benchmark}: {failure.kind} — {failure.detail}")
                    print(failure.trace)
        return 0 if report.ok else 1

    if args.benchmark:
        from repro.benchmarks_lib.registry import get_benchmark

        specs = [get_benchmark(name) for name in args.benchmark]
    else:
        specs = list(ALL_BENCHMARKS.values())

    # --state-dir: journal one record per finished benchmark so a killed
    # campaign continues from the last completed benchmark under --resume.
    # --store does the same through the shared store's frontier table (one
    # record per benchmark, keyed by the config fingerprint) — and
    # additionally dispatches shards through its work-stealing queue.
    journal = None
    completed: dict = {}
    fingerprint = {
        "benchmarks": [spec.name for spec in specs],
        "discipline": args.discipline, "strategy": args.strategy,
        "schedules": args.schedules, "threads": args.threads,
        "ops": args.ops, "seed": args.seed, "max_steps": args.max_steps,
        "keep_going": args.keep_going, "por": args.por,
        "semantic": args.semantic, "symmetry": args.symmetry,
        "witness": args.witness,
    }
    cstore = None
    frontier_prefix = None
    if args.store:
        from repro.distrib import CampaignStore, mark_active
        from repro.explore.engine import ExplorationResult
        from repro.resilience import checksum_payload

        cstore = CampaignStore(args.store)
        frontier_prefix = f"explore/{checksum_payload(fingerprint)[:12]}"
        if args.resume:
            for spec in specs:
                record = cstore.get_frontier(f"{frontier_prefix}/{spec.name}")
                if record is not None:
                    completed[spec.name] = record
        mark_active(cstore, distrib)
    if args.state_dir:
        from repro.explore.engine import ExplorationResult
        from repro.resilience import Journal

        state_dir = Path(args.state_dir)
        state_dir.mkdir(parents=True, exist_ok=True)
        journal_path = state_dir / "explore.jsonl"
        journal = Journal(journal_path)
        if args.resume:
            replay = journal.truncate_to_valid()
            records = list(replay.records)
            if records and records[0].get("config") != fingerprint:
                print(f"error: {journal_path} was written by a campaign with "
                      f"a different configuration; drop --resume to start "
                      f"over", file=sys.stderr)
                return 2
            completed = {record["name"]: record["result"]
                         for record in records
                         if record.get("type") == "benchmark"}
            need_config = not records
        else:
            journal_path.unlink(missing_ok=True)
            need_config = True
        if need_config:
            journal.append({"type": "config", "config": fingerprint})

    results = []
    for spec in specs:
        if spec.name in completed:
            results.append(ExplorationResult.from_dict(completed[spec.name]))
            continue
        if cstore is not None or args.workers > 1 or args.trace:
            # Traced runs always go through the parallel driver: its
            # sequential fallback records into the same shard surface, so
            # the emitted artifact is byte-identical across worker counts.
            # Shared-store runs do too: shards dispatch through the store's
            # work-stealing queue whatever the local worker count.
            results.append(parallel_explore_benchmark(
                spec, args.discipline, threads=args.threads, ops=args.ops,
                strategy=args.strategy, budget=args.schedules, seed=args.seed,
                max_steps=args.max_steps, stop_on_failure=not args.keep_going,
                por=args.por, semantic=args.semantic, symmetry=args.symmetry,
                witness=args.witness, trace=bool(args.trace),
                workers=args.workers, supervisor=supervisor,
                store=cstore, distrib=distrib))
        else:
            results.append(explore_benchmark(
                spec, args.discipline, threads=args.threads, ops=args.ops,
                strategy=args.strategy, budget=args.schedules, seed=args.seed,
                max_steps=args.max_steps, stop_on_failure=not args.keep_going,
                por=args.por, semantic=args.semantic, symmetry=args.symmetry,
                witness=args.witness))
        if journal is not None:
            journal.append({"type": "benchmark", "name": spec.name,
                            "result": results[-1].to_dict()})
        if cstore is not None:
            from repro.distrib import mark_active

            cstore.set_frontier(f"{frontier_prefix}/{spec.name}",
                                results[-1].to_dict())
            mark_active(cstore, distrib)   # refresh the liveness window
    if args.trace:
        from repro import obs

        shards = [events for result in results
                  for events in (result.trace_shards or [])]
        registry = obs.MetricsRegistry()
        for result in results:
            if result.metrics_snapshot:
                registry.merge(result.metrics_snapshot)
        obs.write_trace(args.trace, shards, registry.snapshot())
        if not args.json:
            print(f"trace written to {args.trace}", file=sys.stderr)
    distrib_counters = None
    if cstore is not None:
        from repro.distrib import mark_finished

        from repro import obs

        distrib_counters = cstore.counters()
        # Mirror the store's transactional counters into the session
        # registry under the same dotted names: one metrics namespace
        # whether counters came from the store or the flight recorder.
        obs.mirror_store_counters(distrib_counters)
        mark_finished(cstore)
        cstore.close()
    ok = all(result.ok for result in results)
    if args.json:
        payload = {"results": [result.to_dict() for result in results],
                   "ok": ok}
        if distrib_counters is not None:
            payload["distrib"] = {name: int(value) for name, value in
                                  sorted(distrib_counters.items())}
        print(json.dumps(payload, indent=2))
        return 0 if ok else 1
    print(render_explore_table(results))
    if distrib_counters:
        leases = ", ".join(f"{name.split('.')[-1]}={value}" for name, value
                           in sorted(distrib_counters.items())
                           if name.startswith("distrib.lease."))
        if leases:
            print(f"(store leases: {leases})", file=sys.stderr)
    for result in results:
        for failure in result.failures:
            print(f"\n{result.benchmark}/{result.discipline}: "
                  f"{failure.kind} — {failure.detail}")
            if failure.seed is not None:
                print(f"replay: strategy={failure.strategy} seed={failure.seed} "
                      f"schedule={list(failure.minimized)}")
            else:
                print(f"replay: schedule={list(failure.minimized)}")
            print(failure.trace)
    return 0 if ok else 1


def _cmd_fuzz(args) -> int:
    from repro.fuzz import (
        CorpusStore,
        CorruptCorpusError,
        FuzzConfig,
        run_campaign,
    )
    from repro.harness.report import render_fuzz_table

    failed = _install_fault_plan(args)
    if failed is not None:
        return failed
    distrib, failed = _distrib_from_args(args)
    if failed is not None:
        return failed
    if args.helper:
        return _run_helper_mode(args, distrib)
    if (args.resume or args.repair) and not args.corpus_dir:
        print("error: --resume/--repair need --corpus-dir (the campaign "
              "state to continue from)", file=sys.stderr)
        return 2
    store = CorpusStore(args.corpus_dir)
    if args.repair:
        try:
            summary = store.repair()
        except CorruptCorpusError as exc:
            print(f"error: cannot repair corpus at {exc.root}: {exc.detail}",
                  file=sys.stderr)
            return 2
        truncated = "truncated torn tail" if summary["journal_truncated"] \
            else "journal intact"
        restored = summary.get("entries_restored") or []
        rolled = (f", {len(restored)} admitted entry file(s) rolled "
                  f"forward from the journal" if restored else "")
        print(f"repaired {args.corpus_dir}: {summary['journal_records']} "
              f"journal record(s) kept ({truncated}), "
              f"{len(summary['tmp_removed'])} stale tmp file(s) removed"
              f"{rolled}",
              file=sys.stderr)
        if args.store:
            # The shared store gets the same treatment: every row carries a
            # content checksum, so corruption is detected and dropped (a
            # corrupt unit result merely re-runs that unit).
            from repro.distrib import CampaignStore

            cstore = CampaignStore(args.store)
            problems = cstore.verify()
            if problems:
                fixed = cstore.repair()
                print(f"store {args.store}: dropped "
                      f"{fixed['rows_dropped']} corrupt row(s) "
                      f"({len(fixed['problems'])} problem(s) found)",
                      file=sys.stderr)
            else:
                print(f"store {args.store}: verified clean", file=sys.stderr)
            cstore.close()
    config = FuzzConfig(
        seed=args.seed, budget=args.budget,
        per_run_budget=args.per_run_budget, threads=args.threads,
        ops=args.ops, batch_size=args.batch_size, bootstrap=args.bootstrap,
        max_findings=args.max_findings, workers=args.workers,
        strategy=args.strategy, max_steps=args.max_steps,
        trace=bool(args.trace), resume=args.resume or args.repair,
        supervisor=_supervisor_from_args(args), distrib=distrib)
    from repro.distrib import StoreMismatchError

    try:
        result = run_campaign(config, store)
    except (CorruptCorpusError, StoreMismatchError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.trace:
        from repro import obs

        obs.write_trace(args.trace, result.trace_shards or [],
                        result.metrics_snapshot)
        print(f"trace written to {args.trace}", file=sys.stderr)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0 if result.ok else 1
    print(render_fuzz_table(result))
    print(f"(wall clock: {result.elapsed_seconds:.1f}s)", file=sys.stderr)
    for record in result.findings:
        print(f"\n{record['monitor']}: {record['kind']} — {record['detail']}")
        print(f"replay: schedule={list(record.get('minimized', []))}")
        if record.get("witness"):
            witness = record["witness"]
            print(f"Definition 3.4 witness: implicit_feasible="
                  f"{witness.get('implicit_feasible')} "
                  f"explicit_feasible={witness.get('explicit_feasible')}")
        print(record.get("trace", ""))
    for error in result.compile_errors:
        print(f"\nCOMPILE ERROR in {error['entry_id']}: {error['error']}")
    return 0 if result.ok else 1


def _cmd_mutate(args) -> int:
    from repro.benchmarks_lib.registry import get_benchmark
    from repro.explore.parallel import mutation_campaign

    failed = _install_fault_plan(args)
    if failed is not None:
        return failed
    if args.benchmark:
        specs = [get_benchmark(name) for name in args.benchmark]
    else:
        specs = list(ALL_BENCHMARKS.values())
    report = mutation_campaign(specs, threads=args.threads, ops=args.ops,
                               budget=args.schedules, workers=args.workers,
                               supervisor=_supervisor_from_args(args))
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        return 0 if report.ok else 1
    header = "Mutation campaign (every dropped signal must be caught)"
    print(header)
    print("-" * len(header))
    for mutant in report.mutants:
        label, index = mutant["site"]
        tag = mutant["status"]
        if tag == "caught":
            tag = f"caught: {mutant['kind']}"
        elif tag == "benign":
            tag = "benign (exhausted without divergence)"
        print(f"{mutant['benchmark']:30s} {label}[{index}]".ljust(52)
              + f" {tag} [{mutant['schedules_run']} schedules]")
    summary = report.to_dict()
    print("-" * len(header))
    print(f"TOTAL: {summary['total']} mutants — {summary['caught']} caught, "
          f"{summary['benign']} benign, {summary['survived']} survived "
          f"({report.elapsed_seconds:.1f}s, {report.workers} workers)")
    for mutant in report.survived:
        print(f"\nSURVIVED: {mutant['benchmark']} {mutant['site']} — the "
              f"budget ran out before a counterexample was found")
    return 0 if report.ok else 1


def _cmd_profile(args) -> int:
    from repro import obs
    from repro.benchmarks_lib.registry import get_benchmark
    from repro.harness.report import render_profile_table
    from repro.smt.cache import FormulaCache

    targets: List[tuple] = []  # (name, source)
    for path in args.paths:
        try:
            targets.append((Path(path).stem, Path(path).read_text()))
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
    if args.suite or not (targets or args.benchmark):
        # With no explicit target the whole suite is the interesting unit.
        targets.extend((name, spec.source)
                       for name, spec in ALL_BENCHMARKS.items())
    if args.benchmark:
        try:
            targets.extend((spec.name, spec.source)
                           for spec in map(get_benchmark, args.benchmark))
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2

    pipeline = ExpressoPipeline(cache=FormulaCache())
    compiles = []
    with obs.observe(trace=True, profile=True) as session:
        start = time.perf_counter()
        for name, source in targets:
            try:
                result = pipeline.compile(source)
            except Exception as exc:
                print(f"error: cannot compile {name}: {exc}", file=sys.stderr)
                return 2
            compiles.append((name, result))
        wall = time.perf_counter() - start
    phases, span_seconds = obs.phase_attribution(session.tracer.events)
    coverage = span_seconds / wall if wall > 0 else 0.0
    profiler = session.profiler
    if args.trace:
        obs.write_trace(args.trace, [session.tracer.events],
                        session.registry.snapshot(), deterministic=False)
        print(f"trace written to {args.trace}", file=sys.stderr)
    if args.json:
        print(json.dumps({
            "monitors": [name for name, _result in compiles],
            "wall_seconds": wall,
            "span_seconds": span_seconds,
            "span_coverage": coverage,
            "queries": profiler.total_queries,
            "solver_seconds": profiler.total_seconds,
            "phases": {name: dict(agg) for name, agg in sorted(phases.items())},
            "top": profiler.top(args.top),
            "by_caller": {name: dict(agg) for name, agg in
                          sorted(profiler.by_caller().items())},
            "metrics": session.registry.snapshot(),
        }, indent=2))
        return 0
    print(render_profile_table(profiler, phases, wall_seconds=wall,
                               top=args.top,
                               metrics=session.registry.snapshot()))
    print(f"span coverage: {span_seconds:.3f}s of {wall:.3f}s wall "
          f"({coverage:.1%}) across {len(compiles)} compile(s)")
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.lint import LintReport, check_coop_waits, merge_reports
    from repro.benchmarks_lib.registry import get_benchmark
    from repro.harness.report import render_lint_table
    from repro.smt.cache import FormulaCache

    targets: List[tuple] = []  # (name, source)
    for path in args.paths:
        try:
            targets.append((Path(path).stem, Path(path).read_text()))
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
    if args.suite:
        targets.extend((name, spec.source)
                       for name, spec in ALL_BENCHMARKS.items())
    elif args.benchmark:
        try:
            targets.extend((spec.name, spec.source)
                           for spec in map(get_benchmark, args.benchmark))
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    if not targets:
        print("error: nothing to lint — give monitor paths, --benchmark, "
              "or --suite", file=sys.stderr)
        return 2

    # Placement re-derivation dominates lint time; share the formula cache so
    # suite runs amortize the near-duplicate VCs across monitors.
    pipeline = ExpressoPipeline(cache=FormulaCache(),
                                smt_timeout=args.smt_timeout)
    reports: List[LintReport] = []
    for name, source in targets:
        try:
            result = pipeline.compile(source)
        except Exception as exc:
            print(f"error: cannot compile {name}: {exc}", file=sys.stderr)
            return 2
        findings = list(result.lint_report.findings)
        # The pipeline lints the placed monitor; the coop emission shape
        # check needs generated source, so the CLI adds it here.
        coop_source = generate_python_explicit(result.explicit, coop=True)
        findings.extend(check_coop_waits(coop_source))
        reports.append(LintReport(
            monitor=name,
            findings=tuple(findings),
            stats={
                "commute_static_skips":
                    result.solver_statistics.get("commute_static_skips", 0),
                "lint_seconds":
                    round(result.phase_seconds.get("lint", 0.0), 6),
            }))

    any_error = any(report.errors for report in reports)
    if args.json:
        print(json.dumps(merge_reports(reports), indent=2))
        return 1 if any_error else 0
    print(render_lint_table(reports))
    dirty = [report for report in reports if not report.clean]
    for report in dirty:
        print()
        print(report.render())
    return 1 if any_error else 0


def _cmd_list(args) -> int:
    if getattr(args, "json", False):
        print(json.dumps([{"name": name, "figure": spec.figure,
                           "origin": spec.origin}
                          for name, spec in ALL_BENCHMARKS.items()],
                         indent=2))
        return 0
    for name, spec in ALL_BENCHMARKS.items():
        print(f"{name:32s} figure {spec.figure}   ({spec.origin})")
    return 0


def _cmd_status(args) -> int:
    from repro.obs import console

    try:
        snapshot = console.snapshot_at(args.store, now=args.now)
    except console.ConsoleError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for warning in snapshot["warnings"]:
        print(f"warning: {warning}", file=sys.stderr)
    if args.json:
        print(console.snapshot_json(snapshot))
    else:
        print(console.render_snapshot(snapshot))
    return 0


def _cmd_watch(args) -> int:
    from repro.obs import console

    try:
        return console.watch(args.store, ticks=args.ticks,
                             interval=args.interval, start=args.now,
                             stall_ticks=args.stall_ticks)
    except console.ConsoleError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 0


def _cmd_report(args) -> int:
    from repro.obs import console, report

    snapshot = None
    if args.store:
        try:
            snapshot = console.snapshot_at(args.store, now=args.now)
        except console.ConsoleError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        for warning in snapshot["warnings"]:
            print(f"warning: {warning}", file=sys.stderr)
    profile = report.load_json(args.profile) if args.profile else None
    traces = [report.load_json(path) for path in (args.trace or [])]
    model = report.build_report(snapshot=snapshot, profile=profile,
                                traces=traces or None,
                                trace_labels=args.trace, title=args.title)
    gauges = report.snapshot_gauges(snapshot) if snapshot else None
    paths = report.write_report(args.out, model, gauges=gauges)
    for kind in sorted(paths):
        print(f"{kind}: {paths[kind]}", file=sys.stderr)
    return 0


def _cmd_stitch(args) -> int:
    from repro.obs import stitch
    from repro.obs.validate import validate_trace

    if args.label and len(args.label) != len(args.traces):
        print(f"error: {len(args.traces)} trace(s) but "
              f"{len(args.label)} label(s)", file=sys.stderr)
        return 2
    try:
        document = stitch.stitch_files(args.traces, labels=args.label)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    errors = validate_trace(document)
    if errors:
        print("error: stitched trace fails schema validation:",
              file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 1
    stitch.write_stitched(args.out, document)
    events = len(document["traceEvents"])
    print(f"stitched {len(args.traces)} trace(s) -> {args.out} "
          f"({events} events)", file=sys.stderr)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "compile": _cmd_compile,
        "explain": _cmd_explain,
        "bench": _cmd_bench,
        "explore": _cmd_explore,
        "fuzz": _cmd_fuzz,
        "mutate": _cmd_mutate,
        "profile": _cmd_profile,
        "lint": _cmd_lint,
        "list": _cmd_list,
        "status": _cmd_status,
        "watch": _cmd_watch,
        "report": _cmd_report,
        "stitch": _cmd_stitch,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
