"""Property-based tests (hypothesis) for the logic and SMT substrates.

These exercise the core invariants the rest of the system relies on:

* the solver agrees with brute-force evaluation on small formulas;
* NNF/simplification/substitution preserve semantics;
* linear-expression arithmetic matches integer arithmetic;
* the rational simplex and the integer branch-and-bound only report models
  that actually satisfy the constraints, and never miss obviously-satisfiable
  single-variable systems.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import (
    BOOL,
    INT,
    add,
    eq,
    evaluate,
    ge,
    gt,
    i,
    implies,
    land,
    le,
    lnot,
    lor,
    lt,
    ne,
    simplify,
    sub,
    to_nnf,
    v,
)
from repro.logic.free_vars import free_vars
from repro.logic.substitute import substitute
from repro.logic.terms import Var
from repro.smt import Solver
from repro.smt.intfeas import integer_feasible
from repro.smt.linear import Constraint, LinExpr, linearize
from repro.smt.simplex import rational_feasible

_INT_VARS = ("x", "y", "z")
_BOOL_VARS = ("p", "q")


def int_terms(depth=2):
    base = st.one_of(
        st.sampled_from([v(name) for name in _INT_VARS]),
        st.integers(min_value=-8, max_value=8).map(i),
    )
    if depth == 0:
        return base
    sub_term = int_terms(depth - 1)
    return st.one_of(
        base,
        st.tuples(sub_term, sub_term).map(lambda t: add(t[0], t[1])),
        st.tuples(sub_term, sub_term).map(lambda t: sub(t[0], t[1])),
        st.tuples(st.integers(min_value=-3, max_value=3), sub_term).map(
            lambda t: add(i(0), t[1]) if t[0] == 0 else sub(i(0), t[1]) if False else
            __import__("repro.logic.build", fromlist=["mul"]).mul(t[0], t[1])
        ),
    )


def atoms():
    comparisons = st.sampled_from([eq, ne, lt, le, gt, ge])
    return st.one_of(
        st.tuples(comparisons, int_terms(1), int_terms(1)).map(lambda t: t[0](t[1], t[2])),
        st.sampled_from([v(name, BOOL) for name in _BOOL_VARS]),
    )


def formulas(depth=2):
    if depth == 0:
        return atoms()
    sub_formula = formulas(depth - 1)
    return st.one_of(
        atoms(),
        sub_formula.map(lnot),
        st.tuples(sub_formula, sub_formula).map(lambda t: land(t[0], t[1])),
        st.tuples(sub_formula, sub_formula).map(lambda t: lor(t[0], t[1])),
        st.tuples(sub_formula, sub_formula).map(lambda t: implies(t[0], t[1])),
    )


def assignments():
    return st.fixed_dictionaries({
        **{name: st.integers(min_value=-6, max_value=6) for name in _INT_VARS},
        **{name: st.booleans() for name in _BOOL_VARS},
    })


class TestFormulaTransformations:
    @settings(max_examples=120, deadline=None)
    @given(formulas(), assignments())
    def test_nnf_preserves_semantics(self, formula, assignment):
        assert evaluate(to_nnf(formula), assignment) == evaluate(formula, assignment)

    @settings(max_examples=120, deadline=None)
    @given(formulas(), assignments())
    def test_simplify_preserves_semantics(self, formula, assignment):
        assert evaluate(simplify(formula), assignment) == evaluate(formula, assignment)

    @settings(max_examples=80, deadline=None)
    @given(formulas(), st.integers(min_value=-5, max_value=5), assignments())
    def test_substitution_matches_evaluation(self, formula, value, assignment):
        target = Var("x", INT)
        substituted = substitute(formula, {target: i(value)})
        patched = dict(assignment)
        patched["x"] = value
        assert evaluate(substituted, assignment | {"x": 0}) == evaluate(formula, patched) \
            or evaluate(substituted, patched) == evaluate(formula, patched)


class TestSolverAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(formulas(depth=2))
    def test_sat_models_satisfy_formula(self, formula):
        result = Solver().check_sat(formula)
        if result.is_sat:
            model = {name: 0 for name in _INT_VARS}
            model.update({name: False for name in _BOOL_VARS})
            model.update(result.model)
            assert evaluate(formula, model)

    @settings(max_examples=40, deadline=None)
    @given(formulas(depth=2))
    def test_unsat_means_no_small_model(self, formula):
        result = Solver().check_sat(formula)
        if result.is_unsat:
            names = sorted(var.name for var in free_vars(formula))
            domain = range(-3, 4)
            for values in _tuples(domain, len(names)):
                assignment = {}
                for name, value in zip(names, values):
                    assignment[name] = bool(value % 2) if name in _BOOL_VARS else value
                assert not evaluate(formula, assignment)

    @settings(max_examples=60, deadline=None)
    @given(formulas(depth=1), assignments())
    def test_validity_implies_truth_everywhere(self, formula, assignment):
        if Solver().check_valid(formula):
            assert evaluate(formula, assignment)


def _tuples(domain, arity):
    if arity == 0:
        yield ()
        return
    for head in domain:
        for rest in _tuples(domain, arity - 1):
            yield (head,) + rest


class TestLinearArithmetic:
    @settings(max_examples=120, deadline=None)
    @given(int_terms(2), assignments())
    def test_linearize_matches_evaluation(self, term, assignment):
        lin = linearize(term)
        assert lin.evaluate(assignment) == evaluate(term, assignment)

    @settings(max_examples=120, deadline=None)
    @given(int_terms(2), int_terms(2), assignments())
    def test_linexpr_addition(self, left, right, assignment):
        combined = linearize(left).add(linearize(right))
        assert combined.evaluate(assignment) == evaluate(left, assignment) + evaluate(right, assignment)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.tuples(st.integers(-4, 4), st.integers(-4, 4), st.integers(-8, 8)),
                    min_size=1, max_size=5))
    def test_simplex_models_satisfy_constraints(self, rows):
        constraints = []
        for cx, cy, k in rows:
            constraints.append(Constraint(LinExpr.of({"x": cx, "y": cy}, k)))
        model = rational_feasible(constraints)
        if model is not None:
            for constraint in constraints:
                value = Fraction(constraint.expr.constant)
                for name, coefficient in constraint.expr.coeffs:
                    value += coefficient * model.get(name, Fraction(0))
                assert value <= 0

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.tuples(st.integers(-4, 4), st.integers(-8, 8)), min_size=1, max_size=6))
    def test_integer_feasibility_single_variable(self, rows):
        constraints = [Constraint(LinExpr.of({"x": coefficient}, constant))
                       for coefficient, constant in rows if coefficient != 0]
        if not constraints:
            return
        model = integer_feasible(constraints)
        brute_force = any(
            all(constraint.evaluate({"x": candidate}) for constraint in constraints)
            for candidate in range(-40, 41)
        )
        if model is not None:
            assert all(constraint.evaluate(model) for constraint in constraints)
        else:
            assert not brute_force
